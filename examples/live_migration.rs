//! Live migration (§10, `sls send`/`sls recv`): move a running
//! application between machines with iterative incremental checkpoints —
//! the classic pre-copy algorithm built from Aurora primitives.
//!
//! ```text
//! cargo run --example live_migration
//! ```

use aurora::prelude::*;
use aurora_core::RestoreMode;
use aurora_sim::units::fmt_ns;
use aurora_vm::PAGE_SIZE;

fn main() {
    // The source machine runs a busy application with a 4 MiB working
    // set that keeps changing.
    let mut src = World::quickstart();
    let pid = src.spawn_counter_app();
    let heap = src.dirty_region(pid, 1024).unwrap();
    let gid = src.sls.attach(pid, SlsOptions::default()).unwrap();

    // Pre-copy rounds: checkpoint + send while the app keeps running;
    // each round's delta shrinks because only fresh dirt transfers.
    let mut dst = World::quickstart();
    for round in 1..=3u32 {
        // The app dirties less and less as rounds shorten.
        let pages = 1024 >> (round * 2);
        for i in 0..pages {
            src.sls
                .kernel
                .mem_write(pid, heap + i * PAGE_SIZE as u64, &round.to_le_bytes())
                .unwrap();
        }
        src.bump_counter(pid).unwrap();
        let cp = src.sls.checkpoint_now(gid).unwrap();
        src.sls.sls_barrier(gid).unwrap();
        println!(
            "pre-copy round {round}: checkpointed {} pages in {} stop time",
            cp.pages_flushed,
            fmt_ns(cp.stop_time_ns)
        );
    }

    // Final round: stop, take the last (tiny) delta, and switch over.
    src.bump_counter(pid).unwrap();
    let last = src.sls.checkpoint_now(gid).unwrap();
    src.sls.sls_barrier(gid).unwrap();
    println!(
        "final stop-and-copy: {} pages, {} stop time",
        last.pages_flushed,
        fmt_ns(last.stop_time_ns)
    );

    let moved = src.sls.migrate_to(&mut dst.sls, last.epoch, RestoreMode::Lazy).unwrap();
    let counter = dst.read_counter(moved.pids[0]).unwrap();
    println!(
        "application now runs on the destination: pid {}, counter = {counter}, \
         memory pages in lazily ({} read eagerly)",
        moved.pids[0].0,
        moved.pages_read
    );
    assert_eq!(counter, 4, "all four increments crossed the wire");

    // The destination copy is live: it keeps working there.
    dst.bump_counter(moved.pids[0]).unwrap();
    assert_eq!(dst.read_counter(moved.pids[0]).unwrap(), 5);
    println!("…and it keeps running: counter = 5 on the destination");
}
