//! Quickstart: transparent persistence in a dozen lines.
//!
//! Boot a simulated machine, run an application, attach it to the single
//! level store, crash the machine, and watch the application come back —
//! execution state included, no persistence code in the app.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aurora::prelude::*;
use aurora_core::RestoreMode;

fn main() {
    // A machine with the paper's storage: 4× Optane-like NVMe, 64 KiB
    // stripe, all on one deterministic virtual clock.
    let mut world = World::quickstart();

    // An ordinary application: it just increments a counter in memory.
    // It has no save files, no WAL, no serialization code.
    let pid = world.spawn_counter_app();
    for _ in 0..7 {
        world.bump_counter(pid).unwrap();
    }

    // One line makes it persistent: attach it to the SLS.
    let gid = world.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = world.sls.checkpoint_now(gid).unwrap();
    println!(
        "checkpointed: epoch {} in {} of stop time ({} objects, {} pages)",
        cp.epoch,
        aurora_sim::units::fmt_ns(cp.stop_time_ns),
        cp.objects,
        cp.pages_flushed
    );
    world.sls.sls_barrier(gid).unwrap();

    // Catastrophe: power loss. Every process dies; in-flight writes are
    // dropped on the floor.
    world.bump_counter(pid).unwrap(); // this increment will be lost
    world.sls.crash_and_reboot().unwrap();
    assert!(world.sls.kernel.proc(pid).is_err(), "the process died");

    // Recovery: find the application in the store and resume it.
    let epoch = world.sls.store().lock().last_epoch().unwrap();
    let manifest = world.sls.manifests_at(epoch).unwrap()[0];
    let restored = world.sls.restore_image(manifest, epoch, RestoreMode::Full).unwrap();
    let counter = world.read_counter(restored.pids[0]).unwrap();
    println!("after crash + restore: counter = {counter} (the un-checkpointed 8th increment was lost, as it must be)");
    assert_eq!(counter, 7);
}
