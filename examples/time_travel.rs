//! Time-travel debugging (§1, §7): Aurora retains the application's
//! execution history as a series of incremental checkpoints; any moment
//! can be rewound to, inspected, or exported as a core dump.
//!
//! ```text
//! cargo run --example time_travel
//! ```

use aurora::prelude::*;
use aurora_core::RestoreMode;

fn main() {
    let mut world = World::quickstart();
    let pid = world.spawn_counter_app();
    let gid = world.sls.attach(pid, SlsOptions::default()).unwrap();

    // Run the "buggy" program: it doubles the counter each step and the
    // bug corrupts it at step 5. Aurora checkpoints every step.
    let mut epochs = Vec::new();
    world.bump_counter(pid).unwrap(); // counter = 1
    for step in 1..=6u64 {
        let v = world.read_counter(pid).unwrap();
        let next = if step == 5 { 9999 } else { v * 2 }; // the bug
        let space = world.sls.kernel.proc(pid).unwrap().space;
        let addr = world.sls.kernel.vm.entries(space).unwrap()[0].start;
        world.sls.kernel.mem_write(pid, addr, &next.to_le_bytes()).unwrap();
        let cp = world.sls.checkpoint_now(gid).unwrap();
        epochs.push(cp.epoch);
        println!("step {step}: counter = {next}  (checkpoint epoch {})", cp.epoch);
    }

    // Something is wrong. Binary-search the history for the first bad
    // state — each probe is just a (lazy) restore of an old epoch.
    println!("\nbisecting {} checkpoints for the corruption…", epochs.len());
    let mut lo = 0usize;
    let mut hi = epochs.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let r = world.sls.sls_restore(gid, Some(epochs[mid]), RestoreMode::Lazy).unwrap();
        let v = world.read_counter(r.pids[0]).unwrap();
        let ok = v != 9999;
        println!("  epoch {}: counter = {v} → {}", epochs[mid], if ok { "good" } else { "BAD" });
        if ok {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    println!("first bad state: epoch {} (step {})", epochs[lo], lo + 1);
    assert_eq!(lo, 4, "the bug struck at step 5");

    // Rewind to just before the bug and export a core for the debugger.
    let r = world.sls.sls_restore(gid, Some(epochs[lo - 1]), RestoreMode::Full).unwrap();
    let core = world.sls.coredump(r.pids[0]).unwrap();
    println!(
        "\nrewound to epoch {}: counter = {} — exported {} byte ELF core for inspection",
        epochs[lo - 1],
        world.read_counter(r.pids[0]).unwrap(),
        core.len()
    );
}
