//! A custom application using the Aurora API (Table 3): the database
//! pattern of §3/§9.6.
//!
//! Instead of a storage engine, the store keeps everything in memory and
//! uses:
//! * `sls_journal` for synchronous, low-latency write-ahead logging,
//! * full checkpoints when the journal fills (then truncates it),
//! * recovery = restore the checkpoint + replay the journal tail.
//!
//! ```text
//! cargo run --example persistent_kv
//! ```

use aurora::prelude::*;
use aurora_core::RestoreMode;
use aurora_objstore::Oid;
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::units::fmt_ns;
use std::collections::BTreeMap;

/// The world's smallest durable KV store: a BTreeMap + the Aurora API.
struct KvStore {
    map: BTreeMap<String, String>,
    journal: Oid,
    gid: aurora_core::GroupId,
    pid: aurora_posix::Pid,
    journal_bytes: u64,
}

impl KvStore {
    fn put(&mut self, world: &mut World, key: &str, value: &str) {
        // WAL first (synchronous — durable when this returns)…
        let mut e = Encoder::new();
        e.str(key);
        e.str(value);
        let rec = e.finish_vec();
        world.sls.sls_journal(self.journal, &rec).unwrap();
        self.journal_bytes += rec.len() as u64;
        // …then the in-memory update.
        self.map.insert(key.to_string(), value.to_string());
        // Journal full? Fold everything into a checkpoint and truncate.
        if self.journal_bytes > 4096 {
            world.sls.sls_checkpoint(self.gid).unwrap();
            world.sls.sls_barrier(self.gid).unwrap();
            world.sls.sls_journal_truncate(self.journal).unwrap();
            self.journal_bytes = 0;
            println!("  (journal full → checkpoint + truncate)");
        }
    }
}

fn main() {
    let mut world = World::quickstart();
    let pid = world.sls.kernel.spawn("kv-store");
    let gid = world.sls.attach(pid, SlsOptions::default()).unwrap();
    let journal = world.sls.sls_journal_create(256).unwrap();
    let mut kv = KvStore { map: BTreeMap::new(), journal, gid, pid, journal_bytes: 0 };

    // Baseline checkpoint, then journal-backed writes.
    world.sls.sls_checkpoint(gid).unwrap();
    world.sls.sls_barrier(gid).unwrap();

    let t0 = world.clock.now();
    for i in 0..100 {
        kv.put(&mut world, &format!("user:{i:03}"), &format!("value-{i}"));
    }
    let per_put = (world.clock.now() - t0) / 100;
    println!("100 durable PUTs, {} per PUT (journal-synchronous)", fmt_ns(per_put));

    // Crash. The journal survives in place; the checkpoint survives via
    // COW; recovery composes them.
    world.sls.crash_and_reboot().unwrap();
    let epoch = world.sls.store().lock().last_epoch().unwrap();
    let manifest = world.sls.manifests_at(epoch).unwrap()[0];
    world.sls.restore_image(manifest, epoch, RestoreMode::Lazy).unwrap();

    // Replay the journal tail over the restored map (the fix-up an
    // Aurora-aware app does in its restore handler, §3).
    let records = world.sls.store().lock().journal_records(journal).unwrap();
    let mut recovered: BTreeMap<String, String> = BTreeMap::new();
    for rec in &records {
        let mut d = Decoder::new(rec);
        let k = d.str().unwrap().to_string();
        let v = d.str().unwrap().to_string();
        recovered.insert(k, v);
    }
    println!(
        "recovered {} journal records after the crash; user:042 = {:?}",
        records.len(),
        recovered.get("user:042")
    );
    assert_eq!(recovered.get("user:099").map(String::as_str), Some("value-99"));
    let _ = (kv.map.len(), kv.pid);
    println!("done: full durability with no storage engine in the application");
}
