//! # Aurora — a single level store, reproduced in Rust
//!
//! This meta-crate re-exports the public API of the Aurora single level
//! store reproduction ("The Aurora Single Level Store Operating System",
//! SOSP 2021). See the README for an architecture overview and DESIGN.md
//! for the substrate inventory and per-experiment index.
//!
//! The typical entry points are:
//!
//! * [`posix::Kernel`](aurora_posix::Kernel) — build a simulated machine
//!   and run POSIX-style applications on it.
//! * [`core::Sls`](aurora_core::Sls) — attach applications to the single
//!   level store, checkpoint, restore, and use the Aurora API.
//!
//! ```
//! use aurora::prelude::*;
//!
//! // Boot a simulated machine with an Optane-like striped store.
//! let mut world = World::quickstart();
//! let pid = world.spawn_counter_app();
//! let gid = world.sls.attach(pid, Default::default()).unwrap();
//! let cp = world.sls.checkpoint_now(gid).unwrap();
//! assert!(cp.stop_time_ns > 0);
//! ```

pub use aurora_apps as apps;
pub use aurora_cluster as cluster;
pub use aurora_core as core;
pub use aurora_criu as criu;
pub use aurora_fs as fs;
pub use aurora_objstore as objstore;
pub use aurora_posix as posix;
pub use aurora_sim as sim;
pub use aurora_storage as storage;
pub use aurora_vm as vm;
pub use aurora_workloads as workloads;

/// Convenience re-exports for examples and quickstarts.
pub mod prelude {
    pub use aurora_core::world::World;
    pub use aurora_core::{AuroraApi, Sls, SlsOptions};
    pub use aurora_posix::Kernel;
    pub use aurora_sim::units::*;
    pub use aurora_sim::{Clock, CostModel};
}
