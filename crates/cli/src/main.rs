//! `sls` — the Aurora command line (Table 2 of the paper), driving a
//! demonstration machine end to end:
//!
//! ```text
//! sls demo                 run the full attach/checkpoint/crash/restore tour
//! ```
//!
//! The simulated machine lives for one invocation (the kernel is a
//! user-space simulation); `demo` chains the Table 2 workflow so every
//! command's effect is visible: attach → periodic checkpoints → named
//! checkpoint → ps → crash → restore → time travel → suspend/resume →
//! dump → send/recv migration.
//!
//! ```text
//! sls stat                 run an instrumented workload, dump every gauge
//! sls watch                same workload, one live line per metrics sample
//! ```
//!
//! Both boot the machine with the virtual-time metrics sampler and the
//! online invariant checker armed; `stat --prom` / `stat --json` emit
//! the Prometheus text and time-series JSON exporters verbatim.

use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_sim::units::{fmt_bytes, fmt_ns};
use aurora_trace::{InvariantChecker, ProbeSpec};
use std::env;
use std::io::Write;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("demo");
    match cmd {
        "demo" => {
            // sls demo [--trace FILE]: record everything the demo does
            // and write a Chrome trace-event file loadable in Perfetto.
            let trace_path = args
                .iter()
                .position(|a| a == "--trace")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "trace.json".into()));
            demo(trace_path.as_deref());
        }
        "stat" => {
            let prom = args.iter().any(|a| a == "--prom");
            let json = args.iter().any(|a| a == "--json");
            if prom && json {
                eprintln!("pick one of --prom / --json");
                std::process::exit(2);
            }
            let period = flag_u64(&args, "--period").unwrap_or(10_000_000);
            let probe = flag_str(&args, "--probe");
            stat(prom, json, period, probe.as_deref());
        }
        "watch" => {
            let period = flag_u64(&args, "--period").unwrap_or(10_000_000);
            let steps = flag_u64(&args, "--steps").unwrap_or(12);
            watch(period, steps);
        }
        "cluster" => {
            let nodes = flag_u64(&args, "--nodes").unwrap_or(3) as usize;
            let quorum = flag_u64(&args, "--quorum").unwrap_or(2) as usize;
            let epochs = flag_u64(&args, "--epochs").unwrap_or(6);
            let kill = flag_u64(&args, "--kill").map(|k| k as usize);
            cluster_demo(nodes, quorum, epochs, kill);
        }
        "migrate" => {
            let rounds = flag_u64(&args, "--rounds").unwrap_or(6) as u32;
            let threshold = flag_u64(&args, "--threshold").unwrap_or(128);
            migrate_demo(rounds, threshold);
        }
        "explain" => {
            // sls explain epoch <n> [--json]: replay the deterministic
            // quorum scenario with provenance on and print epoch <n>'s
            // causal waterfall.
            if args.get(1).map(String::as_str) != Some("epoch") {
                eprintln!("usage: sls explain epoch <n> [--json] [--nodes N] [--quorum Q]");
                std::process::exit(2);
            }
            let epoch = match args.get(2).and_then(|v| v.parse::<u64>().ok()) {
                Some(e) if e > 0 => e,
                _ => {
                    eprintln!("explain wants a positive epoch number");
                    std::process::exit(2);
                }
            };
            let json = args.iter().any(|a| a == "--json");
            let nodes = flag_u64(&args, "--nodes").unwrap_or(3) as usize;
            let quorum = flag_u64(&args, "--quorum").unwrap_or(2) as usize;
            explain_epoch(epoch, json, nodes, quorum);
        }
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown or non-interactive command: {other}");
            eprintln!("(the simulated machine lives for one invocation; run `sls demo`)");
            usage();
            std::process::exit(2);
        }
    }
}

/// `--flag N` style argument, parsed as u64.
fn flag_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| {
        v.parse().map_err(|_| eprintln!("{name} wants a number, got {v:?}")).ok()
    })
}

/// `--flag VALUE` style argument, as a string.
fn flag_str(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn usage() {
    println!(
        "sls — the Aurora single level store CLI (reproduction)\n\n\
         USAGE: sls demo [--trace FILE]\n\
         \x20      sls stat [--prom | --json] [--period NS] [--probe PREFIX]\n\
         \x20      sls watch [--period NS] [--steps N]\n\
         \x20      sls cluster [--nodes N] [--quorum Q] [--epochs E] [--kill NODE]\n\
         \x20      sls migrate [--rounds N] [--threshold PAGES]\n\
         \x20      sls explain epoch <n> [--json] [--nodes N] [--quorum Q]\n\n\
         demo   walk the paper's Table 2 workflow: attach → periodic\n\
         \x20      checkpoints → named checkpoint → ps → crash → restore →\n\
         \x20      time travel → suspend/resume → dump → send/recv migration\n\
         \x20      --trace FILE  write Chrome trace-event JSON of the run\n\
         \x20                    (open in Perfetto or chrome://tracing)\n\n\
         stat   run an instrumented workload (checkpoints, a crash, a\n\
         \x20      restore) with the metrics sampler and invariant checker\n\
         \x20      armed, then print every subsystem gauge\n\
         \x20      --prom        emit Prometheus text exposition instead\n\
         \x20      --json        emit the deterministic time-series JSON\n\
         \x20      --period NS   virtual-time sampling period (default 10ms)\n\
         \x20      --probe PFX   count events whose name starts with PFX\n\n\
         watch  same workload, printing one line per metrics sample as\n\
         \x20      virtual time advances (a `sls stat` you can scroll)\n\n\
         cluster boot N replicated nodes on one virtual clock, commit\n\
         \x20      epochs at quorum Q, print per-node watermarks\n\
         \x20      --kill NODE   take a follower down halfway through\n\n\
         migrate live-migrate a memcached between cluster nodes under\n\
         \x20      mutilate load; prints pre-copy rounds and the final\n\
         \x20      stop-and-copy pause in virtual µs\n\n\
         explain replay the deterministic quorum scenario with epoch\n\
         \x20      provenance on, then print epoch <n>'s causal waterfall:\n\
         \x20      every hop from the leader's quiesce to the quorum-gated\n\
         \x20      release, with the critical path attributed to pipeline\n\
         \x20      stages, fabric links, and quorum members\n\
         \x20      --json        emit the full causal graph as JSON"
    );
}

/// The canned workload `stat`/`watch` instrument: attach two counter
/// apps as separate consistency groups (so the per-group pipeline and
/// quiesce gauges get distinct `g<N>` rows and ticks exercise the
/// overlapped scheduler), six checkpointed work intervals, a durable
/// named checkpoint, a power loss, recovery, restore, and two more
/// intervals. Deterministic — two runs produce byte-identical exporter
/// output. `step` is called after every `tick` with the 1-based
/// interval number.
fn instrumented_workload(w: &mut World, mut step: impl FnMut(&mut World, u64)) {
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let sidecar = w.spawn_counter_app();
    w.sls.attach(sidecar, SlsOptions::default()).unwrap();
    for i in 1..=6u64 {
        w.bump_counter(pid).unwrap();
        w.bump_counter(sidecar).unwrap();
        w.clock.advance(10_000_000);
        w.sls.tick().unwrap();
        step(w, i);
    }
    w.sls.name_checkpoint(gid, "stat-probe").unwrap();
    w.sls.sls_barrier(gid).unwrap();
    w.sls.crash_and_reboot().unwrap();
    step(w, 7);
    let epoch = w.sls.store().lock().last_epoch().unwrap();
    let manifest = w.sls.manifests_at(epoch).unwrap()[0];
    let r = w.sls.restore_image(manifest, epoch, RestoreMode::Full).unwrap();
    let pid = r.pids[0];
    for i in 8..=9u64 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        w.sls.tick().unwrap();
        step(w, i);
    }
}

fn stat(prom: bool, json: bool, period: u64, probe: Option<&str>) {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let sampler = w.enable_sampling(period);
    let probe_id = probe
        .map(|p| trace.probe(ProbeSpec::any().name_prefix(p.to_string()), |_| {}));
    instrumented_workload(&mut w, |_, _| {});
    w.sls.sample_metrics();

    if prom {
        print!("{}", sampler.prometheus_text("aurora"));
        return;
    }
    if json {
        println!("{}", sampler.series_json());
        return;
    }

    let now = w.clock.now();
    println!("sls stat — Aurora gauges after the instrumented workload (t={})", fmt_ns(now));
    println!();
    let gauges = w.sls.stat_gauges();
    let width = gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &gauges {
        println!("  {name:<width$}  {value}");
    }
    println!();
    println!(
        "sampler: {} rows every {} of virtual time; marks: {}",
        sampler.len(),
        fmt_ns(sampler.period_ns()),
        sampler
            .marks()
            .iter()
            .map(|(ts, l)| format!("{l}@{}", fmt_ns(*ts)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let (Some(p), Some(id)) = (probe, probe_id) {
        println!("probe {p:?}: {} matching events", trace.probe_hits(id));
    }
    println!(
        "invariants: {} events checked, {}",
        checker.checked(),
        if checker.is_clean() {
            "all clean".to_string()
        } else {
            format!("{} VIOLATIONS: {:?}", checker.violations().len(), checker.violations())
        }
    );
}

/// `sls cluster`: boot an N-node replicated cluster on one virtual
/// clock, commit epochs through the quorum pipeline, and print the
/// per-node watermark table as acks land. `--kill NODE` takes a
/// follower down halfway through to show the quorum riding it out.
fn cluster_demo(nodes: usize, quorum: usize, epochs: u64, kill: Option<usize>) {
    use aurora_cluster::{Cluster, ClusterConfig};
    println!("Booting a {nodes}-node Aurora cluster (quorum {quorum}) on one virtual clock…");
    let mut c = Cluster::new(ClusterConfig { nodes, quorum, ..ClusterConfig::default() });
    c.enable_provenance(8);
    let pid = c.leader().kernel.spawn("counter");
    let addr = c.leader().kernel.mmap_anon(pid, 16, aurora_vm::Prot::RW).unwrap();
    c.leader().kernel.mem_write(pid, addr, &0u64.to_le_bytes()).unwrap();
    let gid = c
        .attach_on_leader(pid, SlsOptions { external_synchrony: true, ..SlsOptions::default() })
        .unwrap();
    println!("Leader pid {} attached as group g{} (external synchrony on)", pid.0, gid.0);
    println!(
        "  {:>5}  {:>12}  {:>8}  {}",
        "epoch",
        "durable_at",
        "quorum",
        (0..nodes).map(|n| format!("{:>8}", format!("node{n}"))).collect::<Vec<_>>().join("  ")
    );
    for i in 1..=epochs {
        if let Some(k) = kill {
            if i == epochs / 2 + 1 && c.nodes[k].alive {
                println!("  -- killing node {k} --");
                c.kill(k);
            }
        }
        let mut buf = [0u8; 8];
        c.leader().kernel.mem_read(pid, addr, &mut buf).unwrap();
        let v = u64::from_le_bytes(buf) + 1;
        c.leader().kernel.mem_write(pid, addr, &v.to_le_bytes()).unwrap();
        let stats = c.checkpoint_and_replicate(gid).unwrap();
        c.drain().unwrap();
        let marks = c.watermarks(gid.0);
        println!(
            "  {:>5}  {:>12}  {:>8}  {}",
            stats.epoch,
            fmt_ns(stats.durable_at),
            c.quorum_watermark(gid.0),
            marks.iter().map(|&(_, w)| format!("{w:>8}")).collect::<Vec<_>>().join("  ")
        );
    }
    let gauges = c.leader().stat_gauges();
    println!("\ncluster gauges on the leader:");
    for (name, v) in gauges.iter().filter(|(n, _)| n.starts_with("cluster.")) {
        println!("  {name:<32} {v}");
    }
    println!("\ntrace rings (bounded; drops mean provenance graphs go lossy):");
    for i in 0..c.nodes.len() {
        let t = c.node_trace(i);
        println!(
            "  node{i}: {} events recorded, {} dropped{}",
            t.event_count(),
            t.dropped_records(),
            if t.dropped_records() > 0 { "  [lossy]" } else { "" }
        );
    }
    println!(
        "fabric: {} msgs / {} on the wire, {} dropped",
        c.fabric.stats().sent_msgs,
        fmt_bytes(c.fabric.stats().sent_bytes),
        c.fabric.stats().dropped_msgs
    );
}

/// `sls explain epoch <n>`: replay the deterministic quorum scenario
/// with per-node tracing and provenance on, stitch epoch `n`'s causal
/// graph out of the nodes' trace rings, and print the per-hop latency
/// waterfall with critical-path attribution. `--json` emits the whole
/// graph (events, edges, critical path) as deterministic JSON —
/// byte-identical across reruns, since the cluster runs on virtual
/// time.
fn explain_epoch(epoch: u64, json: bool, nodes: usize, quorum: usize) {
    use aurora_cluster::{Cluster, ClusterConfig};
    use aurora_trace::HopKind;
    let mut c = Cluster::new(ClusterConfig { nodes, quorum, ..ClusterConfig::default() });
    c.enable_provenance(16);
    let pid = c.leader().kernel.spawn("counter");
    let addr = c.leader().kernel.mmap_anon(pid, 16, aurora_vm::Prot::RW).unwrap();
    c.leader().kernel.mem_write(pid, addr, &0u64.to_le_bytes()).unwrap();
    let gid = c
        .attach_on_leader(pid, SlsOptions { external_synchrony: true, ..SlsOptions::default() })
        .unwrap();
    // Commit rounds until the requested epoch exists (bounded — epochs
    // advance by at least one per round).
    let mut last = 0;
    for _ in 0..epoch + 4 {
        if last >= epoch {
            break;
        }
        let mut buf = [0u8; 8];
        c.leader().kernel.mem_read(pid, addr, &mut buf).unwrap();
        let v = u64::from_le_bytes(buf) + 1;
        c.leader().kernel.mem_write(pid, addr, &v.to_le_bytes()).unwrap();
        last = c.checkpoint_and_replicate(gid).unwrap().epoch;
        c.drain().unwrap();
    }
    let Some(g) = c.epoch_graph(gid.0, epoch) else {
        let avail = c.leader().store().lock().epochs_for(gid.0).to_vec();
        eprintln!("no causal graph for epoch {epoch} of g{}; group epochs: {avail:?}", gid.0);
        std::process::exit(2);
    };
    if json {
        println!("{}", g.to_json());
        return;
    }

    let cp = g.critical_path();
    println!(
        "sls explain — epoch {epoch} of g{} on a {nodes}-node cluster (quorum {quorum})",
        gid.0
    );
    println!(
        "\ncausal graph: {} hops across {} nodes, {}, {}",
        g.events.len(),
        g.node_span(),
        if g.is_acyclic() { "acyclic" } else { "CYCLIC" },
        if g.truncated { "TRUNCATED (ring drops — graph may be missing hops)" } else { "complete" }
    );
    println!(
        "critical path (seal → release): {} over {} hops\n",
        fmt_ns(cp.total_ns),
        cp.hops.len()
    );
    println!(
        "  {:>12}  {:>12}  {:>12}  {:>5}  {:<6}  {:<18}  waterfall",
        "from", "until", "dur", "node", "kind", "hop"
    );
    const BAR: usize = 24;
    for h in &cp.hops {
        let (lead, fill) = if cp.total_ns == 0 {
            (0, 0)
        } else {
            (
                ((h.from_ns - cp.start_ns) as usize * BAR) / cp.total_ns as usize,
                (((h.dur_ns as usize) * BAR) / cp.total_ns as usize).max(1),
            )
        };
        println!(
            "  {:>12}  {:>12}  {:>12}  {:>5}  {:<6}  {:<18}  {}{}",
            fmt_ns(h.from_ns),
            fmt_ns(h.until_ns),
            fmt_ns(h.dur_ns),
            h.node,
            h.kind.as_str(),
            h.label,
            " ".repeat(lead.min(BAR)),
            "#".repeat(fill.min(BAR + 1 - lead.min(BAR)))
        );
    }
    println!("\nattribution:");
    for kind in [HopKind::Stage, HopKind::Link, HopKind::Member, HopKind::Local] {
        let ns = cp.attributed_ns(kind);
        let pct = (ns * 100).checked_div(cp.total_ns).unwrap_or(0);
        println!("  {:<6}  {:>12}  {pct:>3}%", kind.as_str(), fmt_ns(ns));
    }
    let hop_sum: u64 = cp.hops.iter().map(|h| h.dur_ns).sum();
    println!(
        "\nhop durations sum to {} = end-to-end release latency ({})",
        fmt_ns(hop_sum),
        fmt_ns(cp.end_ns - cp.start_ns)
    );
    if let Some(fr) = c.flight_recorder() {
        println!("flight recorder: {} epoch graphs on board (cap {})", fr.len(), fr.capacity());
    }
}

/// `sls migrate`: live-migrate a running memcached between cluster
/// nodes under mutilate traffic, printing each pre-copy round and the
/// final stop-and-copy pause in virtual µs.
fn migrate_demo(max_rounds: u32, threshold: u64) {
    use aurora_apps::memcached::Memcached;
    use aurora_cluster::{Cluster, ClusterConfig, MigrationConfig};
    use aurora_workloads::mutilate::{McOp, Mutilate, MutilateConfig};
    println!("Booting a 3-node cluster; memcached on the leader, mutilate at the door…");
    let mut c = Cluster::new(ClusterConfig::default());
    let mut mc = Memcached::launch(&mut c.leader().kernel, 2048, 12).unwrap();
    let gid = c.attach_on_leader(mc.pid, SlsOptions::default()).unwrap();
    let mut gen = Mutilate::new(MutilateConfig { keyspace: 512, ..MutilateConfig::default() });
    for i in 0..400u32 {
        let key = format!("seed-{i:08}").into_bytes();
        let mut v = key.clone();
        v.resize(256, b'v');
        mc.set(&mut c.leader().kernel, &key, &v).unwrap();
    }
    for _ in 0..2_000 {
        match gen.next_op() {
            McOp::Set { key, value_len } => {
                let mut v = key.to_vec();
                v.resize(value_len.max(8), b'v');
                mc.set(&mut c.leader().kernel, &key, &v).unwrap();
            }
            McOp::Get { key } => {
                mc.get(&mut c.leader().kernel, &key).unwrap();
            }
        }
    }
    println!("Warmed {} keys; migrating group g{} leader → node 2 under load…", mc.keys(), gid.0);
    let report = c
        .live_migrate(
            2,
            gid,
            MigrationConfig { max_rounds, dirty_threshold_pages: threshold },
            |sls, _round| {
                for _ in 0..200 {
                    match gen.next_op() {
                        McOp::Set { key, value_len } => {
                            let mut v = key.to_vec();
                            v.resize(value_len.max(8), b'v');
                            mc.set(&mut sls.kernel, &key, &v)?;
                        }
                        McOp::Get { key } => {
                            mc.get(&mut sls.kernel, &key)?;
                        }
                    }
                }
                Ok(())
            },
        )
        .unwrap();
    println!("  {:>5}  {:>6}  {:>10}  {:>12}  {:>12}", "round", "epoch", "pages", "bytes", "took");
    for r in &report.rounds {
        println!(
            "  {:>5}  {:>6}  {:>10}  {:>12}  {:>12}",
            r.round,
            r.epoch,
            r.pages,
            fmt_bytes(r.bytes),
            fmt_ns(r.elapsed_ns)
        );
    }
    println!(
        "stop-and-copy pause: {} µs (virtual); {} total over {} pages",
        report.stop_copy_pause_us,
        fmt_bytes(report.total_bytes),
        report.total_pages
    );
    let new_pid = *report.restore.pids.first().expect("restored server process");
    let mut mc_target = mc.failover_to(new_pid);
    let keys = mc.key_list();
    let mut verified = 0usize;
    for key in &keys {
        let a = mc.get(&mut c.leader().kernel, key).unwrap();
        let b = mc_target.get(&mut c.nodes[2].sls.kernel, key).unwrap();
        assert_eq!(a, b, "post-failover mismatch on {:?}", String::from_utf8_lossy(key));
        verified += 1;
    }
    println!(
        "failover: target pid {} on node 2 serves {verified}/{} keys byte-identical to the source",
        new_pid.0,
        keys.len()
    );
}

fn watch(period: u64, steps: u64) {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let sampler = w.enable_sampling(period);
    println!("sls watch — one line per metrics sample (virtual-time period {})", fmt_ns(period));
    const COLS: [&str; 8] = [
        "store.current_epoch",
        "frames.resident",
        "store.cache_pages",
        "pipeline.checkpoints",
        "dev.bytes_written",
        "redo.appended",
        "device.health.worst",
        "cluster.quorum_lag",
    ];
    println!(
        "  {:>10}  {}",
        "t",
        COLS.map(|c| format!("{c:>20}")).join("  ")
    );
    let mut seen = 0usize;
    let mut seen_marks = 0usize;
    let emit = |sampler: &aurora_trace::Sampler, seen: &mut usize, seen_marks: &mut usize| {
        // Merge new sample rows and new discontinuity marks by virtual
        // time so a reboot prints between the rows it interrupted.
        let marks = sampler.marks();
        let samples = sampler.samples();
        let mut lines: Vec<(u64, String)> = Vec::new();
        for (ts, label) in marks.iter().skip(*seen_marks) {
            lines.push((*ts, format!("  {:>10}  -- {label} --", fmt_ns(*ts))));
            *seen_marks += 1;
        }
        for s in samples.iter().skip(*seen) {
            let row = COLS
                .map(|c| {
                    s.values
                        .iter()
                        .find(|(n, _)| n == c)
                        .map(|(_, v)| format!("{v:>20}"))
                        .unwrap_or_else(|| format!("{:>20}", "-"))
                })
                .join("  ");
            lines.push((s.ts, format!("  {:>10}  {row}", fmt_ns(s.ts))));
            *seen += 1;
        }
        lines.sort_by_key(|(ts, _)| *ts);
        for (_, line) in lines {
            println!("{line}");
        }
    };
    let mut left = steps;
    instrumented_workload(&mut w, |w, _| {
        if left > 0 {
            w.sls.sample_metrics();
            emit(w.sls.sampler().unwrap(), &mut seen, &mut seen_marks);
            left -= 1;
        }
    });
    w.sls.sample_metrics();
    emit(&sampler, &mut seen, &mut seen_marks);
    println!(
        "watched {} samples; invariants: {} events checked, {}",
        seen,
        checker.checked(),
        if checker.is_clean() { "all clean" } else { "VIOLATIONS" }
    );
}

fn demo(trace_path: Option<&str>) {
    println!("Booting a simulated machine (4× Optane-like devices, 64 KiB stripe)…");
    let mut w = World::quickstart();
    let trace = trace_path.map(|_| w.enable_tracing());
    let pid = w.spawn_counter_app();
    println!("Spawned demo app as pid {}", pid.0);

    // sls attach
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    println!("\n$ sls attach {}", pid.0);
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    println!(
        "  attached as group {}; full checkpoint: epoch {}, stop {}, {} flushed",
        gid.0,
        cp.epoch,
        fmt_ns(cp.stop_time_ns),
        fmt_bytes(cp.bytes_flushed)
    );
    println!("  pipeline stages (stop = first six):");
    for (name, ns) in cp.stages() {
        println!("    {name:<9} {}", fmt_ns(ns));
    }
    println!("    {:<9} {}", "total", fmt_ns(cp.stage_total_ns()));

    // Work + periodic checkpoints.
    println!("\n$ (app works; Aurora checkpoints every 10 ms)");
    for i in 1..=5u64 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        let stats = w.sls.tick().unwrap();
        if let Some(s) = stats.first() {
            println!(
                "  t={:>3} ms  counter={}  epoch {} (stop {})",
                (i * 10),
                w.read_counter(pid).unwrap(),
                s.epoch,
                fmt_ns(s.stop_time_ns)
            );
        }
    }

    // sls checkpoint <name>
    println!("\n$ sls checkpoint before-crash");
    let named_epoch = w.sls.name_checkpoint(gid, "before-crash").unwrap();
    // Wait for durability — a named checkpoint should survive anything.
    w.sls.sls_barrier(gid).unwrap();
    println!("  named epoch {named_epoch} \"before-crash\" (durable)");

    // sls ps
    println!("\n$ sls ps");
    for g in w.sls.groups() {
        let history = w.sls.history(g).unwrap().to_vec();
        println!(
            "  group {}: {} member(s), {} checkpoints (epochs {:?}…)",
            g.0,
            w.sls.group_pids(g).unwrap().len(),
            history.len(),
            &history[..history.len().min(4)]
        );
    }

    // Crash.
    println!("\n$ (machine crashes: power loss)");
    w.bump_counter(pid).unwrap(); // lost work
    w.sls.crash_and_reboot().unwrap();
    println!("  kernel rebooted; all processes died; store recovered");

    // sls restore
    println!("\n$ sls restore");
    let epoch = w.sls.store().lock().last_epoch().unwrap();
    let manifest = w.sls.manifests_at(epoch).unwrap()[0];
    let r = w.sls.restore_image(manifest, epoch, RestoreMode::Full).unwrap();
    let new_pid = r.pids[0];
    let local = w.sls.kernel.proc(new_pid).unwrap().local_pid.0;
    let counter = w.read_counter(new_pid).unwrap();
    println!(
        "  restored epoch {epoch}: pid {} (local pid preserved: {local}), counter={counter}",
        new_pid.0,
    );

    // Time travel to the named checkpoint.
    println!("\n$ sls restore --name before-crash   (time travel)");
    let r2 = w.sls.restore_image(manifest, named_epoch, RestoreMode::Lazy).unwrap();
    println!(
        "  lazily restored epoch {named_epoch}: counter={} ({} pages read eagerly)",
        w.read_counter(r2.pids[0]).unwrap(),
        r2.pages_read
    );

    // suspend/resume: evict everything, then fault back.
    println!("\n$ sls suspend {} && sls resume", new_pid.0);
    let g2 = r.group;
    w.sls.sls_checkpoint(g2).unwrap();
    w.sls.sls_barrier(g2).unwrap();
    let evicted = w.sls.evict_clean_pages(g2, u64::MAX).unwrap();
    println!("  suspended: {evicted} pages evicted to the store (no IO — already clean)");
    let v = w.read_counter(new_pid).unwrap();
    println!("  resumed: first touch faulted the state back; counter={v}");

    // sls dump
    println!("\n$ sls dump core.{}", new_pid.0);
    let core = w.sls.coredump(new_pid).unwrap();
    let path = std::env::temp_dir().join(format!("aurora-core.{}", new_pid.0));
    std::fs::File::create(&path).and_then(|mut f| f.write_all(&core)).unwrap();
    println!("  wrote {} ({} bytes, ELF64 ET_CORE)", path.display(), core.len());

    // sls send / recv
    println!("\n$ sls send | ssh other-machine sls recv");
    let mut other = World::quickstart();
    let cp = w.sls.sls_checkpoint(g2).unwrap();
    w.sls.sls_barrier(g2).unwrap();
    let moved = w.sls.migrate_to(&mut other.sls, cp.epoch, RestoreMode::Full).unwrap();
    println!(
        "  migrated: remote pid {}, counter={} — execution state crossed machines",
        moved.pids[0].0,
        other.read_counter(moved.pids[0]).unwrap()
    );

    println!("\nDemo complete.");

    if let (Some(path), Some(trace)) = (trace_path, trace) {
        let json = aurora_trace::chrome::export(&trace.events());
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "Wrote {path}: {} events across the sim/storage/objstore/vm/posix/pipeline layers",
            trace.event_count()
        );
    }
}
