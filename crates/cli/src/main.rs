//! `sls` — the Aurora command line (Table 2 of the paper), driving a
//! demonstration machine end to end:
//!
//! ```text
//! sls demo                 run the full attach/checkpoint/crash/restore tour
//! ```
//!
//! The simulated machine lives for one invocation (the kernel is a
//! user-space simulation); `demo` chains the Table 2 workflow so every
//! command's effect is visible: attach → periodic checkpoints → named
//! checkpoint → ps → crash → restore → time travel → suspend/resume →
//! dump → send/recv migration.

use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_sim::units::{fmt_bytes, fmt_ns};
use std::env;
use std::io::Write;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("demo");
    match cmd {
        "demo" => {
            // sls demo [--trace FILE]: record everything the demo does
            // and write a Chrome trace-event file loadable in Perfetto.
            let trace_path = args
                .iter()
                .position(|a| a == "--trace")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "trace.json".into()));
            demo(trace_path.as_deref());
        }
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown or non-interactive command: {other}");
            eprintln!("(the simulated machine lives for one invocation; run `sls demo`)");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "sls — the Aurora single level store CLI (reproduction)\n\n\
         USAGE: sls demo [--trace FILE]\n\n\
         --trace FILE  record a deterministic event trace of the demo\n\
         \x20             and write Chrome trace-event JSON (open it in\n\
         \x20             Perfetto or chrome://tracing)\n\n\
         The demo walks the paper's Table 2 workflow on a simulated\n\
         machine: attach → periodic checkpoints → named checkpoint →\n\
         ps → crash → restore → time travel → suspend/resume →\n\
         dump → send/recv migration."
    );
}

fn demo(trace_path: Option<&str>) {
    println!("Booting a simulated machine (4× Optane-like devices, 64 KiB stripe)…");
    let mut w = World::quickstart();
    let trace = trace_path.map(|_| w.enable_tracing());
    let pid = w.spawn_counter_app();
    println!("Spawned demo app as pid {}", pid.0);

    // sls attach
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    println!("\n$ sls attach {}", pid.0);
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    println!(
        "  attached as group {}; full checkpoint: epoch {}, stop {}, {} flushed",
        gid.0,
        cp.epoch,
        fmt_ns(cp.stop_time_ns),
        fmt_bytes(cp.bytes_flushed)
    );
    println!("  pipeline stages (stop = first six):");
    for (name, ns) in cp.stages() {
        println!("    {name:<9} {}", fmt_ns(ns));
    }
    println!("    {:<9} {}", "total", fmt_ns(cp.stage_total_ns()));

    // Work + periodic checkpoints.
    println!("\n$ (app works; Aurora checkpoints every 10 ms)");
    for i in 1..=5u64 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        let stats = w.sls.tick().unwrap();
        if let Some(s) = stats.first() {
            println!(
                "  t={:>3} ms  counter={}  epoch {} (stop {})",
                (i * 10),
                w.read_counter(pid).unwrap(),
                s.epoch,
                fmt_ns(s.stop_time_ns)
            );
        }
    }

    // sls checkpoint <name>
    println!("\n$ sls checkpoint before-crash");
    let named_epoch = w.sls.name_checkpoint(gid, "before-crash").unwrap();
    // Wait for durability — a named checkpoint should survive anything.
    w.sls.sls_barrier(gid).unwrap();
    println!("  named epoch {named_epoch} \"before-crash\" (durable)");

    // sls ps
    println!("\n$ sls ps");
    for g in w.sls.groups() {
        let history = w.sls.history(g).unwrap().to_vec();
        println!(
            "  group {}: {} member(s), {} checkpoints (epochs {:?}…)",
            g.0,
            w.sls.group_pids(g).unwrap().len(),
            history.len(),
            &history[..history.len().min(4)]
        );
    }

    // Crash.
    println!("\n$ (machine crashes: power loss)");
    w.bump_counter(pid).unwrap(); // lost work
    w.sls.crash_and_reboot().unwrap();
    println!("  kernel rebooted; all processes died; store recovered");

    // sls restore
    println!("\n$ sls restore");
    let epoch = w.sls.store().lock().last_epoch().unwrap();
    let manifest = w.sls.manifests_at(epoch).unwrap()[0];
    let r = w.sls.restore_image(manifest, epoch, RestoreMode::Full).unwrap();
    let new_pid = r.pids[0];
    let local = w.sls.kernel.proc(new_pid).unwrap().local_pid.0;
    let counter = w.read_counter(new_pid).unwrap();
    println!(
        "  restored epoch {epoch}: pid {} (local pid preserved: {local}), counter={counter}",
        new_pid.0,
    );

    // Time travel to the named checkpoint.
    println!("\n$ sls restore --name before-crash   (time travel)");
    let r2 = w.sls.restore_image(manifest, named_epoch, RestoreMode::Lazy).unwrap();
    println!(
        "  lazily restored epoch {named_epoch}: counter={} ({} pages read eagerly)",
        w.read_counter(r2.pids[0]).unwrap(),
        r2.pages_read
    );

    // suspend/resume: evict everything, then fault back.
    println!("\n$ sls suspend {} && sls resume", new_pid.0);
    let g2 = r.group;
    w.sls.sls_checkpoint(g2).unwrap();
    w.sls.sls_barrier(g2).unwrap();
    let evicted = w.sls.evict_clean_pages(g2, u64::MAX).unwrap();
    println!("  suspended: {evicted} pages evicted to the store (no IO — already clean)");
    let v = w.read_counter(new_pid).unwrap();
    println!("  resumed: first touch faulted the state back; counter={v}");

    // sls dump
    println!("\n$ sls dump core.{}", new_pid.0);
    let core = w.sls.coredump(new_pid).unwrap();
    let path = std::env::temp_dir().join(format!("aurora-core.{}", new_pid.0));
    std::fs::File::create(&path).and_then(|mut f| f.write_all(&core)).unwrap();
    println!("  wrote {} ({} bytes, ELF64 ET_CORE)", path.display(), core.len());

    // sls send / recv
    println!("\n$ sls send | ssh other-machine sls recv");
    let mut other = World::quickstart();
    let cp = w.sls.sls_checkpoint(g2).unwrap();
    w.sls.sls_barrier(g2).unwrap();
    let moved = w.sls.migrate_to(&mut other.sls, cp.epoch, RestoreMode::Full).unwrap();
    println!(
        "  migrated: remote pid {}, counter={} — execution state crossed machines",
        moved.pids[0].0,
        other.read_counter(moved.pids[0]).unwrap()
    );

    println!("\nDemo complete.");

    if let (Some(path), Some(trace)) = (trace_path, trace) {
        let json = aurora_trace::chrome::export(&trace.events());
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "Wrote {path}: {} events across the sim/storage/objstore/vm/posix/pipeline layers",
            trace.event_count()
        );
    }
}
