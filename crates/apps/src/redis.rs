//! A Redis-like dictionary server with the fork-based RDB save
//! (Tables 1 and 7).
//!
//! `BGSAVE` forks the process and writes the key-value pairs from the
//! child: the parent stalls only for the fork (page-table COW setup),
//! then the child serializes — the paper measures both phases.

use crate::Arena;
use aurora_posix::{KError, Kernel, Pid};
use aurora_sim::clock::Stopwatch;
use aurora_storage::device::SharedDevice;
use std::collections::HashMap;

/// Per-command CPU cost.
pub const SERVICE_NS: u64 = 2_000;
/// RDB serialization throughput, bytes/s (Table 7: writing 500 MB takes
/// ~300 ms "because of serialization overheads").
pub const RDB_SERIALIZE_BW: u64 = 1_670_000_000;

/// What a BGSAVE cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RdbStats {
    /// Parent stall: the fork itself (page-table COW setup).
    pub fork_stop_ns: u64,
    /// Child time to serialize + write the dataset.
    pub save_ns: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Keys saved.
    pub keys: u64,
}

/// The server.
pub struct Redis {
    /// Server process.
    pub pid: Pid,
    arena: Arena,
    dict: HashMap<Vec<u8>, (u64, u32)>,
    bytes: u64,
}

impl Redis {
    /// Launches a server with an `arena_pages`-page data arena, spread
    /// over ~128 mappings like a real jemalloc heap, plus the descriptor
    /// footprint of a running Redis (listening socket, log, config).
    pub fn launch(k: &mut Kernel, arena_pages: u64) -> Result<Self, KError> {
        let pid = k.spawn("redis");
        let chunks = (arena_pages / 1024).clamp(1, 128);
        let arena = Arena::map_chunked(k, pid, arena_pages, chunks)?;
        use crate::aurora_posix_reexports::*;
        let lfd = k.socket(pid, Domain::Inet, SockType::Stream)?;
        k.bind_inet(pid, lfd, InetAddr { ip: 0x7f00_0001, port: 6379 })?;
        k.listen(pid, lfd)?;
        let log = k.open(pid, "/redis.log", OpenFlags::WRONLY, true)?;
        k.write(pid, log, b"redis started")?;
        k.open(pid, "/redis.conf", OpenFlags::RDONLY, true)?;
        Ok(Self { pid, arena, dict: HashMap::new(), bytes: 0 })
    }

    /// SET.
    pub fn set(&mut self, k: &mut Kernel, key: &[u8], value: &[u8]) -> Result<(), KError> {
        k.charge.raw(SERVICE_NS);
        let (addr, wrapped) = self.arena.append(k, value)?;
        if wrapped {
            self.dict.clear();
            self.bytes = 0;
        }
        if self
            .dict
            .insert(key.to_vec(), (addr, value.len() as u32))
            .is_none()
        {
            self.bytes += (key.len() + value.len()) as u64;
        }
        Ok(())
    }

    /// GET.
    pub fn get(&mut self, k: &mut Kernel, key: &[u8]) -> Result<Option<Vec<u8>>, KError> {
        k.charge.raw(SERVICE_NS);
        match self.dict.get(key) {
            Some(&(addr, len)) => Ok(Some(self.arena.read(k, addr, len as usize)?)),
            None => Ok(None),
        }
    }

    /// Dataset size in bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.bytes
    }

    /// Populates the server to roughly `target_bytes` of data (setup for
    /// the Table 1/7 runs).
    pub fn populate(&mut self, k: &mut Kernel, target_bytes: u64) -> Result<(), KError> {
        let value = vec![0xAB; 4096 - 64];
        let mut i = 0u64;
        while self.bytes < target_bytes {
            self.set(k, format!("key:{i:012}").as_bytes(), &value)?;
            i += 1;
        }
        Ok(())
    }

    /// BGSAVE: fork, then serialize from the child. The parent's stall is
    /// the fork; the child's serialization + device write happens while
    /// the parent keeps running.
    pub fn bgsave(&mut self, k: &mut Kernel, dev: &SharedDevice) -> Result<RdbStats, KError> {
        let clock = k.charge.clock().clone();

        // Parent stall: fork (the page-table copy dominates).
        let sw_fork = Stopwatch::start(&clock);
        let child = k.fork(self.pid)?;
        let fork_stop_ns = sw_fork.elapsed_ns();

        // Child: walk the dict, serialize each pair, write out. The
        // serialization bandwidth limits the write (Table 7).
        let sw_save = Stopwatch::start(&clock);
        let bytes = self.bytes;
        k.charge.raw(bytes.saturating_mul(1_000_000_000) / RDB_SERIALIZE_BW);
        // One sequential device write of the serialized image.
        {
            let mut d = dev.lock();
            let block = vec![0u8; 1 << 20];
            let blocks = bytes.div_ceil(1 << 20);
            let capacity = d.capacity_blocks();
            for i in 0..blocks {
                let lba = (i * 256) % capacity.saturating_sub(256).max(1);
                d.write(lba, &block).map_err(|_| KError::Inval)?;
            }
            let c = d.flush();
            clock.advance_to(c.done_at);
        }
        let save_ns = sw_save.elapsed_ns();

        k.exit(child)?;
        Ok(RdbStats { fork_stop_ns, save_ns, bytes, keys: self.dict.len() as u64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::Clock;
    use aurora_storage::testbed_array;

    #[test]
    fn set_get_roundtrip() {
        let mut k = Kernel::boot();
        let mut r = Redis::launch(&mut k, 1024).unwrap();
        r.set(&mut k, b"a", b"1").unwrap();
        assert_eq!(r.get(&mut k, b"a").unwrap().unwrap(), b"1");
    }

    #[test]
    fn bgsave_fork_stall_scales_with_dataset() {
        let mut stalls = Vec::new();
        for mib in [8u64, 64] {
            let mut k = Kernel::boot();
            let dev = testbed_array(k.charge.clock(), 1 << 30);
            let mut r = Redis::launch(&mut k, mib * 256 + 1024).unwrap();
            r.populate(&mut k, mib << 20).unwrap();
            let stats = r.bgsave(&mut k, &dev).unwrap();
            assert!(stats.save_ns > stats.fork_stop_ns, "save happens off the stall");
            stalls.push(stats.fork_stop_ns);
        }
        assert!(stalls[1] > stalls[0] * 3, "fork stall must scale: {stalls:?}");
        let _ = Clock::new();
    }
}
