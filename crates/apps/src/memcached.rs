//! A Memcached-like in-memory KV server (Figures 4–5).
//!
//! All data lives in kernel memory: under transparent persistence, every
//! SET's page writes pay COW faults after each checkpoint's system
//! shadow, and responses are withheld by external synchrony — the two
//! effects the Memcached figures measure.

use crate::Arena;
use aurora_posix::{KError, Kernel, Pid};
use std::collections::HashMap;

/// Aggregate per-operation CPU cost of the 12-thread server (parse +
/// hash + LRU), calibrated so the uncheckpointed server peaks near the
/// paper's ~1M ops/s.
pub const SERVICE_NS: u64 = 950;

/// Size of the metadata region (hash buckets + LRU nodes), pages.
/// Every operation — GETs included, via the LRU bump — writes a node
/// somewhere in this region, which is what makes transparent
/// checkpointing expensive: after each system shadow those scattered
/// pages refault and copy.
pub const META_PAGES: u64 = 4096;

/// The server.
pub struct Memcached {
    /// Server process.
    pub pid: Pid,
    arena: Arena,
    /// Hash-bucket + LRU metadata region.
    meta_addr: u64,
    index: HashMap<Vec<u8>, (u64, u32)>,
    /// Operations served.
    pub ops: u64,
    /// Arena wraps (evict-everything events).
    pub wraps: u64,
}

fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Memcached {
    /// Launches the server with an `arena_pages`-page value arena and
    /// `threads` worker threads.
    pub fn launch(k: &mut Kernel, arena_pages: u64, threads: u32) -> Result<Self, KError> {
        let pid = k.spawn("memcached");
        for _ in 1..threads {
            k.add_thread(pid)?;
        }
        let arena = Arena::map(k, pid, arena_pages)?;
        let meta_addr = k.mmap_anon(pid, META_PAGES, aurora_vm::Prot::RW)?;
        Ok(Self { pid, arena, meta_addr, index: HashMap::new(), ops: 0, wraps: 0 })
    }

    /// The LRU/hash metadata update every command performs.
    fn touch_meta(&mut self, k: &mut Kernel, key: &[u8]) -> Result<(), KError> {
        let slot = key_hash(key) % (META_PAGES * 4096 / 64);
        let addr = self.meta_addr + slot * 64;
        k.mem_write(self.pid, addr, &slot.to_le_bytes())
    }

    /// SET: store a value.
    pub fn set(&mut self, k: &mut Kernel, key: &[u8], value: &[u8]) -> Result<(), KError> {
        k.charge.raw(SERVICE_NS);
        self.touch_meta(k, key)?;
        let (addr, wrapped) = self.arena.append(k, value)?;
        if wrapped {
            // The bump wrap invalidates everything older (slab reuse).
            self.index.clear();
            self.wraps += 1;
        }
        self.index.insert(key.to_vec(), (addr, value.len() as u32));
        self.ops += 1;
        Ok(())
    }

    /// GET: fetch a value.
    pub fn get(&mut self, k: &mut Kernel, key: &[u8]) -> Result<Option<Vec<u8>>, KError> {
        k.charge.raw(SERVICE_NS);
        self.touch_meta(k, key)?;
        self.ops += 1;
        match self.index.get(key) {
            Some(&(addr, len)) => Ok(Some(self.arena.read(k, addr, len as usize)?)),
            None => Ok(None),
        }
    }

    /// Number of live keys.
    pub fn keys(&self) -> usize {
        self.index.len()
    }

    /// The live keys, sorted (verification sweeps).
    pub fn key_list(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.index.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Rebinds the server's host-side handle to a restored process on
    /// the target machine after a live migration: the restored image
    /// keeps its virtual addresses, so the index and arena offsets stay
    /// valid — only the owning pid changes. The source handle keeps
    /// serving until the caller fails traffic over.
    pub fn failover_to(&self, pid: Pid) -> Self {
        Self {
            pid,
            arena: self.arena.rebind(pid),
            meta_addr: self.meta_addr,
            index: self.index.clone(),
            ops: self.ops,
            wraps: self.wraps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut k = Kernel::boot();
        let mut mc = Memcached::launch(&mut k, 1024, 12).unwrap();
        mc.set(&mut k, b"user:1", b"alice").unwrap();
        mc.set(&mut k, b"user:2", b"bob").unwrap();
        assert_eq!(mc.get(&mut k, b"user:1").unwrap().unwrap(), b"alice");
        assert_eq!(mc.get(&mut k, b"user:2").unwrap().unwrap(), b"bob");
        assert_eq!(mc.get(&mut k, b"user:3").unwrap(), None);
        assert_eq!(mc.ops, 5);
    }

    #[test]
    fn sets_dirty_pages() {
        let mut k = Kernel::boot();
        let mut mc = Memcached::launch(&mut k, 1024, 12).unwrap();
        let frames_before = k.vm.resident_frames();
        for i in 0..100u32 {
            mc.set(&mut k, format!("k{i}").as_bytes(), &vec![1u8; 500]).unwrap();
        }
        assert!(k.vm.resident_frames() > frames_before, "values land in kernel memory");
    }
}
