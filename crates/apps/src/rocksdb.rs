//! A RocksDB-like store with four persistence configurations (Figure 6,
//! §9.6).
//!
//! The real RocksDB has three persistence structures: the memtable, the
//! LSM tree of SST files, and the WAL. The paper's customized build
//! replaces 81 k SLOC of LSM + WAL with 109 lines of Aurora API calls:
//! the memtable *is* the database (sized to hold it all), `sls_journal`
//! replaces the WAL, and a full checkpoint clears the journal when it
//! fills.
//!
//! [`Persistence`] selects the configuration; [`aurora_glue`] is this
//! reproduction's literal counterpart of the 109-line patch.

use crate::Arena;
use aurora_core::{AuroraApi, GroupId, Sls, SlsError};
use aurora_objstore::Oid;
use aurora_posix::Pid;
use aurora_sim::codec::Encoder;
use std::collections::BTreeMap;

/// Aggregate per-operation CPU cost of the 8-thread server (skiplist
/// walk + comparator), calibrated so the ephemeral configuration peaks
/// in the paper's multi-million-ops/s range.
pub const SERVICE_NS: u64 = 350;
/// Extra CPU for a WAL record build (checksums, framing).
pub const WAL_RECORD_NS: u64 = 600;
/// The file system work RocksDB's own WAL pays on every fsync beyond the
/// raw device write (inode update + FFS journal ordering) — the paper's
/// unmodified-WAL configuration goes through a conventional FS, the
/// custom build through a bare non-COW journal.
pub const WAL_FS_SYNC_NS: u64 = 24_000;
/// Skiplist index pages: every PUT writes tower nodes scattered across
/// the index (the dirty-page source that makes transparent
/// checkpointing expensive).
pub const INDEX_PAGES: u64 = 16384;
/// Tower levels written per PUT.
pub const TOWER_WRITES: u64 = 6;

/// Persistence configuration (the four bars of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// No persistence at all ("RocksDB, No Sync" baseline).
    Ephemeral,
    /// RocksDB's own write-ahead log; `sync` selects fsync-per-write.
    Wal {
        /// fsync every write (the "Sync" configuration).
        sync: bool,
    },
    /// Unmodified binary under Aurora's transparent 10 ms checkpoints.
    AuroraTransparent,
    /// The §9.6 custom build: `sls_journal` WAL + checkpoint-on-full.
    AuroraWal {
        /// fsync every write (always true in the paper's Sync runs).
        sync: bool,
    },
}

/// SST file metadata (exercised by tests; the Figure 6 runs keep the
/// whole database in the memtable, §9.6).
#[derive(Clone, Debug)]
pub struct SsTable {
    /// Smallest key.
    pub min_key: Vec<u8>,
    /// Largest key.
    pub max_key: Vec<u8>,
    /// Entries.
    pub entries: u64,
    /// Bytes written.
    pub bytes: u64,
}

/// The store.
pub struct RocksDb {
    /// Server process.
    pub pid: Pid,
    mode: Persistence,
    arena: Arena,
    /// Skiplist index region (tower nodes), written on every PUT.
    index_addr: u64,
    memtable: BTreeMap<Vec<u8>, (u64, u32)>,
    memtable_bytes: u64,
    /// Own-WAL state: bytes since last SST flush.
    wal_bytes: u64,
    /// WAL size limit before a flush/checkpoint is triggered.
    pub wal_limit: u64,
    /// The store journal used by both WAL flavours.
    journal: Option<Oid>,
    /// Aurora group (Aurora modes only).
    group: Option<GroupId>,
    /// Flushed SSTs (own-WAL mode only).
    pub ssts: Vec<SsTable>,
    /// Operations served.
    pub ops: u64,
    /// Checkpoints triggered by WAL-full (AuroraWal mode).
    pub checkpoints_triggered: u64,
}

impl RocksDb {
    /// Opens a database inside `sls` with an `arena_pages`-page memtable
    /// arena.
    pub fn open(
        sls: &mut Sls,
        arena_pages: u64,
        mode: Persistence,
        group: Option<GroupId>,
    ) -> Result<Self, SlsError> {
        let pid = sls.kernel.spawn("rocksdb");
        for _ in 1..8 {
            sls.kernel.add_thread(pid)?;
        }
        let arena = Arena::map(&mut sls.kernel, pid, arena_pages)?;
        let index_addr = sls.kernel.mmap_anon(pid, INDEX_PAGES, aurora_vm::Prot::RW)?;
        let journal = match mode {
            Persistence::Wal { .. } | Persistence::AuroraWal { .. } => {
                Some(sls.sls_journal_create(16 * 1024)?) // 64 MiB WAL
            }
            _ => None,
        };
        Ok(Self {
            pid,
            mode,
            arena,
            index_addr,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            wal_bytes: 0,
            wal_limit: 8 << 20,
            journal,
            group,
            ssts: Vec::new(),
            ops: 0,
            checkpoints_triggered: 0,
        })
    }

    fn touch_index(&mut self, sls: &mut Sls, key: &[u8]) -> Result<(), SlsError> {
        // Skiplist towers: a handful of node writes scattered across the
        // index region (level chosen by the key hash, like a real tower).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for level in 0..TOWER_WRITES {
            let slot = (h.rotate_left(13 * level as u32)) % (INDEX_PAGES * 4096 / 64);
            let addr = self.index_addr + slot * 64;
            sls.kernel.mem_write(self.pid, addr, &h.to_le_bytes())?;
        }
        Ok(())
    }

    /// PUT: insert/overwrite a key.
    pub fn put(&mut self, sls: &mut Sls, key: &[u8], value: &[u8]) -> Result<(), SlsError> {
        sls.kernel.charge.raw(SERVICE_NS);
        self.touch_index(sls, key)?;
        self.ops += 1;
        // 1. The WAL, first (write-ahead).
        match self.mode {
            Persistence::Wal { sync } => {
                sls.kernel.charge.raw(WAL_RECORD_NS);
                let rec = wal_record(key, value);
                if sync {
                    // fsync-per-write through the FS: the journal append
                    // plus the file system's inode/journal ordering work.
                    sls.sls_journal(self.journal.expect("wal mode"), &rec)?;
                    sls.kernel.charge.raw(WAL_FS_SYNC_NS);
                } else {
                    // Buffered WAL: CPU only; data lost on crash.
                    sls.kernel.charge.memcpy(rec.len() as u64);
                }
                self.wal_bytes += rec.len() as u64;
                if self.wal_bytes >= self.wal_limit {
                    self.flush_sst(sls)?;
                }
            }
            Persistence::AuroraWal { sync } => {
                aurora_glue::log_put(self, sls, key, value, sync)?;
            }
            Persistence::Ephemeral | Persistence::AuroraTransparent => {}
        }
        // 2. The memtable.
        let (addr, wrapped) = self.arena.append(&mut sls.kernel, value)?;
        if wrapped {
            self.memtable.clear();
            self.memtable_bytes = 0;
        }
        self.memtable.insert(key.to_vec(), (addr, value.len() as u32));
        self.memtable_bytes += (key.len() + value.len()) as u64;
        Ok(())
    }

    /// GET: point lookup (memtable-resident by construction, §9.6).
    pub fn get(&mut self, sls: &mut Sls, key: &[u8]) -> Result<Option<Vec<u8>>, SlsError> {
        sls.kernel.charge.raw(SERVICE_NS);
        self.ops += 1;
        match self.memtable.get(key) {
            Some(&(addr, len)) => Ok(Some(self.arena.read(&mut sls.kernel, addr, len as usize)?)),
            None => Ok(None),
        }
    }

    /// SEEK: short range scan from `key`.
    pub fn seek(&mut self, sls: &mut Sls, key: &[u8], entries: usize) -> Result<u64, SlsError> {
        sls.kernel.charge.raw(SERVICE_NS + entries as u64 * 300);
        self.ops += 1;
        let mut n = 0;
        for (_, &(addr, len)) in self.memtable.range(key.to_vec()..).take(entries) {
            self.arena.read(&mut sls.kernel, addr, len as usize)?;
            n += 1;
        }
        Ok(n)
    }

    /// Flushes the memtable to an SST and truncates the WAL (own-WAL
    /// mode's compaction entry point).
    pub fn flush_sst(&mut self, sls: &mut Sls) -> Result<(), SlsError> {
        if self.memtable.is_empty() {
            self.wal_bytes = 0;
            return Ok(());
        }
        let entries = self.memtable.len() as u64;
        let bytes = self.memtable_bytes;
        // Serialize + write the SST (asynchronously via the store's COW
        // path: an approximation of the FS file write).
        sls.kernel.charge.encode(bytes);
        {
            let mut store = sls.store().lock();
            let oid = store.alloc_oid();
            store.create_object(oid, aurora_objstore::ObjectKind::File)?;
            let pages = bytes.div_ceil(4096);
            let zero = aurora_objstore::PageRef::zero();
            for pi in 0..pages {
                store.write_page(oid, pi, &zero)?;
            }
            let info = store.commit()?;
            let _ = info;
        }
        self.ssts.push(SsTable {
            min_key: self.memtable.keys().next().cloned().unwrap_or_default(),
            max_key: self.memtable.keys().last().cloned().unwrap_or_default(),
            entries,
            bytes,
        });
        if let Some(j) = self.journal {
            sls.sls_journal_truncate(j)?;
        }
        self.wal_bytes = 0;
        Ok(())
    }

    /// The WAL journal OID (tests).
    pub fn journal(&self) -> Option<Oid> {
        self.journal
    }

    /// Late-binds the consistency group (the database process must exist
    /// before it can be attached).
    pub fn set_group(&mut self, gid: GroupId) {
        self.group = Some(gid);
    }
}

fn wal_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut e = Encoder::with_capacity(key.len() + value.len() + 16);
    e.bytes(key);
    e.u32(value.len() as u32);
    // The WAL stores the value bytes; content is synthesized (zeroes) to
    // keep the stream compact while sizes stay exact.
    e.raw(&vec![0u8; value.len()]);
    e.finish_vec()
}

/// The reproduction's counterpart of the paper's 109-line RocksDB patch
/// (§9.6): everything the custom build needs from Aurora, in one small
/// module. `tools/count_glue_loc` in the benches reports its size
/// against the LSM+WAL code it replaces.
pub mod aurora_glue {
    use super::*;

    /// Write-path hook: journal the mutation, and when the journal
    /// fills, take a full checkpoint and clear it (§9.6: "When the WAL
    /// is full, RocksDB triggers an Aurora checkpoint and clears the
    /// WAL").
    pub fn log_put(
        db: &mut RocksDb,
        sls: &mut Sls,
        key: &[u8],
        value: &[u8],
        sync: bool,
    ) -> Result<(), SlsError> {
        let journal = db.journal.expect("aurora-wal mode has a journal");
        let rec = super::wal_record(key, value);
        if sync {
            sls.sls_journal(journal, &rec)?;
        } else {
            sls.kernel.charge.memcpy(rec.len() as u64);
        }
        db.wal_bytes += rec.len() as u64;
        if db.wal_bytes >= db.wal_limit {
            let gid = db.group.expect("aurora-wal mode is attached");
            sls.sls_checkpoint(gid)?;
            sls.sls_journal_truncate(journal)?;
            db.wal_bytes = 0;
            db.checkpoints_triggered += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::world::World;
    use aurora_core::SlsOptions;

    #[test]
    fn put_get_roundtrip_all_modes() {
        for mode in [
            Persistence::Ephemeral,
            Persistence::Wal { sync: true },
            Persistence::AuroraTransparent,
        ] {
            let mut w = World::quickstart();
            let mut db = RocksDb::open(&mut w.sls, 4096, mode, None).unwrap();
            db.put(&mut w.sls, b"k1", b"v1").unwrap();
            db.put(&mut w.sls, b"k2", b"v2").unwrap();
            assert_eq!(db.get(&mut w.sls, b"k1").unwrap().unwrap(), b"v1");
            assert_eq!(db.get(&mut w.sls, b"missing").unwrap(), None);
        }
    }

    #[test]
    fn seek_scans_in_order() {
        let mut w = World::quickstart();
        let mut db = RocksDb::open(&mut w.sls, 4096, Persistence::Ephemeral, None).unwrap();
        for i in 0..20u32 {
            db.put(&mut w.sls, format!("key{i:04}").as_bytes(), b"v").unwrap();
        }
        assert_eq!(db.seek(&mut w.sls, b"key0005", 8).unwrap(), 8);
        assert_eq!(db.seek(&mut w.sls, b"key0018", 8).unwrap(), 2);
    }

    #[test]
    fn wal_full_triggers_sst_flush() {
        let mut w = World::quickstart();
        let mut db =
            RocksDb::open(&mut w.sls, 65_536, Persistence::Wal { sync: false }, None).unwrap();
        db.wal_limit = 64 * 1024;
        for i in 0..40u32 {
            db.put(&mut w.sls, format!("k{i}").as_bytes(), &vec![0u8; 2048]).unwrap();
        }
        assert!(!db.ssts.is_empty(), "WAL limit must force an SST flush");
    }

    #[test]
    fn aurora_wal_triggers_checkpoint_on_full() {
        let mut w = World::quickstart();
        let pid_holder = w.sls.kernel.spawn("holder");
        let gid = w.sls.attach(pid_holder, SlsOptions::default()).unwrap();
        let mut db = RocksDb::open(
            &mut w.sls,
            65_536,
            Persistence::AuroraWal { sync: true },
            Some(gid),
        )
        .unwrap();
        db.wal_limit = 32 * 1024;
        for i in 0..30u32 {
            db.put(&mut w.sls, format!("k{i}").as_bytes(), &vec![0u8; 2048]).unwrap();
        }
        assert!(db.checkpoints_triggered >= 1, "journal-full must checkpoint");
        assert!(db.ssts.is_empty(), "the custom build has no LSM");
    }

    #[test]
    fn sync_wal_is_slower_than_ephemeral() {
        let ops = 200u32;
        let mut times = Vec::new();
        for mode in [Persistence::Ephemeral, Persistence::Wal { sync: true }] {
            let mut w = World::quickstart();
            let mut db = RocksDb::open(&mut w.sls, 65_536, mode, None).unwrap();
            let t0 = w.clock.now();
            for i in 0..ops {
                db.put(&mut w.sls, format!("k{i}").as_bytes(), &vec![0u8; 256]).unwrap();
            }
            times.push(w.clock.now() - t0);
        }
        assert!(times[1] > times[0] * 3, "sync WAL {} vs ephemeral {}", times[1], times[0]);
    }
}
