//! Applications for the evaluation, running on the simulated kernel:
//!
//! * [`memcached`] — an in-memory key-value server (Figures 4–5): a hash
//!   index over a kernel-memory arena, so every SET dirties real pages
//!   and pays real COW faults under continuous checkpointing.
//! * [`rocksdb`] — a RocksDB-like store (Figure 6) with four persistence
//!   configurations: ephemeral, its own WAL, Aurora transparent (10 ms),
//!   and the Aurora-API custom build (§9.6) that deletes the LSM + WAL
//!   and persists the memtable via `sls_journal` + checkpoints.
//! * [`redis`] — a dictionary server with the fork-based RDB save
//!   (Tables 1 and 7).

pub mod memcached;
pub mod redis;
pub mod rocksdb;

use aurora_posix::{KError, Kernel, Pid};
use aurora_vm::{Prot, PAGE_SIZE};

/// Socket/file types the application modules use, re-exported in one
/// place.
pub(crate) mod aurora_posix_reexports {
    pub use aurora_posix::file::OpenFlags;
    pub use aurora_posix::socket::{Domain, InetAddr, SockType};
}

/// A bump-allocated arena in a process's address space. Values written
/// here dirty real simulated pages — the substrate both KV stores build
/// on.
#[derive(Debug)]
pub struct Arena {
    /// Owning process.
    pub pid: Pid,
    /// Base address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    bump: u64,
}

impl Arena {
    /// Maps a fresh arena of `pages` pages into `pid`.
    pub fn map(k: &mut Kernel, pid: Pid, pages: u64) -> Result<Self, KError> {
        let addr = k.mmap_anon(pid, pages, Prot::RW)?;
        Ok(Self { pid, addr, size: pages * PAGE_SIZE as u64, bump: 0 })
    }

    /// Maps an arena as `chunks` separate (but contiguous) mappings — a
    /// realistic allocator footprint: real servers have on the order of
    /// a hundred VM map entries (malloc arenas, libraries, stacks), and
    /// checkpointers pay per entry.
    pub fn map_chunked(
        k: &mut Kernel,
        pid: Pid,
        pages: u64,
        chunks: u64,
    ) -> Result<Self, KError> {
        assert!(chunks >= 1);
        let per = (pages / chunks).max(1);
        let base = k.mmap_anon(pid, per, Prot::RW)?;
        let mut end = base + per * PAGE_SIZE as u64;
        let mut mapped = per;
        while mapped < pages {
            let n = per.min(pages - mapped);
            let a = k.mmap_anon(pid, n, Prot::RW)?;
            assert_eq!(a, end, "chunked arena must stay contiguous");
            end += n * PAGE_SIZE as u64;
            mapped += n;
        }
        Ok(Self { pid, addr: base, size: mapped * PAGE_SIZE as u64, bump: 0 })
    }

    /// Appends `data`, returning its address. Wraps (clobbering old
    /// content) when full — callers invalidate their indexes on wrap.
    pub fn append(&mut self, k: &mut Kernel, data: &[u8]) -> Result<(u64, bool), KError> {
        let mut wrapped = false;
        if self.bump + data.len() as u64 > self.size {
            self.bump = 0;
            wrapped = true;
        }
        let at = self.addr + self.bump;
        k.mem_write(self.pid, at, data)?;
        self.bump += data.len() as u64;
        Ok((at, wrapped))
    }

    /// Reads `len` bytes at `addr`.
    pub fn read(&self, k: &mut Kernel, addr: u64, len: usize) -> Result<Vec<u8>, KError> {
        let mut buf = vec![0u8; len];
        k.mem_read(self.pid, addr, &mut buf)?;
        Ok(buf)
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.bump
    }

    /// Rebinds this arena's host-side handle to a restored process —
    /// possibly on another kernel. A restored image keeps its virtual
    /// addresses, so the base/size/bump carry over unchanged; only the
    /// owning pid differs (live migration failover).
    pub fn rebind(&self, pid: Pid) -> Self {
        Self { pid, addr: self.addr, size: self.size, bump: self.bump }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_roundtrip_and_wrap() {
        let mut k = Kernel::boot();
        let pid = k.spawn("app");
        let mut a = Arena::map(&mut k, pid, 2).unwrap();
        let (at, wrapped) = a.append(&mut k, b"hello").unwrap();
        assert!(!wrapped);
        assert_eq!(a.read(&mut k, at, 5).unwrap(), b"hello");
        // Fill past the end: wraps.
        let big = vec![7u8; 8000];
        let (_, w1) = a.append(&mut k, &big).unwrap();
        let (_, w2) = a.append(&mut k, &big).unwrap();
        assert!(w1 || w2, "one of the large appends must wrap");
    }
}
