//! An FFS-like cost model with soft-updates journaling (SU+J).
//!
//! FFS writes data in place (no COW allocation work), keeps metadata
//! consistent with soft updates, and journals them (SU+J) so recovery
//! needs no full fsck. Small writes benefit from fragments: sub-block
//! allocations avoid write amplification, and delayed allocation promotes
//! fragments to full blocks before the IO issues (§9.1).

use crate::{FsError, Result, SimFs};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::device::SharedDevice;
use aurora_storage::testbed_array;
use std::collections::HashMap;

const BLOCK: u64 = 4096;

struct FileState {
    dirty_bytes: u64,
    base_block: u64,
}

/// The FFS (SU+J) baseline.
pub struct FfsModel {
    dev: SharedDevice,
    charge: Charge,
    files: HashMap<u64, FileState>,
    alloc_cursor: u64,
    capacity: u64,
    /// Buffered SU+J journal entries awaiting a flush.
    pending_journal: u64,
}

impl FfsModel {
    /// Builds the model over a fresh testbed array.
    pub fn testbed(bytes: u64) -> Self {
        let clock = Clock::new();
        let dev = testbed_array(&clock, bytes);
        Self::over(dev, Charge::new(clock, CostModel::default()))
    }

    /// Builds the model over an existing device.
    pub fn over(dev: SharedDevice, charge: Charge) -> Self {
        let capacity = dev.lock().capacity_blocks();
        Self { dev, charge, files: HashMap::new(), alloc_cursor: 1, capacity, pending_journal: 0 }
    }

    fn alloc(&mut self, blocks: u64) -> u64 {
        let at = self.alloc_cursor;
        self.alloc_cursor += blocks;
        if self.alloc_cursor >= self.capacity {
            self.alloc_cursor = 1;
            return 1;
        }
        at
    }

    fn journal_flush(&mut self, sync: bool) -> Result<()> {
        if self.pending_journal == 0 {
            return Ok(());
        }
        self.pending_journal = 0;
        let at = self.alloc(1);
        let block = vec![0u8; BLOCK as usize];
        let c = {
            let mut dev = self.dev.lock();
            dev.write(at, &block).map_err(|e| FsError::Backend(e.to_string()))?
        };
        if sync {
            self.charge.clock().advance_to(c.done_at);
        }
        Ok(())
    }
}

impl SimFs for FfsModel {
    fn label(&self) -> String {
        "FFS".to_string()
    }

    fn create(&mut self, name: u64) -> Result<()> {
        if self.files.contains_key(&name) {
            return Err(FsError::Exists(name));
        }
        // Inode init + directory update, ordered by soft updates
        // (buffered); one journal entry.
        self.charge.raw(1_500);
        self.pending_journal += 1;
        if self.pending_journal >= 32 {
            self.journal_flush(false)?;
        }
        let base = self.alloc(256); // contiguous layout reservation
        self.files.insert(name, FileState { dirty_bytes: 0, base_block: base });
        Ok(())
    }

    fn write(&mut self, name: u64, offset: u64, len: u64) -> Result<()> {
        self.charge.memcpy(len); // buffer cache copy
        let (base, blocks) = {
            let f = self.files.get_mut(&name).ok_or(FsError::NoSuchFile(name))?;
            f.dirty_bytes += len;
            // Fragments + delayed allocation: sub-block writes coalesce,
            // so the issued IO is just the data, rounded to fragments
            // (1 KiB), not whole blocks.
            let frag = 1024;
            let bytes = len.div_ceil(frag) * frag;
            (f.base_block, bytes.div_ceil(BLOCK).max(1))
        };
        // In-place write: no allocation CPU beyond the block map walk.
        self.charge.raw(250);
        let at = (base + offset / BLOCK) % self.capacity.max(1);
        let data = vec![0u8; (blocks * BLOCK) as usize];
        let mut dev = self.dev.lock();
        let end = if at + blocks >= self.capacity { 1 } else { at };
        dev.write(end, &data).map_err(|e| FsError::Backend(e.to_string()))?;
        Ok(())
    }

    fn read(&mut self, name: u64, _offset: u64, len: u64) -> Result<()> {
        self.files.get(&name).ok_or(FsError::NoSuchFile(name))?;
        self.charge.memcpy(len);
        Ok(())
    }

    fn fsync(&mut self, name: u64) -> Result<()> {
        let dirty = {
            let f = self.files.get_mut(&name).ok_or(FsError::NoSuchFile(name))?;
            std::mem::take(&mut f.dirty_bytes)
        };
        // Rewrite the file's dirty data synchronously + flush the journal.
        if dirty > 0 {
            let blocks = dirty.div_ceil(BLOCK);
            let at = self.alloc(blocks);
            let data = vec![0u8; (blocks * BLOCK) as usize];
            let c = {
                let mut dev = self.dev.lock();
                dev.write(at, &data).map_err(|e| FsError::Backend(e.to_string()))?
            };
            self.charge.clock().advance_to(c.done_at);
        }
        self.journal_flush(true)
    }

    fn delete(&mut self, name: u64) -> Result<()> {
        self.files.remove(&name).ok_or(FsError::NoSuchFile(name))?;
        self.charge.raw(1_500);
        self.pending_journal += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.journal_flush(false)?;
        let c = self.dev.lock().flush();
        self.charge.clock().advance_to(c.done_at);
        Ok(())
    }

    fn clock(&self) -> Clock {
        self.charge.clock().clone()
    }
}
