//! A ZFS-like cost model: COW allocation, per-block checksums, indirect
//! block metadata, and a ZIL for synchronous semantics.
//!
//! Calibration notes: ZFS pays checksum CPU on every block (Fletcher4 at
//! roughly 4 GB/s single-threaded; SHA-class when dedup-grade checksums
//! are on), indirect-block updates (one 4 KiB metadata block per 128 KiB
//! of data at 64 KiB recordsize plus spacemap churn), and its `fsync`
//! lands in the intent log with the data, "generating complex changes to
//! file system state" (§9.1).

use crate::{FsError, Result, SimFs};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::device::SharedDevice;
use aurora_storage::testbed_array;
use std::collections::HashMap;

const BLOCK: u64 = 4096;

struct FileState {
    /// Dirty byte ranges not yet on the intent log or in a txg.
    dirty_bytes: u64,
}

/// The ZFS-like baseline.
pub struct ZfsModel {
    dev: SharedDevice,
    charge: Charge,
    /// Data checksum enabled (the "+CSUM" variant of Fig. 3).
    csum: bool,
    files: HashMap<u64, FileState>,
    alloc_cursor: u64,
    capacity: u64,
    /// Bytes written since the last indirect-block metadata write.
    since_meta: u64,
    /// Checksum throughput, bytes/sec.
    csum_bw: u64,
    /// CPU cost of COW allocation + block pointer update per block.
    alloc_ns: u64,
}

impl ZfsModel {
    /// Builds the model over a fresh testbed array.
    pub fn testbed(bytes: u64, csum: bool) -> Self {
        let clock = Clock::new();
        let dev = testbed_array(&clock, bytes);
        Self::over(dev, Charge::new(clock, CostModel::default()), csum)
    }

    /// Builds the model over an existing device.
    pub fn over(dev: SharedDevice, charge: Charge, csum: bool) -> Self {
        let capacity = dev.lock().capacity_blocks();
        Self {
            dev,
            charge,
            csum,
            files: HashMap::new(),
            alloc_cursor: 1,
            capacity,
            since_meta: 0,
            csum_bw: 3_000_000_000,
            alloc_ns: 900,
        }
    }

    fn alloc(&mut self, blocks: u64) -> u64 {
        let at = self.alloc_cursor;
        self.alloc_cursor += blocks;
        if self.alloc_cursor >= self.capacity {
            self.alloc_cursor = 1; // benchmark wrap; content is irrelevant
            return 1;
        }
        at
    }

    fn write_blocks(&mut self, len: u64, sync: bool) -> Result<()> {
        let blocks = len.div_ceil(BLOCK).max(1);
        // Checksum + allocation CPU.
        if self.csum {
            self.charge.raw(len * 1_000_000_000 / self.csum_bw);
        }
        self.charge.raw(blocks * self.alloc_ns);
        let at = self.alloc(blocks);
        let data = vec![0u8; (blocks * BLOCK) as usize];
        let c = {
            let mut dev = self.dev.lock();
            dev.write(at, &data).map_err(|e| FsError::Backend(e.to_string()))?
        };
        // Indirect-block amplification: one metadata block per 128 KiB.
        self.since_meta += len;
        if self.since_meta >= 128 * 1024 {
            self.since_meta = 0;
            let meta_at = self.alloc(1);
            let meta = vec![0u8; BLOCK as usize];
            let mut dev = self.dev.lock();
            dev.write(meta_at, &meta).map_err(|e| FsError::Backend(e.to_string()))?;
        }
        if sync {
            self.charge.clock().advance_to(c.done_at);
        }
        Ok(())
    }
}

impl SimFs for ZfsModel {
    fn label(&self) -> String {
        if self.csum { "ZFS+CSUM".to_string() } else { "ZFS".to_string() }
    }

    fn create(&mut self, name: u64) -> Result<()> {
        if self.files.contains_key(&name) {
            return Err(FsError::Exists(name));
        }
        // Dnode + directory ZAP update, buffered in the open txg.
        self.charge.raw(2_500);
        self.files.insert(name, FileState { dirty_bytes: 0 });
        Ok(())
    }

    fn write(&mut self, name: u64, _offset: u64, len: u64) -> Result<()> {
        self.charge.memcpy(len); // copy into the ARC
        self.files.get_mut(&name).ok_or(FsError::NoSuchFile(name))?.dirty_bytes += len;
        // Model steady-state txg pressure: data leaves the ARC at write
        // rate once dirty limits are hit — charge the COW write now.
        self.write_blocks(len, false)
    }

    fn read(&mut self, name: u64, _offset: u64, len: u64) -> Result<()> {
        self.files.get(&name).ok_or(FsError::NoSuchFile(name))?;
        if self.csum {
            self.charge.raw(len * 1_000_000_000 / self.csum_bw);
        }
        self.charge.memcpy(len);
        Ok(())
    }

    fn fsync(&mut self, name: u64) -> Result<()> {
        let dirty = {
            let f = self.files.get_mut(&name).ok_or(FsError::NoSuchFile(name))?;
            std::mem::take(&mut f.dirty_bytes)
        };
        // ZIL: log record headers + the dirty data, written synchronously.
        let zil_bytes = dirty + BLOCK; // record + commit block
        self.charge.raw(4_000); // itx assembly, zil header chains
        self.write_blocks(zil_bytes, true)
    }

    fn delete(&mut self, name: u64) -> Result<()> {
        self.files.remove(&name).ok_or(FsError::NoSuchFile(name))?;
        self.charge.raw(2_500);
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        // Close the txg.
        let c = self.dev.lock().flush();
        self.charge.clock().advance_to(c.done_at);
        Ok(())
    }

    fn clock(&self) -> Clock {
        self.charge.clock().clone()
    }
}
