//! The Aurora file system's data path: files are store objects; the
//! 10 ms checkpoint cadence provides durability; `fsync` is a no-op.

use crate::{FsError, Result, SimFs};
use aurora_objstore::{ObjectKind, ObjectStore, Oid};
use aurora_sim::cost::Charge;
use aurora_sim::units::MS;
use aurora_sim::{Clock, CostModel};
use aurora_storage::testbed_array;
use std::collections::HashMap;

const PAGE: u64 = 4096;

/// The Aurora FS benchmark harness: a thin namespace over the real
/// [`ObjectStore`].
pub struct AuroraFs {
    store: ObjectStore,
    files: HashMap<u64, Oid>,
    /// Checkpoint period (default 10 ms, §3).
    period_ns: u64,
    last_commit_ns: u64,
    commits: u64,
    /// When the newest periodic checkpoint becomes durable. `finish`
    /// waits for this: dropping it would silently skip the barrier and
    /// report results for checkpoints that never reached the device.
    pending_durable_ns: u64,
    /// File creation grabs a global lock in the current implementation
    /// (§9.1: "File creation in Aurora is unoptimized").
    create_lock_ns: u64,
}

impl AuroraFs {
    /// Builds an Aurora FS over a fresh testbed array (`bytes` per
    /// device).
    pub fn testbed(bytes: u64) -> Result<Self> {
        let clock = Clock::new();
        let dev = testbed_array(&clock, bytes);
        let charge = Charge::new(clock, CostModel::default());
        let store = ObjectStore::format(dev, charge, 32 * 1024)
            .map_err(|e| FsError::Backend(e.to_string()))?;
        Ok(Self::over(store))
    }

    /// Builds an Aurora FS over an existing store.
    pub fn over(store: ObjectStore) -> Self {
        Self {
            store,
            files: HashMap::new(),
            period_ns: 10 * MS,
            last_commit_ns: 0,
            commits: 0,
            pending_durable_ns: 0,
            create_lock_ns: 6_000,
        }
    }

    /// Number of checkpoints committed so far.
    pub fn committed_epochs(&self) -> u64 {
        self.commits
    }

    /// Overrides the checkpoint period.
    pub fn set_period(&mut self, period_ns: u64) {
        self.period_ns = period_ns;
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        let now = self.store.charge().clock().now();
        if now.saturating_sub(self.last_commit_ns) >= self.period_ns {
            let info = self.store.commit().map_err(|e| FsError::Backend(e.to_string()))?;
            self.pending_durable_ns = self.pending_durable_ns.max(info.durable_at);
            self.last_commit_ns = now;
            self.commits += 1;
            let trace = self.store.charge().trace();
            if trace.is_enabled() {
                trace.instant(
                    "fs",
                    "fs.checkpoint",
                    &[("epoch", info.epoch), ("durable_at", info.durable_at)],
                );
            }
        }
        Ok(())
    }
}

impl SimFs for AuroraFs {
    fn label(&self) -> String {
        "Aurora".to_string()
    }

    fn create(&mut self, name: u64) -> Result<()> {
        if self.files.contains_key(&name) {
            return Err(FsError::Exists(name));
        }
        // Global creation lock (unoptimized path, §9.1).
        self.store.charge().raw(self.create_lock_ns);
        let oid = self.store.alloc_oid();
        self.store
            .create_object(oid, ObjectKind::File)
            .map_err(|e| FsError::Backend(e.to_string()))?;
        self.files.insert(name, oid);
        self.maybe_checkpoint()
    }

    fn write(&mut self, name: u64, offset: u64, len: u64) -> Result<()> {
        let oid = *self.files.get(&name).ok_or(FsError::NoSuchFile(name))?;
        let first = offset / PAGE;
        let last = (offset + len).div_ceil(PAGE);
        let zero = aurora_objstore::PageRef::zero();
        for pi in first..last {
            self.store.write_page(oid, pi, &zero).map_err(|e| FsError::Backend(e.to_string()))?;
        }
        self.maybe_checkpoint()
    }

    fn read(&mut self, name: u64, _offset: u64, len: u64) -> Result<()> {
        // A single level store holds file data in memory: reads are page
        // cache hits (a memcpy), exactly like the ARC/buffer-cache hits
        // the ZFS and FFS models charge.
        self.files.get(&name).ok_or(FsError::NoSuchFile(name))?;
        self.store.charge().memcpy(len);
        Ok(())
    }

    fn fsync(&mut self, name: u64) -> Result<()> {
        // Checkpoint consistency makes fsync a no-op (§5.2); only the
        // syscall boundary is paid.
        self.files.get(&name).ok_or(FsError::NoSuchFile(name))?;
        self.store.charge().raw(self.store.charge().model().syscall_ns);
        Ok(())
    }

    fn delete(&mut self, name: u64) -> Result<()> {
        let oid = self.files.remove(&name).ok_or(FsError::NoSuchFile(name))?;
        self.store.delete_object(oid).map_err(|e| FsError::Backend(e.to_string()))?;
        self.maybe_checkpoint()
    }

    fn finish(&mut self) -> Result<()> {
        let info = self.store.commit().map_err(|e| FsError::Backend(e.to_string()))?;
        self.commits += 1;
        // Wait for the final commit *and* every periodic one before it.
        self.store.barrier(info);
        self.store.charge().clock().advance_to(self.pending_durable_ns);
        Ok(())
    }

    fn clock(&self) -> Clock {
        self.store.charge().clock().clone()
    }
}
