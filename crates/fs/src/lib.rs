//! File systems for the Figure 3 comparison, and the Aurora file system's
//! checkpoint-consistency data path.
//!
//! Three implementations of one [`SimFs`] interface run the FileBench
//! personalities over the same simulated device array:
//!
//! * [`aurora::AuroraFs`] — the paper's file system: a namespace into the
//!   object store. Data goes through the real [`aurora_objstore`] COW
//!   path; consistency comes from the 10 ms checkpoint cadence, so
//!   `fsync` is a **no-op** (§5.2, "checkpoint consistency") — the source
//!   of the varmail win in Figure 3(d).
//! * [`zfs_model::ZfsModel`] — a ZFS-like baseline: COW with per-block
//!   checksum CPU, indirect-block metadata amplification, and a ZIL that
//!   makes `fsync` a synchronous intent-log write.
//! * [`ffs_model::FfsModel`] — an FFS-like baseline with soft-updates
//!   journaling (SU+J): in-place data writes, fragment-optimized small
//!   writes, buffered metadata with a journal flushed on `fsync`.
//!
//! The namespace/hidden-link-count behaviour of the Aurora FS (anonymous
//! files surviving crashes) lives with the serializers in `aurora-core`,
//! which persists the `aurora-posix` VFS into the store; this crate's job
//! is the data-path cost fidelity that Figure 3 measures.

pub mod aurora;
pub mod ffs_model;
pub mod zfs_model;

use aurora_sim::Clock;
use std::fmt;

/// File-system benchmark errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Unknown file.
    NoSuchFile(u64),
    /// A file with this name already exists.
    Exists(u64),
    /// The underlying device/store failed.
    Backend(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSuchFile(n) => write!(f, "no such file {n}"),
            FsError::Exists(n) => write!(f, "file {n} exists"),
            FsError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, FsError>;

/// The interface the FileBench personalities drive.
///
/// Files are named by opaque `u64`s; writes account length (content is
/// zero-filled) because FileBench measures throughput, not data fidelity.
pub trait SimFs {
    /// Display label for result tables.
    fn label(&self) -> String;
    /// Creates an empty file.
    fn create(&mut self, name: u64) -> Result<()>;
    /// Writes `len` bytes at `offset`.
    fn write(&mut self, name: u64, offset: u64, len: u64) -> Result<()>;
    /// Reads `len` bytes at `offset`.
    fn read(&mut self, name: u64, offset: u64, len: u64) -> Result<()>;
    /// Makes the file durable (whatever that means for the FS).
    fn fsync(&mut self, name: u64) -> Result<()>;
    /// Removes a file.
    fn delete(&mut self, name: u64) -> Result<()>;
    /// Drains all buffered state (end of benchmark).
    fn finish(&mut self) -> Result<()>;
    /// The virtual clock the FS charges.
    fn clock(&self) -> Clock;
}

#[cfg(test)]
mod tests {
    use super::aurora::AuroraFs;
    use super::ffs_model::FfsModel;
    use super::zfs_model::ZfsModel;
    use super::*;
    use aurora_sim::units::{GIB, KIB, MS, SEC};

    fn all() -> Vec<Box<dyn SimFs>> {
        vec![
            Box::new(AuroraFs::testbed(1 << 30).unwrap()),
            Box::new(ZfsModel::testbed(1 << 30, true)),
            Box::new(FfsModel::testbed(1 << 30)),
        ]
    }

    #[test]
    fn sequential_write_throughput_ordering() {
        // Figure 3(a): ZFS+CSUM is the slowest sequential writer; Aurora
        // and FFS are comparable and fast.
        let mut rates = Vec::new();
        for mut fs in all() {
            fs.create(1).unwrap();
            let total = GIB / 4;
            let mut off = 0;
            while off < total {
                fs.write(1, off, 64 * KIB).unwrap();
                off += 64 * KIB;
            }
            fs.finish().unwrap();
            let ns = fs.clock().now();
            rates.push((fs.label(), total as f64 / ns as f64));
        }
        let aurora = rates[0].1;
        let zfs_csum = rates[1].1;
        assert!(aurora > zfs_csum, "aurora {aurora} vs zfs+csum {zfs_csum}");
    }

    #[test]
    fn fsync_is_free_only_on_aurora() {
        // The varmail pattern: small write followed by fsync, repeated.
        let mut times = Vec::new();
        for mut fs in all() {
            fs.create(1).unwrap();
            let t0 = fs.clock().now();
            for i in 0..50u64 {
                fs.write(1, i * 4 * KIB, 4 * KIB).unwrap();
                fs.fsync(1).unwrap();
            }
            times.push((fs.label(), fs.clock().now() - t0));
        }
        let aurora = times[0].1;
        for (label, t) in &times[1..] {
            assert!(*t > aurora * 3, "{label}: write+fsync {t} ns vs aurora {aurora} ns");
        }
    }

    #[test]
    fn aurora_checkpoints_bound_data_loss() {
        // Writes become durable within ~a checkpoint period even without
        // fsync.
        let mut fs = AuroraFs::testbed(1 << 30).unwrap();
        fs.create(7).unwrap();
        fs.write(7, 0, 64 * KIB).unwrap();
        // Idle past the checkpoint period: the background commit runs on
        // the next operation.
        fs.clock().advance(20 * MS);
        fs.write(7, 64 * KIB, 4 * KIB).unwrap();
        assert!(fs.committed_epochs() >= 1, "periodic checkpoint happened");
    }

    #[test]
    fn models_sustain_realistic_bandwidth() {
        // All three should land within sane bounds of the 4-device array
        // (~8.8 GB/s raw): between 0.5 and 9 GiB/s for 64 KiB sequential.
        for mut fs in all() {
            fs.create(1).unwrap();
            let total = GIB / 8;
            let mut off = 0;
            while off < total {
                fs.write(1, off, 64 * KIB).unwrap();
                off += 64 * KIB;
            }
            fs.finish().unwrap();
            let gib_s = (total as f64 / GIB as f64) / (fs.clock().now() as f64 / SEC as f64);
            assert!(
                (0.3..9.5).contains(&gib_s),
                "{}: {gib_s:.2} GiB/s out of range",
                fs.label()
            );
        }
    }
}
