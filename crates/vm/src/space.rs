//! Address spaces: the VM map (sorted entries) plus its pmap cache.

use crate::object::ObjKind;
use crate::pmap::Pmap;
use crate::types::{ObjId, Prot, SpaceId, VmError, PAGE_SIZE};
use crate::Vm;

/// Inheritance of a mapping across `fork` (FreeBSD `vm_inherit_t`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inherit {
    /// Parent and child share the object (writes are mutually visible).
    Share,
    /// Copy-on-write: each side gets a private view via shadow objects.
    Copy,
    /// The child does not inherit the mapping.
    None,
}

/// One mapped region (FreeBSD `vm_map_entry`).
#[derive(Clone, Copy, Debug)]
pub struct VmMapEntry {
    /// First mapped address (page aligned).
    pub start: u64,
    /// One past the last mapped address (page aligned).
    pub end: u64,
    /// Access protection.
    pub prot: Prot,
    /// Backing VM object (always the top of its shadow chain).
    pub object: ObjId,
    /// Offset into the object, in pages.
    pub offset_pages: u64,
    /// Fork behaviour.
    pub inherit: Inherit,
    /// Excluded from checkpoints via `sls_mctl` (§3).
    pub sls_exclude: bool,
}

impl VmMapEntry {
    /// Pages covered by the entry.
    pub fn pages(&self) -> u64 {
        (self.end - self.start) / PAGE_SIZE as u64
    }

    /// Virtual page number of `start`.
    pub fn start_vpn(&self) -> u64 {
        self.start / PAGE_SIZE as u64
    }

    /// True if `addr` falls inside the entry.
    pub fn contains(&self, addr: u64) -> bool {
        (self.start..self.end).contains(&addr)
    }
}

/// An address space (FreeBSD `vmspace`): map entries + page tables.
#[derive(Clone, Debug)]
pub struct VmSpace {
    /// This space's id.
    pub id: SpaceId,
    /// Entries sorted by start address, non-overlapping.
    pub entries: Vec<VmMapEntry>,
    /// The page-table cache.
    pub pmap: Pmap,
}

impl VmSpace {
    /// Finds the entry containing `addr`.
    pub fn entry_at(&self, addr: u64) -> Option<&VmMapEntry> {
        let idx = self.entries.partition_point(|e| e.end <= addr);
        self.entries.get(idx).filter(|e| e.contains(addr))
    }

    fn entry_index_at(&self, addr: u64) -> Option<usize> {
        let idx = self.entries.partition_point(|e| e.end <= addr);
        self.entries.get(idx).filter(|e| e.contains(addr)).map(|_| idx)
    }
}

/// Base of the automatic placement region.
const MAP_BASE: u64 = 0x1000_0000;
/// Top of user address space (57-bit, 5-level page tables per §2).
const MAP_TOP: u64 = 1 << 56;

impl Vm {
    /// Creates an empty address space.
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.next_space);
        self.next_space += 1;
        self.spaces.insert(id, VmSpace { id, entries: Vec::new(), pmap: Pmap::new() });
        id
    }

    /// Destroys a space, dropping its PTEs and entry references.
    pub fn destroy_space(&mut self, space: SpaceId) -> Result<(), VmError> {
        let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
        let ptes = sp.pmap.remove_range(0, u64::MAX);
        for (vpn, pte) in ptes {
            self.pv_remove(pte.frame, space, vpn);
        }
        let sp = self.spaces.remove(&space).expect("present above");
        for entry in sp.entries {
            self.unref_object(entry.object)?;
        }
        Ok(())
    }

    /// Maps `pages` pages of `object` (starting at `offset_pages`) into
    /// `space`. If `at` is `None` the kernel picks an address. Takes over
    /// one reference to `object` from the caller.
    #[allow(clippy::too_many_arguments)]
    pub fn map(
        &mut self,
        space: SpaceId,
        at: Option<u64>,
        pages: u64,
        prot: Prot,
        object: ObjId,
        offset_pages: u64,
        inherit: Inherit,
    ) -> Result<u64, VmError> {
        if pages == 0 {
            return Err(VmError::BadRange(0));
        }
        {
            let obj = self.objects.get(&object).ok_or(VmError::NoSuchObject(object))?;
            if offset_pages + pages > obj.size_pages {
                return Err(VmError::BadRange(offset_pages * PAGE_SIZE as u64));
            }
        }
        let len = pages * PAGE_SIZE as u64;
        let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
        let start = match at {
            Some(a) => {
                if a % PAGE_SIZE as u64 != 0 {
                    return Err(VmError::BadRange(a));
                }
                // Reject overlap.
                if sp.entries.iter().any(|e| a < e.end && e.start < a + len) {
                    return Err(VmError::Overlap(a));
                }
                a
            }
            None => {
                // First-fit in the automatic region.
                let mut candidate = MAP_BASE;
                for e in &sp.entries {
                    if e.start >= candidate + len {
                        break;
                    }
                    candidate = candidate.max(e.end);
                }
                if candidate + len > MAP_TOP {
                    return Err(VmError::Overlap(candidate));
                }
                candidate
            }
        };
        let entry = VmMapEntry {
            start,
            end: start + len,
            prot,
            object,
            offset_pages,
            inherit,
            sls_exclude: false,
        };
        let pos = sp.entries.partition_point(|e| e.start < start);
        sp.entries.insert(pos, entry);
        Ok(start)
    }

    /// Unmaps the entry that starts exactly at `addr` (whole-entry unmap,
    /// which is all the reproduction's applications need).
    pub fn unmap(&mut self, space: SpaceId, addr: u64) -> Result<(), VmError> {
        let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
        let idx = sp
            .entries
            .iter()
            .position(|e| e.start == addr)
            .ok_or(VmError::BadAddress(addr))?;
        let entry = sp.entries.remove(idx);
        let ptes = sp
            .pmap
            .remove_range(entry.start / PAGE_SIZE as u64, entry.end / PAGE_SIZE as u64);
        for (vpn, pte) in ptes {
            self.pv_remove(pte.frame, space, vpn);
            self.stats.pte_invalidations += 1;
        }
        self.unref_object(entry.object)?;
        Ok(())
    }

    /// Marks the entry starting at `addr` as excluded from (or included
    /// in) checkpoints — the mechanism behind `sls_mctl` (§3).
    pub fn set_sls_exclude(
        &mut self,
        space: SpaceId,
        addr: u64,
        exclude: bool,
    ) -> Result<(), VmError> {
        let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
        let idx = sp.entry_index_at(addr).ok_or(VmError::BadAddress(addr))?;
        sp.entries[idx].sls_exclude = exclude;
        Ok(())
    }

    /// Forks `parent` into a new space with FreeBSD semantics: `Share`
    /// entries alias the same object; `Copy` entries get copy-on-write via
    /// shadow objects on both sides; `None` entries are dropped.
    ///
    /// Shadows are created eagerly on both sides (FreeBSD defers the
    /// parent's until its first write; eager creation is equivalent for
    /// correctness and simplifies fault handling).
    pub fn fork_space(&mut self, parent: SpaceId) -> Result<SpaceId, VmError> {
        // Entries are copied one at a time by index rather than cloning the
        // parent's whole entry list up front: a wide space (thousands of
        // entries) would otherwise be deep-copied per fork.
        let n = self.spaces.get(&parent).ok_or(VmError::NoSuchSpace(parent))?.entries.len();
        let child = self.create_space();
        for i in 0..n {
            let entry = self.spaces.get(&parent).expect("checked above").entries[i];
            match entry.inherit {
                Inherit::None => {}
                Inherit::Share => {
                    self.ref_object(entry.object)?;
                    let sp = self.spaces.get_mut(&child).expect("just created");
                    sp.entries.push(entry);
                }
                Inherit::Copy => {
                    let obj = entry.object;
                    let child_shadow = self.make_shadow(obj, false)?;
                    let parent_shadow = self.make_shadow(obj, false)?;
                    // Write-protect the original's resident pages so both
                    // sides fault their private copies.
                    let frames: Vec<_> = self
                        .objects
                        .get(&obj)
                        .expect("shadow parent exists")
                        .pages
                        .values()
                        .filter_map(|s| match s {
                            crate::object::PageSlot::Resident { frame, .. } => Some(*frame),
                            crate::object::PageSlot::Swapped => None,
                        })
                        .collect();
                    for frame in frames {
                        self.pv_write_protect(frame);
                    }
                    self.stats.tlb_shootdowns += 1;
                    // The parent entry's direct reference moves to its shadow.
                    {
                        let sp = self.spaces.get_mut(&parent).expect("parent exists");
                        let e = sp
                            .entries
                            .iter_mut()
                            .find(|e| e.start == entry.start)
                            .expect("entry still present");
                        e.object = parent_shadow;
                    }
                    self.unref_object(obj)?;
                    let sp = self.spaces.get_mut(&child).expect("just created");
                    let mut ce = entry;
                    ce.object = child_shadow;
                    sp.entries.push(ce);
                }
            }
        }
        // Entries were pushed in sorted order (parent was sorted).
        Ok(child)
    }

    /// Total resident pages reachable from `space`'s entries, following
    /// shadow chains without double-counting objects (an approximation of
    /// RSS used for checkpoint sizing).
    pub fn space_resident_pages(&self, space: SpaceId) -> Result<u64, VmError> {
        let sp = self.spaces.get(&space).ok_or(VmError::NoSuchSpace(space))?;
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for e in &sp.entries {
            let mut cur = Some(e.object);
            while let Some(id) = cur {
                if !seen.insert(id) {
                    break;
                }
                let obj = self.objects.get(&id).ok_or(VmError::NoSuchObject(id))?;
                total += obj.resident_pages();
                cur = obj.backer;
            }
        }
        Ok(total)
    }

    /// The entries of a space (for serializers).
    pub fn entries(&self, space: SpaceId) -> Result<&[VmMapEntry], VmError> {
        Ok(&self.spaces.get(&space).ok_or(VmError::NoSuchSpace(space))?.entries)
    }

    /// Convenience: create an anonymous object and map it (the core of
    /// `mmap(MAP_ANON)`).
    pub fn mmap_anon(
        &mut self,
        space: SpaceId,
        pages: u64,
        prot: Prot,
    ) -> Result<u64, VmError> {
        let obj = self.create_object(ObjKind::Anonymous, pages);
        self.map(space, None, pages, prot, obj, 0, Inherit::Copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_places_and_rejects_overlap() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let o = vm.create_object(ObjKind::Anonymous, 16);
        let a = vm.map(s, Some(0x2000_0000), 16, Prot::RW, o, 0, Inherit::Copy).unwrap();
        assert_eq!(a, 0x2000_0000);
        let o2 = vm.create_object(ObjKind::Anonymous, 1);
        assert_eq!(
            vm.map(s, Some(0x2000_0000), 1, Prot::RW, o2, 0, Inherit::Copy),
            Err(VmError::Overlap(0x2000_0000))
        );
    }

    #[test]
    fn automatic_placement_finds_gaps() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 4, Prot::RW).unwrap();
        let b = vm.mmap_anon(s, 4, Prot::RW).unwrap();
        assert_ne!(a, b);
        let sp = vm.space(s).unwrap();
        assert_eq!(sp.entries.len(), 2);
        assert!(sp.entries[0].end <= sp.entries[1].start);
    }

    #[test]
    fn unmap_releases_object() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 4, Prot::RW).unwrap();
        assert_eq!(vm.object_count(), 1);
        vm.unmap(s, a).unwrap();
        assert_eq!(vm.object_count(), 0);
    }

    #[test]
    fn destroy_space_releases_everything() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        vm.mmap_anon(s, 4, Prot::RW).unwrap();
        vm.write(s, 0x1000_0000, &[1, 2, 3]).unwrap();
        vm.destroy_space(s).unwrap();
        assert_eq!(vm.object_count(), 0);
        assert_eq!(vm.resident_frames(), 0);
    }

    #[test]
    fn entry_lookup_half_open() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 2, Prot::RW).unwrap();
        let sp = vm.space(s).unwrap();
        assert!(sp.entry_at(a).is_some());
        assert!(sp.entry_at(a + 2 * PAGE_SIZE as u64 - 1).is_some());
        assert!(sp.entry_at(a + 2 * PAGE_SIZE as u64).is_none());
    }

    #[test]
    fn map_offset_past_object_rejected() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let o = vm.create_object(ObjKind::Anonymous, 4);
        assert!(vm.map(s, None, 4, Prot::RW, o, 1, Inherit::Copy).is_err());
    }
}
