//! The page-fault handler, and byte-level access through it.
//!
//! Faults resolve a virtual page against the entry's shadow chain: the
//! handler searches the top object first and falls through to backers
//! (§6, "On a page fault the handler first looks into the shadow"). Write
//! faults on pages owned by an ancestor (or on clean shared pages) break
//! COW by copying the page into the top object.

use crate::object::PageSlot;
use crate::pmap::Pte;
use crate::types::{FrameId, ObjId, Prot, SpaceId, VmError, PAGE_SIZE};
use crate::Vm;

/// Where a fault found its page.
enum Found {
    /// Resident in the chain: owning object, depth (0 = top), frame.
    Resident { owner: ObjId, depth: u32, frame: FrameId },
    /// Nowhere in the chain: zero-fill.
    Missing,
}

impl Vm {
    /// Walks the shadow chain for `pindex` starting at `top`.
    fn chain_lookup(&self, top: ObjId, pindex: u64) -> Result<Found, VmError> {
        let mut cur = top;
        let mut depth = 0;
        loop {
            let obj = self.objects.get(&cur).ok_or(VmError::NoSuchObject(cur))?;
            match obj.pages.get(&pindex) {
                Some(PageSlot::Resident { frame, .. }) => {
                    return Ok(Found::Resident { owner: cur, depth, frame: *frame });
                }
                Some(PageSlot::Swapped) => {
                    return Err(VmError::NeedsPage { obj: cur, pindex });
                }
                None => match obj.backer {
                    Some(b) => {
                        cur = b;
                        depth += 1;
                    }
                    None => return Ok(Found::Missing),
                },
            }
        }
    }

    /// Resolves a fault at `vpn`, installing a PTE; returns the frame.
    ///
    /// `write` selects a write fault. Returns [`VmError::NeedsPage`] if
    /// the page is swapped out: the caller's pager fetches it, calls
    /// [`Vm::install_page`], and retries.
    pub fn resolve_fault(
        &mut self,
        space: SpaceId,
        vpn: u64,
        write: bool,
    ) -> Result<FrameId, VmError> {
        let addr = vpn * PAGE_SIZE as u64;
        // Fast path: a valid PTE.
        {
            let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
            if let Some(pte) = sp.pmap.get(vpn).copied() {
                if !write || pte.writable {
                    sp.pmap.mark_access(vpn, write);
                    return Ok(pte.frame);
                }
            }
        }
        self.stats.faults += 1;
        let (top, pindex, prot) = {
            let sp = self.spaces.get(&space).expect("checked above");
            let entry = sp.entry_at(addr).ok_or(VmError::BadAddress(addr))?;
            (entry.object, entry.offset_pages + (vpn - entry.start_vpn()), entry.prot)
        };
        let needed = if write { Prot::WRITE } else { Prot::READ };
        if !prot.contains(needed) {
            return Err(VmError::Protection(addr));
        }
        let found = self.chain_lookup(top, pindex)?;
        let top_has_shadows =
            self.objects.get(&top).ok_or(VmError::NoSuchObject(top))?.shadow_count > 0;

        let (frame, writable, kind, depth_arg) = match (found, write) {
            (Found::Resident { owner, depth, frame }, false) => {
                // Read fault: map the existing page. Writable only when it
                // is the top object's own page, the mapping allows writes,
                // and nothing shadows the top (otherwise writes must fault
                // so COW can intervene).
                let obj = self.objects.get(&owner).expect("owner exists");
                let dirty_own = depth == 0
                    && matches!(obj.pages.get(&pindex), Some(PageSlot::Resident { dirty: true, .. }));
                let writable = dirty_own && prot.contains(Prot::WRITE) && !top_has_shadows;
                (frame, writable, "vm.fault.map", depth as u64)
            }
            (Found::Resident { depth, frame, .. }, true) => {
                if depth == 0 {
                    // Our own page: upgrade in place and mark it dirty. A
                    // shadowed top object never receives write faults —
                    // system shadowing repoints every entry to the new
                    // shadow before resuming the application.
                    debug_assert!(!top_has_shadows, "write fault into shadowed top object");
                    let obj = self.objects.get_mut(&top).expect("top exists");
                    if let Some(PageSlot::Resident { dirty, .. }) = obj.pages.get_mut(&pindex) {
                        *dirty = true;
                    }
                    (frame, true, "vm.fault.upgrade", 0)
                } else {
                    // COW break: copy the ancestor's page into the top.
                    // If the top object is shared (several entries map
                    // it), other sharers' PTEs to the superseded frame are
                    // now stale and must refault to see this write.
                    let top_shared =
                        self.objects.get(&top).expect("top exists").ref_count > 1;
                    if top_shared {
                        self.pv_invalidate_frame(frame);
                    }
                    // The break is a refcount bump: the top object gets its
                    // own frame slot sharing the ancestor's bytes. The host
                    // copy is deferred to the first byte actually written
                    // (make_mut in `write`).
                    let page = self.frames.get(&frame).expect("resident frame").clone();
                    let new_frame = self.alloc_frame(page);
                    let obj = self.objects.get_mut(&top).expect("top exists");
                    obj.pages.insert(pindex, PageSlot::Resident { frame: new_frame, dirty: true });
                    self.stats.cow_breaks += 1;
                    (new_frame, true, "vm.cow_break", depth as u64)
                }
            }
            (Found::Missing, _) => {
                // Zero-fill into the top object: a ref to the arena's
                // shared zero frame, materialized on first byte write. The
                // page is dirty from the store's perspective (never
                // persisted).
                let z = self.arena.zero();
                let frame = self.alloc_frame(z);
                let obj = self.objects.get_mut(&top).expect("top exists");
                obj.pages.insert(pindex, PageSlot::Resident { frame, dirty: true });
                self.stats.zero_fills += 1;
                (frame, write && !top_has_shadows, "vm.zero_fill", 0)
            }
        };
        if self.trace.is_enabled() {
            self.trace.instant(
                "vm",
                kind,
                &[("space", space.0), ("vpn", vpn), ("depth", depth_arg)],
            );
        }

        // Install the PTE, replacing any stale one (and its pv entry).
        let sp = self.spaces.get_mut(&space).expect("checked above");
        let old = sp.pmap.install(vpn, Pte { frame, writable, dirty: write, accessed: true });
        if let Some(old) = old {
            self.pv_remove(old.frame, space, vpn);
        }
        self.pv_insert(frame, space, vpn);
        self.stats.pte_installs += 1;
        Ok(frame)
    }

    /// Reads `buf.len()` bytes at `addr`, faulting pages as needed.
    pub fn read(&mut self, space: SpaceId, addr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr + done as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let off = (cur % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            let frame = self.resolve_fault(space, vpn, false)?;
            let data = self.frames.get(&frame).expect("resident frame");
            buf[done..done + chunk].copy_from_slice(&data[off..off + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Writes `data` at `addr`, faulting/COW-breaking pages as needed.
    pub fn write(&mut self, space: SpaceId, addr: u64, data: &[u8]) -> Result<(), VmError> {
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let off = (cur % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            let frame = self.resolve_fault(space, vpn, true)?;
            let page =
                self.arena.make_mut(self.frames.get_mut(&frame).expect("resident frame"));
            page[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Touches (write-faults) every page in `[addr, addr+len)` without
    /// changing content — used by benchmarks to dirty a working set.
    pub fn touch(&mut self, space: SpaceId, addr: u64, len: u64) -> Result<(), VmError> {
        let first = addr / PAGE_SIZE as u64;
        let last = (addr + len).div_ceil(PAGE_SIZE as u64);
        for vpn in first..last {
            // The write fault itself marks the top object's page dirty
            // (upgrade-in-place or COW break), so no content write is
            // needed to dirty the working set.
            self.resolve_fault(space, vpn, true)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Inherit;

    #[test]
    fn write_then_read_roundtrips() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 4, Prot::RW).unwrap();
        vm.write(s, a + 100, b"aurora").unwrap();
        let mut buf = [0u8; 6];
        vm.read(s, a + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"aurora");
    }

    #[test]
    fn reads_of_fresh_memory_are_zero() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 1, Prot::RW).unwrap();
        let mut buf = [1u8; 16];
        vm.read(s, a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn cross_page_write() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 2, Prot::RW).unwrap();
        let data: Vec<u8> = (0..PAGE_SIZE + 100).map(|i| (i % 256) as u8).collect();
        vm.write(s, a, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        vm.read(s, a, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unmapped_access_fails() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let mut buf = [0u8; 1];
        assert!(matches!(vm.read(s, 0xdead_0000, &mut buf), Err(VmError::BadAddress(_))));
    }

    #[test]
    fn write_to_readonly_fails() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let o = vm.create_object(crate::object::ObjKind::Anonymous, 1);
        let a = vm.map(s, None, 1, Prot::READ, o, 0, Inherit::Share).unwrap();
        assert!(matches!(vm.write(s, a, &[0]), Err(VmError::Protection(_))));
    }

    #[test]
    fn fork_preserves_cow_isolation() {
        let mut vm = Vm::new();
        let parent = vm.create_space();
        let a = vm.mmap_anon(parent, 2, Prot::RW).unwrap();
        vm.write(parent, a, b"before").unwrap();
        let child = vm.fork_space(parent).unwrap();

        // Child sees the parent's data.
        let mut buf = [0u8; 6];
        vm.read(child, a, &mut buf).unwrap();
        assert_eq!(&buf, b"before");

        // Child writes are private.
        vm.write(child, a, b"CHILD!").unwrap();
        vm.read(parent, a, &mut buf).unwrap();
        assert_eq!(&buf, b"before");

        // Parent writes are private too.
        vm.write(parent, a, b"PARENT").unwrap();
        vm.read(child, a, &mut buf).unwrap();
        assert_eq!(&buf, b"CHILD!");
    }

    #[test]
    fn fork_share_is_mutually_visible() {
        let mut vm = Vm::new();
        let parent = vm.create_space();
        let o = vm.create_object(crate::object::ObjKind::Anonymous, 1);
        let a = vm.map(parent, None, 1, Prot::RW, o, 0, Inherit::Share).unwrap();
        let child = vm.fork_space(parent).unwrap();
        vm.write(child, a, b"shared").unwrap();
        let mut buf = [0u8; 6];
        vm.read(parent, a, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn cow_break_counts_once() {
        let mut vm = Vm::new();
        let parent = vm.create_space();
        let a = vm.mmap_anon(parent, 1, Prot::RW).unwrap();
        vm.write(parent, a, &[1]).unwrap();
        let _child = vm.fork_space(parent).unwrap();
        let before = vm.stats.cow_breaks;
        vm.write(parent, a, &[2]).unwrap();
        vm.write(parent, a, &[3]).unwrap(); // second write: no new break
        assert_eq!(vm.stats.cow_breaks, before + 1);
    }

    #[test]
    fn traced_faults_emit_events_without_changing_behavior() {
        let run = |trace: aurora_trace::Trace| {
            let mut vm = Vm::new();
            vm.set_trace(trace);
            let s = vm.create_space();
            let a = vm.mmap_anon(s, 4, Prot::RW).unwrap();
            vm.write(s, a, &[1]).unwrap();
            vm.system_shadow(&[s]).unwrap();
            vm.write(s, a, &[2]).unwrap(); // COW break into the new top
            vm.stats
        };
        let t = aurora_trace::Trace::recording(|| 0);
        let traced = run(t.clone());
        let untraced = run(aurora_trace::Trace::disabled());
        assert_eq!(traced, untraced, "tracing must not perturb VM behavior");
        let names: Vec<_> = t.events().iter().map(|e| e.name.to_string()).collect();
        for expect in ["vm.zero_fill", "vm.cow_break", "vm.system_shadow"] {
            assert!(names.iter().any(|n| n == expect), "missing {expect} in {names:?}");
        }
    }

    #[test]
    fn swapped_page_raises_needs_page() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 1, Prot::RW).unwrap();
        vm.write(s, a, &[9]).unwrap();
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        vm.mark_clean(top, 0).unwrap();
        vm.evict_page(top, 0).unwrap();
        let mut buf = [0u8; 1];
        match vm.read(s, a, &mut buf) {
            Err(VmError::NeedsPage { obj, pindex }) => {
                assert_eq!((obj, pindex), (top, 0));
            }
            other => panic!("expected NeedsPage, got {other:?}"),
        }
        // Pager brings the page back and the read succeeds.
        let mut page = crate::types::zero_page();
        vm.arena.make_mut(&mut page)[0] = 9;
        vm.install_page(top, 0, page, false).unwrap();
        vm.read(s, a, &mut buf).unwrap();
        assert_eq!(buf, [9]);
    }
}
