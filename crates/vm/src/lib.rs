//! A Mach-style virtual memory subsystem, modelled on FreeBSD's VM (§6 of
//! the paper and Figure 2).
//!
//! The paper's central performance technique — **system shadowing** — is an
//! algorithm over this object graph:
//!
//! * Address spaces ([`space::VmSpace`]) hold a list of map entries, each
//!   backed by a [`object::VmObject`].
//! * VM objects hold pages and may *shadow* a backing object: the shadow's
//!   pages are private; missing pages are found in the backer. This is how
//!   `fork` implements COW.
//! * A simulated [`pmap`] caches virtual→frame translations with per-PTE
//!   writable/dirty bits and *pv entries* (frame→PTE back-pointers), just
//!   like the hardware page tables + pv lists in FreeBSD. Write-protecting
//!   a page during shadowing walks its pv entries — the source of the
//!   ~22 ns/dirty-page slope in Table 5.
//! * [`Vm::system_shadow`] shadows every writable anonymous object across
//!   a consistency group at once, and [`Vm::collapse`] retires a flushed
//!   shadow — in either the classic (forward) direction or Aurora's
//!   reversed direction (§6, "Aurora optimizes the collapse operation by
//!   reversing its direction").
//!
//! The crate is pure: it never touches a clock. Every operation updates
//! [`stats::VmStats`] counters (page copies, PTE downgrades, TLB
//! shootdowns, collapse page moves); callers convert counter deltas into
//! virtual time via the cost model.

pub mod fault;
pub mod object;
pub mod pmap;
pub mod shadow;
pub mod space;
pub mod stats;
pub mod types;

pub use object::{ObjKind, PageSlot, VmObject};
pub use shadow::{CollapseMode, CollapseReport, ShadowPair};
pub use space::{Inherit, VmMapEntry, VmSpace};
pub use stats::VmStats;
pub use types::{
    FrameArena, FrameGauges, FrameId, ObjId, PageData, PageRef, Prot, SpaceId, VmError, PAGE_SIZE,
};

use std::collections::HashMap;

/// The virtual memory manager: all objects, spaces, frames, and pv state.
///
/// One `Vm` models one machine's memory. The interesting entry points are
/// [`Vm::map`], [`Vm::write`], [`Vm::fork_space`], [`Vm::system_shadow`],
/// and [`Vm::collapse`].
#[derive(Debug, Default)]
pub struct Vm {
    pub(crate) objects: HashMap<ObjId, VmObject>,
    pub(crate) spaces: HashMap<SpaceId, VmSpace>,
    pub(crate) frames: HashMap<FrameId, PageData>,
    /// pv entries: frame → every (space, vpn) whose PTE references it.
    pub(crate) pv: HashMap<FrameId, Vec<(SpaceId, u64)>>,
    pub(crate) next_obj: u64,
    pub(crate) next_space: u64,
    pub(crate) next_frame: u64,
    pub(crate) next_lineage: u64,
    /// The frame arena this VM allocates pages from. Shared (via clone)
    /// with the object store so a page keeps one identity from a process's
    /// address space down to the store's page cache.
    pub arena: FrameArena,
    /// Monotonic operation counters; see [`stats::VmStats`].
    pub stats: VmStats,
    /// Optional event recorder; disabled by default (pure no-op).
    pub(crate) trace: aurora_trace::Trace,
}

impl Vm {
    /// Creates an empty VM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a trace recorder. The VM itself is clock-free; the
    /// handle's timestamps come from whoever built it.
    pub fn set_trace(&mut self, trace: aurora_trace::Trace) {
        self.trace = trace;
    }

    /// Replaces the frame arena (used after a simulated reboot to adopt
    /// the store's long-lived arena so restored pages share frames with
    /// the store's page cache).
    pub fn set_arena(&mut self, arena: FrameArena) {
        self.arena = arena;
    }

    /// Snapshot of the arena's frame gauges.
    pub fn frame_gauges(&self) -> FrameGauges {
        self.arena.gauges()
    }

    /// Number of live VM objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of resident frames (machine-wide RSS in pages).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Looks up an object.
    pub fn object(&self, id: ObjId) -> Result<&VmObject, VmError> {
        self.objects.get(&id).ok_or(VmError::NoSuchObject(id))
    }

    /// Looks up a space.
    pub fn space(&self, id: SpaceId) -> Result<&VmSpace, VmError> {
        self.spaces.get(&id).ok_or(VmError::NoSuchSpace(id))
    }

    pub(crate) fn alloc_frame(&mut self, data: PageData) -> FrameId {
        let id = FrameId(self.next_frame);
        self.next_frame += 1;
        self.frames.insert(id, data);
        self.stats.frames_allocated += 1;
        id
    }

    /// Frees a frame, invalidating every PTE that references it.
    pub(crate) fn free_frame(&mut self, frame: FrameId) {
        if let Some(mappings) = self.pv.remove(&frame) {
            for (space, vpn) in mappings {
                if let Some(sp) = self.spaces.get_mut(&space) {
                    sp.pmap.remove(vpn);
                    self.stats.pte_invalidations += 1;
                }
            }
        }
        self.frames.remove(&frame);
        self.stats.frames_freed += 1;
    }

    /// Registers a PTE in the pv table.
    pub(crate) fn pv_insert(&mut self, frame: FrameId, space: SpaceId, vpn: u64) {
        self.pv.entry(frame).or_default().push((space, vpn));
    }

    /// Unregisters a PTE from the pv table.
    pub(crate) fn pv_remove(&mut self, frame: FrameId, space: SpaceId, vpn: u64) {
        if let Some(v) = self.pv.get_mut(&frame) {
            v.retain(|&(s, p)| !(s == space && p == vpn));
            if v.is_empty() {
                self.pv.remove(&frame);
            }
        }
    }

    /// Invalidates every PTE mapping `frame` without freeing it. Used
    /// when a COW break on a *shared* object supersedes a frame: sharers
    /// must refault through the chain to find the new page.
    pub(crate) fn pv_invalidate_frame(&mut self, frame: FrameId) {
        if let Some(mappings) = self.pv.remove(&frame) {
            for (space, vpn) in mappings {
                if let Some(sp) = self.spaces.get_mut(&space) {
                    sp.pmap.remove(vpn);
                    self.stats.pte_invalidations += 1;
                }
            }
        }
    }

    /// Write-protects every PTE mapping `frame`, walking its pv entries.
    /// Returns the number of PTEs downgraded.
    pub(crate) fn pv_write_protect(&mut self, frame: FrameId) -> u64 {
        let mut downgraded = 0;
        if let Some(mappings) = self.pv.get(&frame).cloned() {
            for (space, vpn) in mappings {
                if let Some(sp) = self.spaces.get_mut(&space) {
                    if sp.pmap.write_protect(vpn) {
                        downgraded += 1;
                    }
                }
            }
        }
        self.stats.pte_downgrades += downgraded;
        downgraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vm_is_empty() {
        let vm = Vm::new();
        assert_eq!(vm.object_count(), 0);
        assert_eq!(vm.resident_frames(), 0);
    }
}
