//! Core identifiers, protections, page data, and the VM error type.

use std::fmt;

pub use aurora_frames::{FrameArena, FrameGauges, PageBytes, PageRef, PAGE_SIZE};

/// Identifier of a VM object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// Identifier of an address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(pub u64);

/// Identifier of a physical frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// A stable identity for a *logical* memory object across system
/// shadowing.
///
/// System shadows come and go every checkpoint; the on-disk object that
/// accumulates a region's deltas must stay the same. A shadow created by
/// system shadowing inherits its parent's lineage; a shadow created by
/// `fork` gets a fresh lineage because the paper persists each COW level
/// as its own on-disk object (§6, "Checkpointing the VM").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lineage(pub u64);

/// One page of data: a refcounted frame in the arena. Cloning shares
/// the frame; mutation goes through [`FrameArena::make_mut`].
pub type PageData = PageRef;

/// The shared zero frame. No allocation: every call hands out a ref to
/// one process-wide frame of zeros; the first write through an arena
/// materializes a private copy.
pub fn zero_page() -> PageData {
    PageRef::zero()
}

/// Memory protection bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Prot(pub u8);

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot(0);
    /// Readable.
    pub const READ: Prot = Prot(1);
    /// Writable (implies readable in this model).
    pub const WRITE: Prot = Prot(2);
    /// Executable.
    pub const EXEC: Prot = Prot(4);
    /// Read + write.
    pub const RW: Prot = Prot(3);
    /// Read + exec.
    pub const RX: Prot = Prot(5);

    /// True if all bits of `other` are present.
    pub fn contains(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of protections.
    pub fn union(self, other: Prot) -> Prot {
        Prot(self.0 | other.0)
    }
}

/// Errors from VM operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The referenced object does not exist.
    NoSuchObject(ObjId),
    /// The referenced space does not exist.
    NoSuchSpace(SpaceId),
    /// An access hit an unmapped address.
    BadAddress(u64),
    /// A mapping request overlapped an existing entry.
    Overlap(u64),
    /// An access violated the entry's protection.
    Protection(u64),
    /// The accessed page has been swapped out; the caller's pager must
    /// fetch it from the store and call `install_page`, then retry.
    NeedsPage {
        /// Object holding the swapped page.
        obj: ObjId,
        /// Page index within the object.
        pindex: u64,
    },
    /// An offset/length was not page-aligned or out of the object.
    BadRange(u64),
    /// A collapse was requested on an object that cannot be collapsed.
    CannotCollapse(ObjId),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchObject(id) => write!(f, "no such VM object {:?}", id),
            VmError::NoSuchSpace(id) => write!(f, "no such VM space {:?}", id),
            VmError::BadAddress(a) => write!(f, "bad address {a:#x}"),
            VmError::Overlap(a) => write!(f, "mapping overlaps at {a:#x}"),
            VmError::Protection(a) => write!(f, "protection violation at {a:#x}"),
            VmError::NeedsPage { obj, pindex } => {
                write!(f, "page {pindex} of {obj:?} is swapped out")
            }
            VmError::BadRange(a) => write!(f, "bad range at {a:#x}"),
            VmError::CannotCollapse(id) => write!(f, "cannot collapse {id:?}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_contains() {
        assert!(Prot::RW.contains(Prot::READ));
        assert!(Prot::RW.contains(Prot::WRITE));
        assert!(!Prot::READ.contains(Prot::WRITE));
        assert!(Prot::READ.union(Prot::EXEC).contains(Prot::EXEC));
    }

    #[test]
    fn zero_page_is_zero() {
        assert!(zero_page().iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_page_is_one_shared_frame() {
        let a = zero_page();
        let b = zero_page();
        assert!(PageRef::ptr_eq(&a, &b), "zero_page must not allocate");
    }
}
