//! The physical map: a simulated per-address-space page table.
//!
//! The pmap is a *cache* of the VM map (Figure 2 of the paper): it can be
//! dropped and rebuilt from the map at any time. PTEs carry the hardware
//! writable/dirty/accessed bits that incremental checkpointing relies on.

use crate::types::FrameId;
use std::collections::BTreeMap;

/// A page table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Mapped frame.
    pub frame: FrameId,
    /// Hardware writable bit; cleared when a page is COW-protected.
    pub writable: bool,
    /// Hardware dirty bit (set on write access).
    pub dirty: bool,
    /// Hardware accessed bit (set on any access).
    pub accessed: bool,
}

/// A per-space page table, keyed by virtual page number.
#[derive(Clone, Debug, Default)]
pub struct Pmap {
    ptes: BTreeMap<u64, Pte>,
}

impl Pmap {
    /// Creates an empty pmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a PTE.
    pub fn get(&self, vpn: u64) -> Option<&Pte> {
        self.ptes.get(&vpn)
    }

    /// Installs (or replaces) a PTE.
    pub fn install(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        self.ptes.insert(vpn, pte)
    }

    /// Removes a PTE, returning it.
    pub fn remove(&mut self, vpn: u64) -> Option<Pte> {
        self.ptes.remove(&vpn)
    }

    /// Clears the writable bit of a PTE; returns true if it was writable.
    pub fn write_protect(&mut self, vpn: u64) -> bool {
        match self.ptes.get_mut(&vpn) {
            Some(pte) if pte.writable => {
                pte.writable = false;
                true
            }
            _ => false,
        }
    }

    /// Marks an access: sets accessed, and dirty for writes. The PTE must
    /// exist and (for writes) be writable — callers fault first.
    pub fn mark_access(&mut self, vpn: u64, write: bool) {
        let pte = self.ptes.get_mut(&vpn).expect("access to unmapped vpn");
        pte.accessed = true;
        if write {
            debug_assert!(pte.writable, "write through read-only PTE");
            pte.dirty = true;
        }
    }

    /// Removes every PTE in `[start_vpn, end_vpn)`, returning them (the
    /// caller unregisters pv entries).
    pub fn remove_range(&mut self, start_vpn: u64, end_vpn: u64) -> Vec<(u64, Pte)> {
        let keys: Vec<u64> = self.ptes.range(start_vpn..end_vpn).map(|(&k, _)| k).collect();
        keys.into_iter().map(|k| (k, self.ptes.remove(&k).expect("just listed"))).collect()
    }

    /// Number of PTEs installed.
    pub fn len(&self) -> usize {
        self.ptes.len()
    }

    /// True when no PTEs are installed.
    pub fn is_empty(&self) -> bool {
        self.ptes.is_empty()
    }

    /// Iterates over all PTEs.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Pte)> {
        self.ptes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(frame: u64, writable: bool) -> Pte {
        Pte { frame: FrameId(frame), writable, dirty: false, accessed: false }
    }

    #[test]
    fn install_get_remove() {
        let mut p = Pmap::new();
        p.install(10, pte(1, true));
        assert_eq!(p.get(10).unwrap().frame, FrameId(1));
        assert!(p.remove(10).is_some());
        assert!(p.get(10).is_none());
    }

    #[test]
    fn write_protect_reports_transition() {
        let mut p = Pmap::new();
        p.install(5, pte(1, true));
        assert!(p.write_protect(5));
        assert!(!p.write_protect(5), "already read-only");
        assert!(!p.write_protect(99), "missing PTE");
    }

    #[test]
    fn mark_access_sets_bits() {
        let mut p = Pmap::new();
        p.install(3, pte(2, true));
        p.mark_access(3, false);
        assert!(p.get(3).unwrap().accessed);
        assert!(!p.get(3).unwrap().dirty);
        p.mark_access(3, true);
        assert!(p.get(3).unwrap().dirty);
    }

    #[test]
    fn remove_range_is_half_open() {
        let mut p = Pmap::new();
        for vpn in 0..10 {
            p.install(vpn, pte(vpn, false));
        }
        let removed = p.remove_range(3, 6);
        assert_eq!(removed.len(), 3);
        assert!(p.get(3).is_none() && p.get(5).is_none());
        assert!(p.get(6).is_some());
    }
}
