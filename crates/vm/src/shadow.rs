//! Object shadowing, system shadowing, and collapse (§6 of the paper).
//!
//! System shadowing is Aurora's key memory-tracking technique: at each
//! checkpoint one shadow is created **per writable anonymous object across
//! the whole consistency group**, atomically repointing every map entry.
//! Unlike `fork`'s COW it preserves shared-memory semantics (all sharers
//! are repointed to the *same* shadow) and covers IPC objects via the shm
//! backmap maintained by the POSIX layer.
//!
//! Collapse retires a flushed shadow. The classic Mach/FreeBSD operation
//! merges the *parent's* pages into the shadow — linear in the parent's
//! residency. Aurora reverses the direction, moving the (few) shadow pages
//! into the parent; [`CollapseMode`] implements both so the ablation bench
//! can compare them.

use crate::object::{ObjKind, PageSlot, VmObject};
use crate::types::{Lineage, ObjId, Prot, SpaceId, VmError};
use crate::Vm;

/// A (parent, shadow) pair created by [`Vm::system_shadow`].
///
/// `old_top` is now frozen: the checkpoint flusher reads its pages while
/// the application keeps running against `new_top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowPair {
    /// The stable logical identity both objects share.
    pub lineage: Lineage,
    /// The frozen object whose pages the flusher will write out.
    pub old_top: ObjId,
    /// The new top object accumulating post-checkpoint writes.
    pub new_top: ObjId,
}

/// Direction of a collapse operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollapseMode {
    /// Aurora's optimization: move the shadow's (few) pages into the
    /// parent.
    Reversed,
    /// The classic Mach/FreeBSD operation: move the parent's pages into
    /// the shadow.
    Forward,
}

/// What a collapse did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollapseReport {
    /// Object removed from the chain.
    pub freed: ObjId,
    /// Object that absorbed the pages.
    pub survivor: ObjId,
    /// Pages moved between objects (the operation's linear cost).
    pub pages_moved: u64,
    /// Stale parent pages replaced (frames freed).
    pub pages_replaced: u64,
}

impl Vm {
    /// Creates a shadow of `parent`. The caller owns the returned
    /// object's single reference. `system` shadows inherit the parent's
    /// lineage (they are the same logical object for the store); fork
    /// shadows get a fresh lineage.
    pub fn make_shadow(&mut self, parent: ObjId, system: bool) -> Result<ObjId, VmError> {
        let p = self.objects.get_mut(&parent).ok_or(VmError::NoSuchObject(parent))?;
        p.shadow_count += 1;
        let size_pages = p.size_pages;
        let parent_lineage = p.lineage;
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        let lineage = if system {
            parent_lineage
        } else {
            let l = Lineage(self.next_lineage);
            self.next_lineage += 1;
            l
        };
        self.objects.insert(
            id,
            VmObject {
                id,
                kind: ObjKind::Anonymous,
                size_pages,
                pages: Default::default(),
                backer: Some(parent),
                ref_count: 1,
                shadow_count: 0,
                lineage,
                system_shadow: system,
            },
        );
        self.stats.shadows_created += 1;
        Ok(id)
    }

    /// Shadows every writable anonymous top object mapped by the spaces
    /// of a consistency group, repointing all their entries (including
    /// shared-memory aliases) to the new shadows and write-protecting the
    /// frozen pages. Returns the frozen/new pairs for the flusher.
    ///
    /// Entries excluded via `sls_mctl` are skipped when *selecting*
    /// objects, but an object selected through one entry is repointed in
    /// every entry that maps it — otherwise an alias could keep writing
    /// into the frozen copy.
    pub fn system_shadow(&mut self, group: &[SpaceId]) -> Result<Vec<ShadowPair>, VmError> {
        // Collect unique targets in deterministic (address) order.
        let mut targets: Vec<ObjId> = Vec::new();
        for &space in group {
            let sp = self.spaces.get(&space).ok_or(VmError::NoSuchSpace(space))?;
            for e in &sp.entries {
                if e.sls_exclude || !e.prot.contains(Prot::WRITE) {
                    continue;
                }
                let obj = self.objects.get(&e.object).ok_or(VmError::NoSuchObject(e.object))?;
                if obj.kind != ObjKind::Anonymous {
                    // File COW is handled by the Aurora file system (§6).
                    continue;
                }
                if !targets.contains(&e.object) {
                    targets.push(e.object);
                }
            }
        }

        let mut pairs = Vec::with_capacity(targets.len());
        for old in targets {
            pairs.push(self.shadow_one(old, group)?);
        }
        // One TLB shootdown per space in the group.
        self.stats.tlb_shootdowns += group.len() as u64;
        self.stats.system_shadows += 1;
        if self.trace.is_enabled() {
            self.trace.instant(
                "vm",
                "vm.system_shadow",
                &[("spaces", group.len() as u64), ("pairs", pairs.len() as u64)],
            );
        }
        Ok(pairs)
    }

    /// Shadows a single object across `group`: repoints every entry that
    /// maps it, transfers references, and COW-marks the frozen pages.
    /// This is the `sls_memckpt` primitive and the inner loop of
    /// [`Vm::system_shadow`].
    pub fn shadow_one(&mut self, old: ObjId, group: &[SpaceId]) -> Result<ShadowPair, VmError> {
        let new = self.make_shadow(old, true)?;
        // Repoint every entry (in the group) that maps `old`.
        let mut repointed: u32 = 0;
        for &space in group {
            let sp = self.spaces.get_mut(&space).ok_or(VmError::NoSuchSpace(space))?;
            for e in &mut sp.entries {
                if e.object == old {
                    e.object = new;
                    repointed += 1;
                }
            }
        }
        debug_assert!(repointed > 0, "selected object with no entries");
        // Transfer references: the creation ref covers the first entry;
        // each further alias adds one. `old` loses its entry refs but
        // gains a shadow reference.
        {
            let n = self.objects.get_mut(&new).expect("just created");
            n.ref_count += repointed - 1;
        }
        {
            let o = self.objects.get_mut(&old).expect("exists");
            debug_assert!(o.ref_count >= repointed, "entry refs underflow");
            o.ref_count -= repointed;
        }
        // COW-mark the frozen pages: walk each resident page's pv entries
        // and clear the writable bit (Table 5's linear term).
        let frames: Vec<_> = self
            .objects
            .get(&old)
            .expect("exists")
            .pages
            .values()
            .filter_map(|s| match s {
                PageSlot::Resident { frame, .. } => Some(*frame),
                PageSlot::Swapped => None,
            })
            .collect();
        for frame in frames {
            self.pv_write_protect(frame);
        }
        let lineage = self.objects.get(&new).expect("exists").lineage;
        Ok(ShadowPair { lineage, old_top: old, new_top: new })
    }

    /// Collapses the shadow directly under `top` into its own backer,
    /// shortening the chain `grandparent ← middle ← top` to
    /// `survivor ← top`. Returns `None` when the chain is too short.
    ///
    /// Both objects in the middle must be internal (no entry references,
    /// exactly one shadow each) — otherwise another process could observe
    /// the merge — or `CannotCollapse` is returned.
    pub fn collapse_under(
        &mut self,
        top: ObjId,
        mode: CollapseMode,
    ) -> Result<Option<CollapseReport>, VmError> {
        let middle = match self.objects.get(&top).ok_or(VmError::NoSuchObject(top))?.backer {
            Some(m) => m,
            None => return Ok(None),
        };
        let parent = match self.objects.get(&middle).ok_or(VmError::NoSuchObject(middle))?.backer
        {
            Some(p) => p,
            None => return Ok(None),
        };
        {
            let m = self.objects.get(&middle).expect("exists");
            if m.ref_count != 0 || m.shadow_count != 1 {
                return Err(VmError::CannotCollapse(middle));
            }
            let p = self.objects.get(&parent).ok_or(VmError::NoSuchObject(parent))?;
            if p.ref_count != 0 || p.shadow_count != 1 {
                return Err(VmError::CannotCollapse(parent));
            }
        }

        let report = match mode {
            CollapseMode::Reversed => {
                // Move the shadow's pages down into the parent, replacing
                // stale versions. Linear in |middle| — the dirty set.
                let middle_pages =
                    std::mem::take(&mut self.objects.get_mut(&middle).expect("exists").pages);
                let mut moved = 0;
                let mut replaced = 0;
                let mut stale_frames = Vec::new();
                {
                    let p = self.objects.get_mut(&parent).expect("exists");
                    for (pindex, slot) in middle_pages {
                        if let Some(PageSlot::Resident { frame, .. }) = p.pages.insert(pindex, slot)
                        {
                            stale_frames.push(frame);
                            replaced += 1;
                        }
                        moved += 1;
                    }
                }
                for frame in stale_frames {
                    self.free_frame(frame);
                }
                // Relink: top now shadows the parent directly.
                self.objects.get_mut(&top).expect("exists").backer = Some(parent);
                // `middle` is gone: the parent keeps shadow_count 1 (now
                // from `top`).
                self.objects.remove(&middle);
                CollapseReport { freed: middle, survivor: parent, pages_moved: moved, pages_replaced: replaced }
            }
            CollapseMode::Forward => {
                // Classic direction: pull the parent's pages up into the
                // shadow (skipping pages the shadow already owns), then
                // splice the parent out. Linear in |parent|.
                let parent_pages =
                    std::mem::take(&mut self.objects.get_mut(&parent).expect("exists").pages);
                let grandparent = self.objects.get(&parent).expect("exists").backer;
                let mut moved = 0;
                let mut replaced = 0;
                let mut stale_frames = Vec::new();
                {
                    let m = self.objects.get_mut(&middle).expect("exists");
                    for (pindex, slot) in parent_pages {
                        if let std::collections::btree_map::Entry::Vacant(e) = m.pages.entry(pindex) {
                            e.insert(slot);
                            moved += 1;
                        } else {
                            // The shadow's version wins; the parent's page
                            // is stale.
                            if let PageSlot::Resident { frame, .. } = slot {
                                stale_frames.push(frame);
                            }
                            replaced += 1;
                        }
                    }
                    m.backer = grandparent;
                }
                for frame in stale_frames {
                    self.free_frame(frame);
                }
                self.objects.remove(&parent);
                CollapseReport { freed: parent, survivor: middle, pages_moved: moved, pages_replaced: replaced }
            }
        };
        self.stats.collapses += 1;
        self.stats.collapse_pages_moved += report.pages_moved;
        if self.trace.is_enabled() {
            let depth = self.chain_of(top)?.len() as u64;
            self.trace.instant(
                "vm",
                "vm.collapse",
                &[
                    ("moved", report.pages_moved),
                    ("replaced", report.pages_replaced),
                    ("depth", depth),
                ],
            );
        }
        Ok(Some(report))
    }

    /// Walks the shadow chain under `top`, returning object ids from top
    /// to base (used by serializers and tests).
    pub fn chain_of(&self, top: ObjId) -> Result<Vec<ObjId>, VmError> {
        let mut out = Vec::new();
        let mut cur = Some(top);
        while let Some(id) = cur {
            let obj = self.objects.get(&id).ok_or(VmError::NoSuchObject(id))?;
            out.push(id);
            cur = obj.backer;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Inherit;
    use crate::types::PAGE_SIZE;

    /// One space with an 8-page RW anonymous mapping; writes `n` pages.
    fn setup(n: u64) -> (Vm, SpaceId, u64) {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 8, Prot::RW).unwrap();
        for i in 0..n {
            vm.write(s, a + i * PAGE_SIZE as u64, &[i as u8 + 1]).unwrap();
        }
        (vm, s, a)
    }

    #[test]
    fn system_shadow_freezes_and_redirects() {
        let (mut vm, s, a) = setup(3);
        let top_before = vm.space(s).unwrap().entry_at(a).unwrap().object;
        let pairs = vm.system_shadow(&[s]).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].old_top, top_before);
        let top_after = vm.space(s).unwrap().entry_at(a).unwrap().object;
        assert_eq!(top_after, pairs[0].new_top);
        assert_ne!(top_after, top_before);
        // Lineage is preserved: same logical object.
        assert_eq!(
            vm.object(top_after).unwrap().lineage,
            vm.object(top_before).unwrap().lineage
        );
        // New writes land in the shadow, leaving the frozen copy intact.
        vm.write(s, a, &[0xFF]).unwrap();
        assert_eq!(vm.page_bytes(top_before, 0).unwrap()[0], 1);
        assert_eq!(vm.page_bytes(top_after, 0).unwrap()[0], 0xFF);
    }

    #[test]
    fn system_shadow_preserves_shared_memory() {
        // Two spaces share one object; both get repointed to one shadow.
        let mut vm = Vm::new();
        let s1 = vm.create_space();
        let s2 = vm.create_space();
        let o = vm.create_object(ObjKind::Anonymous, 4);
        vm.ref_object(o).unwrap();
        let a1 = vm.map(s1, None, 4, Prot::RW, o, 0, Inherit::Share).unwrap();
        let a2 = vm.map(s2, None, 4, Prot::RW, o, 0, Inherit::Share).unwrap();
        vm.write(s1, a1, b"shared").unwrap();

        let pairs = vm.system_shadow(&[s1, s2]).unwrap();
        assert_eq!(pairs.len(), 1, "one shadow for the shared object");
        let t1 = vm.space(s1).unwrap().entry_at(a1).unwrap().object;
        let t2 = vm.space(s2).unwrap().entry_at(a2).unwrap().object;
        assert_eq!(t1, t2, "sharing preserved through the shadow");

        // Writes from either side remain mutually visible.
        vm.write(s2, a2, b"SHARED").unwrap();
        let mut buf = [0u8; 6];
        vm.read(s1, a1, &mut buf).unwrap();
        assert_eq!(&buf, b"SHARED");
        // And the frozen copy still holds the checkpoint-time data.
        assert_eq!(&vm.page_bytes(o, 0).unwrap()[0..6], b"shared");
    }

    #[test]
    fn writes_after_shadow_fault_exactly_dirty_pages() {
        let (mut vm, s, a) = setup(4);
        vm.system_shadow(&[s]).unwrap();
        let before = vm.stats;
        // Rewrite 2 of the 4 pages.
        vm.write(s, a, &[9]).unwrap();
        vm.write(s, a + PAGE_SIZE as u64, &[9]).unwrap();
        let delta = vm.stats - before;
        assert_eq!(delta.cow_breaks, 2);
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        assert_eq!(vm.object(top).unwrap().resident_pages(), 2);
    }

    #[test]
    fn shadow_downgrades_exactly_resident_ptes() {
        let (mut vm, s, _a) = setup(5);
        let before = vm.stats;
        vm.system_shadow(&[s]).unwrap();
        let delta = vm.stats - before;
        assert_eq!(delta.pte_downgrades, 5, "one downgrade per dirty page");
        assert_eq!(delta.tlb_shootdowns, 1);
    }

    #[test]
    fn reversed_collapse_moves_dirty_set_only() {
        let (mut vm, s, a) = setup(6); // 6 pages in the base
        vm.system_shadow(&[s]).unwrap(); // S1 on base
        vm.write(s, a, &[7]).unwrap(); // 1 dirty page in S1
        vm.system_shadow(&[s]).unwrap(); // S2 on S1
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        let r = vm.collapse_under(top, CollapseMode::Reversed).unwrap().unwrap();
        assert_eq!(r.pages_moved, 1, "reversed collapse moves the dirty set");
        assert_eq!(r.pages_replaced, 1, "the stale base page is replaced");
        // Data is still correct through the chain.
        let mut buf = [0u8; 1];
        vm.read(s, a, &mut buf).unwrap();
        assert_eq!(buf, [7]);
        assert_eq!(vm.chain_of(top).unwrap().len(), 2, "chain capped at 2");
    }

    #[test]
    fn forward_collapse_moves_parent_residency() {
        let (mut vm, s, a) = setup(6);
        vm.system_shadow(&[s]).unwrap();
        vm.write(s, a, &[7]).unwrap();
        vm.system_shadow(&[s]).unwrap();
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        let r = vm.collapse_under(top, CollapseMode::Forward).unwrap().unwrap();
        // Forward direction pays for the base's 5 unmodified pages.
        assert_eq!(r.pages_moved, 5);
        assert_eq!(r.pages_replaced, 1);
        let mut buf = [0u8; 1];
        vm.read(s, a, &mut buf).unwrap();
        assert_eq!(buf, [7]);
    }

    #[test]
    fn collapse_refuses_referenced_middle() {
        // A fork shadow between checkpoints must block the collapse.
        let (mut vm, s, a) = setup(2);
        vm.system_shadow(&[s]).unwrap();
        let _child = vm.fork_space(s).unwrap(); // adds shadows over the top
        vm.system_shadow(&[s]).unwrap();
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        // The chain under `top` now has a middle with two shadows; the
        // collapse must refuse rather than corrupt the child's view.
        match vm.collapse_under(top, CollapseMode::Reversed) {
            Err(VmError::CannotCollapse(_)) | Ok(None) => {}
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn collapse_none_on_short_chain() {
        let (mut vm, s, a) = setup(1);
        let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
        assert_eq!(vm.collapse_under(top, CollapseMode::Reversed).unwrap(), None);
    }

    #[test]
    fn read_only_entries_are_not_shadowed() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let o = vm.create_object(ObjKind::Anonymous, 2);
        vm.map(s, None, 2, Prot::READ, o, 0, Inherit::Share).unwrap();
        assert!(vm.system_shadow(&[s]).unwrap().is_empty());
    }

    #[test]
    fn excluded_entries_are_not_shadowed() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 2, Prot::RW).unwrap();
        vm.write(s, a, &[1]).unwrap();
        vm.set_sls_exclude(s, a, true).unwrap();
        assert!(vm.system_shadow(&[s]).unwrap().is_empty());
    }

    #[test]
    fn steady_state_chain_stays_bounded() {
        // Checkpoint loop: shadow, dirty, collapse — chain length ≤ 3.
        let (mut vm, s, a) = setup(4);
        for round in 0..10u64 {
            vm.system_shadow(&[s]).unwrap();
            let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
            // Collapse the previous round's flushed shadow.
            match vm.collapse_under(top, CollapseMode::Reversed) {
                Ok(_) => {}
                Err(e) => panic!("round {round}: {e}"),
            }
            vm.write(s, a + (round % 4) * PAGE_SIZE as u64, &[round as u8]).unwrap();
            let chain = vm.chain_of(top).unwrap();
            assert!(chain.len() <= 3, "round {round}: chain {}", chain.len());
        }
        // Memory is still correct.
        let mut buf = [0u8; 1];
        vm.read(s, a + PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(buf, [9], "round 9 wrote page 1");
    }
}
