//! Monotonic operation counters.
//!
//! The VM is clock-free; callers snapshot [`VmStats`], run an operation,
//! and convert the delta into virtual time with the cost model (e.g.
//! `pte_downgrades × pte_cow_ns` is Table 5's linear term).

use std::ops::Sub;

/// Counters for every costed VM operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Slow-path page faults (PTE miss or write to read-only).
    pub faults: u64,
    /// COW breaks: pages copied from an ancestor into the top object.
    pub cow_breaks: u64,
    /// Zero-fill page allocations.
    pub zero_fills: u64,
    /// PTEs installed.
    pub pte_installs: u64,
    /// PTEs write-protected (COW marking during shadowing).
    pub pte_downgrades: u64,
    /// PTEs invalidated (frame freed or mapping removed).
    pub pte_invalidations: u64,
    /// TLB shootdowns issued (per-space invalidations).
    pub tlb_shootdowns: u64,
    /// Frames allocated.
    pub frames_allocated: u64,
    /// Frames freed.
    pub frames_freed: u64,
    /// Pages evicted to the store by the pageout daemon.
    pub pages_evicted: u64,
    /// Shadow objects created (fork + system shadowing).
    pub shadows_created: u64,
    /// System-shadow operations (one per checkpoint).
    pub system_shadows: u64,
    /// Collapse operations completed.
    pub collapses: u64,
    /// Pages moved between objects by collapse operations.
    pub collapse_pages_moved: u64,
}

impl Sub for VmStats {
    type Output = VmStats;

    fn sub(self, rhs: VmStats) -> VmStats {
        VmStats {
            faults: self.faults - rhs.faults,
            cow_breaks: self.cow_breaks - rhs.cow_breaks,
            zero_fills: self.zero_fills - rhs.zero_fills,
            pte_installs: self.pte_installs - rhs.pte_installs,
            pte_downgrades: self.pte_downgrades - rhs.pte_downgrades,
            pte_invalidations: self.pte_invalidations - rhs.pte_invalidations,
            tlb_shootdowns: self.tlb_shootdowns - rhs.tlb_shootdowns,
            frames_allocated: self.frames_allocated - rhs.frames_allocated,
            frames_freed: self.frames_freed - rhs.frames_freed,
            pages_evicted: self.pages_evicted - rhs.pages_evicted,
            shadows_created: self.shadows_created - rhs.shadows_created,
            system_shadows: self.system_shadows - rhs.system_shadows,
            collapses: self.collapses - rhs.collapses,
            collapse_pages_moved: self.collapse_pages_moved - rhs.collapse_pages_moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = VmStats { faults: 10, cow_breaks: 3, ..Default::default() };
        let b = VmStats { faults: 4, cow_breaks: 1, ..Default::default() };
        let d = a - b;
        assert_eq!(d.faults, 6);
        assert_eq!(d.cow_breaks, 2);
        assert_eq!(d.pte_installs, 0);
    }
}
