//! VM objects: mappable collections of pages, possibly shadowing a backer.

use crate::types::{FrameId, Lineage, ObjId, VmError, PAGE_SIZE};
use crate::Vm;
use std::collections::BTreeMap;

/// What kind of memory an object represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjKind {
    /// Anonymous (zero-fill) memory.
    Anonymous,
    /// A memory-mapped vnode; COW for files is handled by the Aurora file
    /// system, so system shadowing skips these (§6).
    Vnode {
        /// The backing vnode's identifier in the POSIX layer.
        vnode: u64,
    },
    /// Device memory (e.g. the HPET page); read-only and never shadowed.
    Device {
        /// Device identifier in the POSIX layer.
        dev: u64,
    },
}

/// A page slot in an object: resident or swapped out to the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageSlot {
    /// Page is resident in the given frame; `dirty` means modified since
    /// it was last flushed to the store.
    Resident {
        /// Backing frame.
        frame: FrameId,
        /// Modified since last flush.
        dirty: bool,
    },
    /// Page content lives only in the object store (swapped out or lazily
    /// restored); faults raise [`VmError::NeedsPage`].
    Swapped,
}

/// A VM object (FreeBSD `vm_object`).
#[derive(Clone, Debug)]
pub struct VmObject {
    /// This object's id.
    pub id: ObjId,
    /// Memory kind.
    pub kind: ObjKind,
    /// Size in pages.
    pub size_pages: u64,
    /// Resident/swapped pages by page index.
    pub pages: BTreeMap<u64, PageSlot>,
    /// Shadow backer: page misses fall through to this object.
    pub backer: Option<ObjId>,
    /// References from map entries plus shadows (`shadow_count` of the
    /// backer side is tracked separately for collapse decisions).
    pub ref_count: u32,
    /// Number of shadows backed by this object.
    pub shadow_count: u32,
    /// Stable identity across system shadowing (see [`Lineage`]).
    pub lineage: Lineage,
    /// True for shadows created by [`Vm::system_shadow`]; used by the
    /// orchestrator to tell checkpoint shadows from fork shadows.
    pub system_shadow: bool,
}

impl VmObject {
    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.pages
            .values()
            .filter(|s| matches!(s, PageSlot::Resident { .. }))
            .count() as u64
    }

    /// Number of resident dirty pages.
    pub fn dirty_pages(&self) -> u64 {
        self.pages
            .values()
            .filter(|s| matches!(s, PageSlot::Resident { dirty: true, .. }))
            .count() as u64
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_pages * PAGE_SIZE as u64
    }
}

impl Vm {
    /// Creates a VM object of `size_pages` pages with a fresh lineage and
    /// a reference count of 1 (held by the caller).
    pub fn create_object(&mut self, kind: ObjKind, size_pages: u64) -> ObjId {
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        let lineage = Lineage(self.next_lineage);
        self.next_lineage += 1;
        self.objects.insert(
            id,
            VmObject {
                id,
                kind,
                size_pages,
                pages: BTreeMap::new(),
                backer: None,
                ref_count: 1,
                shadow_count: 0,
                lineage,
                system_shadow: false,
            },
        );
        id
    }

    /// Increments an object's reference count.
    pub fn ref_object(&mut self, id: ObjId) -> Result<(), VmError> {
        self.objects.get_mut(&id).ok_or(VmError::NoSuchObject(id))?.ref_count += 1;
        Ok(())
    }

    /// Decrements an object's reference count, destroying it (and
    /// unreferencing its backer) when it reaches zero.
    pub fn unref_object(&mut self, id: ObjId) -> Result<(), VmError> {
        let obj = self.objects.get_mut(&id).ok_or(VmError::NoSuchObject(id))?;
        assert!(obj.ref_count > 0, "unref of dead object");
        obj.ref_count -= 1;
        if obj.ref_count == 0 && obj.shadow_count == 0 {
            self.destroy_object(id)?;
        }
        Ok(())
    }

    /// Destroys an object: frees every resident frame (invalidating PTEs
    /// through the pv table) and unreferences the backer.
    fn destroy_object(&mut self, id: ObjId) -> Result<(), VmError> {
        let obj = self.objects.remove(&id).ok_or(VmError::NoSuchObject(id))?;
        for slot in obj.pages.values() {
            if let PageSlot::Resident { frame, .. } = slot {
                self.free_frame(*frame);
            }
        }
        if let Some(backer) = obj.backer {
            if let Some(b) = self.objects.get_mut(&backer) {
                assert!(b.shadow_count > 0, "backer shadow_count underflow");
                b.shadow_count -= 1;
                if b.ref_count == 0 && b.shadow_count == 0 {
                    self.destroy_object(backer)?;
                }
            }
        }
        Ok(())
    }

    /// Installs page content into an object (used by the pager to bring a
    /// swapped page back, and by restore to populate memory).
    pub fn install_page(
        &mut self,
        obj: ObjId,
        pindex: u64,
        data: crate::types::PageData,
        dirty: bool,
    ) -> Result<(), VmError> {
        let o = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?;
        if pindex >= o.size_pages {
            return Err(VmError::BadRange(pindex * PAGE_SIZE as u64));
        }
        if let Some(PageSlot::Resident { frame, .. }) = o.pages.get(&pindex).copied() {
            self.free_frame(frame);
        }
        let frame = self.alloc_frame(data);
        let o = self.objects.get_mut(&obj).expect("checked above");
        o.pages.insert(pindex, PageSlot::Resident { frame, dirty });
        Ok(())
    }

    /// Marks a page as swapped out, freeing its frame. The page must be
    /// clean (its content already persisted); evicting a dirty page is a
    /// caller bug because its content would be lost.
    pub fn evict_page(&mut self, obj: ObjId, pindex: u64) -> Result<(), VmError> {
        let o = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?;
        match o.pages.get(&pindex) {
            Some(PageSlot::Resident { frame, dirty: false }) => {
                let frame = *frame;
                self.free_frame(frame);
                let o = self.objects.get_mut(&obj).expect("checked above");
                o.pages.insert(pindex, PageSlot::Swapped);
                self.stats.pages_evicted += 1;
                Ok(())
            }
            Some(PageSlot::Resident { dirty: true, .. }) => {
                Err(VmError::BadRange(pindex * PAGE_SIZE as u64))
            }
            _ => Err(VmError::NeedsPage { obj, pindex }),
        }
    }

    /// Marks a page slot as swapped without requiring it to have been
    /// resident — the lazy-restore path (§6, "lazy restores where pages
    /// are brought in lazily"): the first touch faults it in from the
    /// store.
    pub fn mark_swapped(&mut self, obj: ObjId, pindex: u64) -> Result<(), VmError> {
        let o = self.objects.get_mut(&obj).ok_or(VmError::NoSuchObject(obj))?;
        if pindex >= o.size_pages {
            return Err(VmError::BadRange(pindex * PAGE_SIZE as u64));
        }
        if let Some(PageSlot::Resident { frame, .. }) = o.pages.insert(pindex, PageSlot::Swapped) {
            self.free_frame(frame);
        }
        Ok(())
    }

    /// Links `child` to shadow `parent` (restore path: the serialized
    /// object hierarchy is rebuilt bottom-up). The child must not already
    /// have a backer.
    pub fn set_backer(&mut self, child: ObjId, parent: ObjId) -> Result<(), VmError> {
        if !self.objects.contains_key(&parent) {
            return Err(VmError::NoSuchObject(parent));
        }
        let c = self.objects.get_mut(&child).ok_or(VmError::NoSuchObject(child))?;
        assert!(c.backer.is_none(), "set_backer on an already-linked object");
        c.backer = Some(parent);
        self.objects.get_mut(&parent).expect("checked above").shadow_count += 1;
        Ok(())
    }

    /// Marks a resident page clean (called by the flusher once the page's
    /// content is durable in the store).
    pub fn mark_clean(&mut self, obj: ObjId, pindex: u64) -> Result<(), VmError> {
        let o = self.objects.get_mut(&obj).ok_or(VmError::NoSuchObject(obj))?;
        if let Some(PageSlot::Resident { dirty, .. }) = o.pages.get_mut(&pindex) {
            *dirty = false;
            Ok(())
        } else {
            Err(VmError::NeedsPage { obj, pindex })
        }
    }

    /// Re-marks a resident page dirty — the checkpoint abort path: a
    /// page cleaned by a flush whose epoch was rolled back no longer has
    /// a durable copy, so it must flush again next checkpoint.
    pub fn mark_dirty(&mut self, obj: ObjId, pindex: u64) -> Result<(), VmError> {
        let o = self.objects.get_mut(&obj).ok_or(VmError::NoSuchObject(obj))?;
        if let Some(PageSlot::Resident { dirty, .. }) = o.pages.get_mut(&pindex) {
            *dirty = true;
            Ok(())
        } else {
            Err(VmError::NeedsPage { obj, pindex })
        }
    }

    /// Reads a resident page's bytes (used by the checkpoint flusher).
    pub fn page_bytes(&self, obj: ObjId, pindex: u64) -> Result<&[u8; PAGE_SIZE], VmError> {
        let o = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?;
        match o.pages.get(&pindex) {
            Some(PageSlot::Resident { frame, .. }) => {
                Ok(self.frames.get(frame).expect("resident frame exists").bytes())
            }
            _ => Err(VmError::NeedsPage { obj, pindex }),
        }
    }

    /// Hands out a shared ref to a resident page's frame (the flusher's
    /// path into the store: the frame travels by refcount, never by copy).
    pub fn page_ref(&self, obj: ObjId, pindex: u64) -> Result<crate::types::PageData, VmError> {
        let o = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?;
        match o.pages.get(&pindex) {
            Some(PageSlot::Resident { frame, .. }) => {
                Ok(self.frames.get(frame).expect("resident frame exists").clone())
            }
            _ => Err(VmError::NeedsPage { obj, pindex }),
        }
    }

    /// The nearest resident copy of `pindex` in the object's *backer*
    /// chain — the page's pre-COW content. The checkpoint flusher diffs
    /// a dirty page against this parent-shadow copy to emit a sub-page
    /// redo record instead of a full image. `None` when no ancestor
    /// holds the page resident (freshly installed page, or the parent
    /// copy was swapped out).
    pub fn backer_page_ref(
        &self,
        obj: ObjId,
        pindex: u64,
    ) -> Result<Option<crate::types::PageData>, VmError> {
        let mut cur = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?.backer;
        while let Some(b) = cur {
            let o = self.objects.get(&b).ok_or(VmError::NoSuchObject(b))?;
            if let Some(PageSlot::Resident { frame, .. }) = o.pages.get(&pindex) {
                return Ok(Some(self.frames.get(frame).expect("resident frame exists").clone()));
            }
            cur = o.backer;
        }
        Ok(None)
    }

    /// Iterates over the resident pages of an object: `(pindex, dirty)`.
    pub fn resident_page_indices(&self, obj: ObjId) -> Result<Vec<(u64, bool)>, VmError> {
        let o = self.objects.get(&obj).ok_or(VmError::NoSuchObject(obj))?;
        Ok(o.pages
            .iter()
            .filter_map(|(&pi, s)| match s {
                PageSlot::Resident { dirty, .. } => Some((pi, *dirty)),
                PageSlot::Swapped => None,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::zero_page;

    #[test]
    fn create_and_unref_destroys() {
        let mut vm = Vm::new();
        let o = vm.create_object(ObjKind::Anonymous, 4);
        assert_eq!(vm.object_count(), 1);
        vm.unref_object(o).unwrap();
        assert_eq!(vm.object_count(), 0);
    }

    #[test]
    fn install_and_read_page() {
        let mut vm = Vm::new();
        let o = vm.create_object(ObjKind::Anonymous, 4);
        let mut p = zero_page();
        vm.arena.make_mut(&mut p)[0] = 0xAB;
        vm.install_page(o, 2, p, true).unwrap();
        assert_eq!(vm.page_bytes(o, 2).unwrap()[0], 0xAB);
        assert_eq!(vm.object(o).unwrap().dirty_pages(), 1);
    }

    #[test]
    fn install_out_of_range_rejected() {
        let mut vm = Vm::new();
        let o = vm.create_object(ObjKind::Anonymous, 2);
        assert!(vm.install_page(o, 2, zero_page(), false).is_err());
    }

    #[test]
    fn evict_requires_clean() {
        let mut vm = Vm::new();
        let o = vm.create_object(ObjKind::Anonymous, 4);
        vm.install_page(o, 0, zero_page(), true).unwrap();
        assert!(vm.evict_page(o, 0).is_err(), "dirty page must not evict");
        vm.mark_clean(o, 0).unwrap();
        vm.evict_page(o, 0).unwrap();
        assert!(matches!(vm.page_bytes(o, 0), Err(VmError::NeedsPage { .. })));
        assert_eq!(vm.resident_frames(), 0);
    }

    #[test]
    fn reinstall_replaces_frame() {
        let mut vm = Vm::new();
        let o = vm.create_object(ObjKind::Anonymous, 1);
        vm.install_page(o, 0, zero_page(), false).unwrap();
        let mut p = zero_page();
        vm.arena.make_mut(&mut p)[1] = 7;
        vm.install_page(o, 0, p, false).unwrap();
        assert_eq!(vm.resident_frames(), 1, "old frame must be freed");
        assert_eq!(vm.page_bytes(o, 0).unwrap()[1], 7);
    }
}
