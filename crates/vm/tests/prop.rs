//! Property tests: the VM under random interleavings of writes, forks,
//! system shadowing, and collapses must behave exactly like a flat
//! per-space memory model.
//!
//! This is the crucial invariant behind the paper's correctness claim for
//! system shadowing (§6): shadow chains and collapse are pure
//! optimizations — no interleaving may ever change the bytes a process
//! reads.

use aurora_sim::rng::{DetRng, Rng};
use aurora_vm::{CollapseMode, Prot, SpaceId, Vm, PAGE_SIZE};

const PAGES: u64 = 16;
const BYTES: usize = PAGES as usize * PAGE_SIZE;

#[derive(Clone, Debug)]
enum Op {
    /// Write `val` over `[off, off+len)` in space `who`.
    Write { who: usize, off: usize, len: usize, val: u8 },
    /// Fork space `who` (COW).
    Fork { who: usize },
    /// Checkpoint: shadow every space in the group.
    SystemShadow,
    /// Retire flushed shadows in the given direction.
    Collapse { forward: bool },
}

fn gen_op(rng: &mut DetRng) -> Op {
    // Weights 6/1/2/2, matching the original generator.
    match rng.gen_range(0..11) {
        0..=5 => Op::Write {
            who: rng.gen_range(0..64) as usize,
            off: rng.gen_range(0..(BYTES - 64) as u64) as usize,
            len: rng.gen_range(1..64) as usize,
            val: rng.next_u64() as u8,
        },
        6 => Op::Fork { who: rng.gen_range(0..64) as usize },
        7 | 8 => Op::SystemShadow,
        _ => Op::Collapse { forward: rng.gen_bool(0.5) },
    }
}

/// Runs the ops against the VM and a flat model, checking reads at the
/// end of every step.
fn run(ops: Vec<Op>) {
    let mut vm = Vm::new();
    let base_space = vm.create_space();
    let addr = vm.mmap_anon(base_space, PAGES, Prot::RW).unwrap();

    let mut spaces: Vec<SpaceId> = vec![base_space];
    let mut models: Vec<Vec<u8>> = vec![vec![0u8; BYTES]];

    for op in ops {
        match op {
            Op::Write { who, off, len, val } => {
                let who = who % spaces.len();
                let len = len.min(BYTES - off);
                let data = vec![val; len];
                vm.write(spaces[who], addr + off as u64, &data).unwrap();
                models[who][off..off + len].fill(val);
            }
            Op::Fork { who } => {
                if spaces.len() >= 6 {
                    continue; // bound the state space
                }
                let who = who % spaces.len();
                let child = vm.fork_space(spaces[who]).unwrap();
                let model = models[who].clone();
                spaces.push(child);
                models.push(model);
            }
            Op::SystemShadow => {
                vm.system_shadow(&spaces).unwrap();
            }
            Op::Collapse { forward } => {
                let mode = if forward { CollapseMode::Forward } else { CollapseMode::Reversed };
                for &s in &spaces {
                    let top = vm.space(s).unwrap().entry_at(addr).unwrap().object;
                    // Refusals (shared chains) are fine; corruption is not.
                    let _ = vm.collapse_under(top, mode);
                }
            }
        }
        // Verify a sample of each space after every operation.
        for (i, &s) in spaces.iter().enumerate() {
            let mut buf = [0u8; 97];
            for probe in [0usize, BYTES / 3, BYTES - 97] {
                vm.read(s, addr + probe as u64, &mut buf).unwrap();
                assert_eq!(
                    &buf[..],
                    &models[i][probe..probe + 97],
                    "space {i} diverged at offset {probe}"
                );
            }
        }
    }

    // Full final sweep of every byte.
    for (i, &s) in spaces.iter().enumerate() {
        let mut buf = vec![0u8; BYTES];
        vm.read(s, addr, &mut buf).unwrap();
        assert_eq!(buf, models[i], "space {i} diverged in final sweep");
    }
}

#[test]
fn vm_matches_flat_model() {
    let mut rng = DetRng::seed_from_u64(0x5105);
    for _case in 0..64 {
        let ops: Vec<Op> = (0..rng.gen_range(1..40)).map(|_| gen_op(&mut rng)).collect();
        run(ops);
    }
}

/// A deterministic regression of the shape proptest explores, kept as a
/// fast smoke test.
#[test]
fn checkpoint_fork_checkpoint_sequence() {
    run(vec![
        Op::Write { who: 0, off: 100, len: 50, val: 1 },
        Op::SystemShadow,
        Op::Fork { who: 0 },
        Op::Write { who: 0, off: 100, len: 50, val: 2 },
        Op::Write { who: 1, off: 120, len: 50, val: 3 },
        Op::SystemShadow,
        Op::Collapse { forward: false },
        Op::Write { who: 1, off: 0, len: 64, val: 4 },
        Op::SystemShadow,
        Op::Collapse { forward: true },
    ]);
}

/// Frames must never leak across shadow/collapse cycles: residency is
/// bounded by what the spaces can actually reach.
#[test]
fn no_frame_leak_across_cycles() {
    let mut vm = Vm::new();
    let s = vm.create_space();
    let addr = vm.mmap_anon(s, PAGES, Prot::RW).unwrap();
    for round in 0..50u64 {
        vm.write(s, addr + (round % PAGES) * PAGE_SIZE as u64, &[round as u8]).unwrap();
        vm.system_shadow(&[s]).unwrap();
        let top = vm.space(s).unwrap().entry_at(addr).unwrap().object;
        let _ = vm.collapse_under(top, CollapseMode::Reversed);
    }
    // At most: base residency (≤ PAGES) + flushing shadow (≤ PAGES) +
    // accumulating shadow (≤ PAGES).
    assert!(
        vm.resident_frames() as u64 <= 3 * PAGES,
        "leaked frames: {}",
        vm.resident_frames()
    );
    assert_eq!(vm.stats.frames_allocated - vm.stats.frames_freed, vm.resident_frames() as u64);
}
