//! Property tests (frame arena): sharing never aliases a mutable page.
//!
//! The unified COW frame arena lets the frozen checkpoint epoch, forked
//! children, and the live space all point at the *same* 4 KiB frames.
//! That is only sound if no write ever lands on a frame someone else can
//! still see: a write after the COW mark must copy, never mutate in
//! place. These tests capture `PageRef`s to frozen frames (freezing the
//! expected bytes alongside) and then run random interleavings of
//! fork / write / system-shadow / collapse — if any write mutated a
//! shared frame in place, a captured ref would see its bytes change.

use aurora_sim::rng::{DetRng, Rng};
use aurora_vm::{CollapseMode, PageRef, Prot, SpaceId, Vm, PAGE_SIZE};

const PAGES: u64 = 8;
const BYTES: usize = PAGES as usize * PAGE_SIZE;

#[derive(Clone, Debug)]
enum Op {
    /// Write `val` over `[off, off+len)` in space `who`.
    Write { who: usize, off: usize, len: usize, val: u8 },
    /// Fork space `who` (COW).
    Fork { who: usize },
    /// Checkpoint: shadow every space and capture refs to the frozen
    /// epoch's frames.
    Checkpoint,
    /// Retire flushed shadows.
    Collapse { forward: bool },
}

fn gen_op(rng: &mut DetRng) -> Op {
    match rng.gen_range(0..10) {
        0..=4 => Op::Write {
            who: rng.gen_range(0..64) as usize,
            off: rng.gen_range(0..(BYTES - 64) as u64) as usize,
            len: rng.gen_range(1..64) as usize,
            val: rng.next_u64() as u8,
        },
        5 => Op::Fork { who: rng.gen_range(0..64) as usize },
        6 | 7 => Op::Checkpoint,
        _ => Op::Collapse { forward: rng.gen_bool(0.5) },
    }
}

/// A frame captured at shadow time: the ref we hold plus the bytes it
/// held when it was frozen. Holding the ref keeps the frame shared, so
/// any in-place write anywhere would be visible here.
struct Frozen {
    page: PageRef,
    bytes: Vec<u8>,
}

fn run(ops: Vec<Op>) {
    let mut vm = Vm::new();
    let base = vm.create_space();
    let addr = vm.mmap_anon(base, PAGES, Prot::RW).unwrap();

    let mut spaces: Vec<SpaceId> = vec![base];
    let mut models: Vec<Vec<u8>> = vec![vec![0u8; BYTES]];
    let mut frozen: Vec<Frozen> = Vec::new();

    for op in ops {
        match op {
            Op::Write { who, off, len, val } => {
                let who = who % spaces.len();
                let len = len.min(BYTES - off);
                vm.write(spaces[who], addr + off as u64, &vec![val; len]).unwrap();
                models[who][off..off + len].fill(val);
            }
            Op::Fork { who } => {
                if spaces.len() >= 5 {
                    continue; // bound the state space
                }
                let who = who % spaces.len();
                let child = vm.fork_space(spaces[who]).unwrap();
                let model = models[who].clone();
                spaces.push(child);
                models.push(model);
            }
            Op::Checkpoint => {
                for pair in vm.system_shadow(&spaces).unwrap() {
                    for (pi, _) in vm.resident_page_indices(pair.old_top).unwrap() {
                        let page = vm.page_ref(pair.old_top, pi).unwrap();
                        let bytes = page.bytes().to_vec();
                        frozen.push(Frozen { page, bytes });
                    }
                }
                // Bound memory: only the most recent captures matter for
                // catching an in-place write.
                if frozen.len() > 256 {
                    frozen.drain(..frozen.len() - 256);
                }
            }
            Op::Collapse { forward } => {
                let mode = if forward { CollapseMode::Forward } else { CollapseMode::Reversed };
                for &s in &spaces {
                    let top = vm.space(s).unwrap().entry_at(addr).unwrap().object;
                    let _ = vm.collapse_under(top, mode);
                }
            }
        }

        // The frozen epoch is immutable: no write may reach a captured
        // frame. (Every captured frame is shared — we hold a ref — so a
        // write through the VM must have COW-copied, not mutated.)
        for (i, f) in frozen.iter().enumerate() {
            assert_eq!(
                f.page.bytes()[..],
                f.bytes[..],
                "frozen frame {i} mutated in place after the COW mark"
            );
        }
        // Sibling isolation: each space still matches its own flat model.
        for (i, &s) in spaces.iter().enumerate() {
            let mut buf = vec![0u8; BYTES];
            vm.read(s, addr, &mut buf).unwrap();
            assert_eq!(buf, models[i], "space {i} diverged");
        }
    }
}

#[test]
fn shared_frames_are_never_mutated_in_place() {
    let mut rng = DetRng::seed_from_u64(0xF4A3E5);
    for _case in 0..48 {
        let ops: Vec<Op> = (0..rng.gen_range(1..32)).map(|_| gen_op(&mut rng)).collect();
        run(ops);
    }
}

/// Deterministic core of the property: a write after the COW mark is
/// invisible to the frozen epoch and to forked siblings.
#[test]
fn write_after_cow_mark_is_invisible_to_frozen_epoch_and_siblings() {
    let mut vm = Vm::new();
    let parent = vm.create_space();
    let addr = vm.mmap_anon(parent, PAGES, Prot::RW).unwrap();
    vm.write(parent, addr, &[0xAA; 128]).unwrap();

    // Freeze, then fork a sibling off the resumed space.
    let pairs = vm.system_shadow(&[parent]).unwrap();
    let frozen = vm.page_ref(pairs[0].old_top, 0).unwrap();
    let sibling = vm.fork_space(parent).unwrap();

    // At this point all three views share the one frame.
    let before = vm.frame_gauges().copies_broken;
    assert!(frozen.ref_count() >= 2, "frozen frame is shared");

    // The parent writes: the COW break copies, the others keep 0xAA.
    vm.write(parent, addr, &[0xBB; 128]).unwrap();
    assert!(frozen.bytes()[..128].iter().all(|&b| b == 0xAA), "frozen epoch saw the write");
    let mut buf = [0u8; 128];
    vm.read(sibling, addr, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xAA), "sibling saw the write");
    vm.read(parent, addr, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xBB), "parent keeps its own write");
    assert_eq!(vm.frame_gauges().copies_broken, before + 1, "exactly one COW copy");
}
