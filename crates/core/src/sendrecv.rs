//! `sls send` / `sls recv` (Table 2): serialize a checkpoint to a byte
//! stream and import it on another machine — the building block for
//! migration and high availability (§10).

use crate::restore::{RestoreMode, RestoreReport};
use crate::{Sls, SlsError};
use aurora_objstore::{ObjectKind, Oid, RedoWrite, PAGE};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::fnv1a;

const STREAM_TAG: u16 = 0x5354;

/// Stream format version. v1 carries full page images; v2 delta streams
/// carry per-page redo records (offset/payload/page-checksum), so a
/// sealed epoch travels as exactly the records the leader logged —
/// delta compression on the wire. Receivers accept both.
///
/// The v2 header additionally carries a trailing **provenance context**
/// — the origin node id and the virtual send time — so a receiver can
/// attribute the frame to its origin hop in the cross-node causal
/// graph. The context rides *after* the original header fields inside
/// the length-prefixed record body, so decoders that predate it (and
/// streams that omit it) remain mutually compatible.
const STREAM_VERSION: u16 = 2;

/// What a delta stream carried — the replication/migration layers size
/// rounds and convergence checks on these.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaStats {
    /// Source epoch the stream describes (the `to` side).
    pub epoch: u64,
    /// Objects with any change in the window.
    pub objects: u64,
    /// Pages carried.
    pub pages: u64,
    /// Encoded stream length.
    pub bytes: u64,
}

/// What applying a received stream produced.
#[derive(Clone, Debug)]
pub struct ApplyReport {
    /// Manifest objects seen in the stream (restore entry points).
    pub manifests: Vec<Oid>,
    /// The source-side epoch stamped in the stream header.
    pub src_epoch: u64,
    /// Origin node id from the v2 header's provenance context (0 for v1
    /// streams and v2 streams that predate the context).
    pub src_node: u64,
    /// Virtual time the origin encoded the stream (0 when absent).
    pub sent_at: u64,
    /// The local epoch the apply committed as.
    pub local_epoch: u64,
    /// Virtual time at which the local commit is durable — the floor a
    /// replication follower acks at.
    pub durable_at: u64,
    /// Pages written.
    pub pages: u64,
}

impl Sls {
    /// Serializes the full image at `epoch` into a self-contained stream:
    /// every object's kind, metadata, and pages.
    pub fn send_stream(&self, epoch: u64) -> Result<Vec<u8>, SlsError> {
        let mut store = self.store.lock();
        let oids = store.objects_at(epoch)?;
        let mut e = Encoder::new();
        e.record(STREAM_TAG, 1, |e| {
            e.u64(epoch);
            e.u32(oids.len() as u32);
        });
        for oid in oids {
            let kind = store.kind(oid)?;
            let meta = store.meta_at(oid, epoch).map(|m| m.to_vec()).unwrap_or_default();
            let pages = store.pages_at(oid, epoch)?;
            let mut body = Encoder::new();
            body.u64(oid.0);
            body.u16(kind.to_raw());
            body.bytes(&meta);
            body.u32(pages.len() as u32);
            for pi in pages {
                let data = store.read_page(oid, pi, epoch)?;
                body.u64(pi);
                body.raw(data.bytes());
            }
            let bytes = body.finish_vec();
            e.u32(bytes.len() as u32);
            e.raw(&bytes);
        }
        let out = e.finish_vec();
        let trace = self.kernel.charge.trace();
        if trace.is_enabled() {
            trace.instant(
                "core",
                "sendrecv.send",
                &[("epoch", epoch), ("bytes", out.len() as u64)],
            );
        }
        Ok(out)
    }

    /// Imports a stream produced by [`send_stream`](Sls::send_stream)
    /// into this machine's store (same OIDs) and commits it. Returns the
    /// manifests found, ready for [`Sls::restore_image`].
    pub fn recv_stream(&mut self, stream: &[u8]) -> Result<Vec<Oid>, SlsError> {
        Ok(self.recv_apply(stream, 0)?.manifests)
    }

    /// Imports a full or delta stream, committing it under `group`'s
    /// draft so the commit record chains on that group's durable floor —
    /// a replication follower applying a leader's sealed epoch commits a
    /// record attributed to the same consistency group. Returns what was
    /// applied, including the local commit's `durable_at` (the follower's
    /// ack floor).
    pub fn recv_apply(&mut self, stream: &[u8], group: u64) -> Result<ApplyReport, SlsError> {
        let mut manifests = Vec::new();
        let mut pages = 0u64;
        let mut d = Decoder::new(stream);
        let (v, mut hdr) = d.record(STREAM_TAG, STREAM_VERSION)?;
        let src_epoch = hdr.u64()?;
        let count = hdr.u32()?;
        // Trailing provenance context (v2, optional): origin node + send
        // time. Older streams simply end here.
        let src_node = if hdr.remaining() >= 8 { hdr.u64()? } else { 0 };
        let sent_at = if hdr.remaining() >= 8 { hdr.u64()? } else { 0 };
        let mut store = self.store.lock();
        let prev_staging = store.staging();
        store.stage_for(group);
        for _ in 0..count {
            let len = d.u32()? as usize;
            let mut body = Decoder::new(d.raw(len)?);
            let oid = Oid(body.u64()?);
            let kind = ObjectKind::from_raw(body.u16()?)?;
            let meta = body.bytes()?.to_vec();
            store.create_object(oid, kind)?;
            if !meta.is_empty() {
                store.set_meta(oid, &meta)?;
            }
            let npages = body.u32()?;
            if v < 2 {
                let mut batch: Vec<(u64, aurora_objstore::PageRef)> =
                    Vec::with_capacity(npages as usize);
                for _ in 0..npages {
                    let pi = body.u64()?;
                    let page: &[u8; PAGE] =
                        body.raw(PAGE)?.try_into().expect("exactly one page");
                    batch.push((pi, store.arena().alloc(*page)));
                }
                pages += batch.len() as u64;
                if !batch.is_empty() {
                    // One charged bulk write per imported object.
                    store.write_pages(oid, &batch)?;
                }
            } else {
                // v2: per-page redo records. Replay them onto the local
                // copy of the page (a follower in sync through the
                // stream's `from` epoch holds the same base the sender
                // chained on), verifying the materialized-page checksum
                // at every record, then log the result locally as one
                // combined redo write.
                let mut batch: Vec<RedoWrite> = Vec::with_capacity(npages as usize);
                for _ in 0..npages {
                    let pi = body.u64()?;
                    let nrecs = body.u32()?;
                    let mut buf = [0u8; PAGE];
                    let mut base_csum = 0u64;
                    let mut span: Option<(usize, usize)> = None; // (off, end)
                    let mut any_full = false;
                    for r in 0..nrecs {
                        let full = body.bool()?;
                        let offset = body.u32()? as usize;
                        let payload = body.bytes()?;
                        let page_csum = body.u64()?;
                        if full {
                            if payload.len() != PAGE {
                                return Err(SlsError::BadImage("short full record in stream"));
                            }
                            buf.copy_from_slice(payload);
                            any_full = true;
                        } else {
                            if r == 0 {
                                // Deltas only: seed with the local copy.
                                let base = store
                                    .last_epoch()
                                    .and_then(|e| store.read_page(oid, pi, e).ok());
                                if let Some(p) = &base {
                                    buf.copy_from_slice(p.bytes());
                                }
                                base_csum = fnv1a(&buf);
                            }
                            let end = offset + payload.len();
                            if end > PAGE {
                                return Err(SlsError::BadImage("record overruns page"));
                            }
                            buf[offset..end].copy_from_slice(payload);
                            span = Some(match span {
                                None => (offset, end),
                                Some((o, e)) => (o.min(offset), e.max(end)),
                            });
                        }
                        if fnv1a(&buf) != page_csum {
                            return Err(SlsError::BadImage("delta stream page checksum"));
                        }
                    }
                    if nrecs == 0 {
                        continue;
                    }
                    let page = store.arena().alloc(buf);
                    let delta = match (any_full, span) {
                        // The stream began at a full image: log a full
                        // image locally too (nothing older to chain on).
                        (true, _) => None,
                        (false, Some((o, e))) => Some((o as u32, buf[o..e].to_vec())),
                        (false, None) => None,
                    };
                    batch.push(RedoWrite { pindex: pi, page, delta, base_csum });
                }
                pages += batch.len() as u64;
                if !batch.is_empty() {
                    store.append_redo(oid, &batch)?;
                }
            }
            if kind == ObjectKind::Posix(crate::oidmap::tag::MANIFEST) {
                manifests.push(oid);
            }
        }
        let info = store.commit_for(group)?;
        store.barrier(info);
        store.stage_for(prev_staging);
        drop(store);
        let trace = self.kernel.charge.trace();
        if trace.is_enabled() {
            trace.instant(
                "core",
                "sendrecv.recv",
                &[
                    ("epoch", info.epoch),
                    ("src_epoch", src_epoch),
                    ("src_node", src_node),
                    ("sent_at", sent_at),
                    ("group", group),
                    ("objects", count as u64),
                    ("bytes", stream.len() as u64),
                    ("durable_at", info.durable_at),
                ],
            );
        }
        Ok(ApplyReport {
            manifests,
            src_epoch,
            src_node,
            sent_at,
            local_epoch: info.epoch,
            durable_at: info.durable_at,
            pages,
        })
    }

    /// Serializes only the changes between two epochs: the incremental
    /// stream `sls send` feeds a standby for live migration or high
    /// availability (Table 2, §10). Objects/pages unchanged since
    /// `from_epoch` are skipped.
    pub fn send_delta(&self, from_epoch: u64, to_epoch: u64) -> Result<Vec<u8>, SlsError> {
        Ok(self.send_delta_stats(from_epoch, to_epoch)?.0)
    }

    /// [`send_delta`](Sls::send_delta) plus what the stream carried —
    /// the replication and migration layers size rounds on the stats.
    pub fn send_delta_stats(
        &self,
        from_epoch: u64,
        to_epoch: u64,
    ) -> Result<(Vec<u8>, DeltaStats), SlsError> {
        let mut store = self.store.lock();
        let oids = store.objects_at(to_epoch)?;
        let mut emitted = 0u32;
        let mut total_pages = 0u64;
        let mut bodies = Encoder::new();
        for oid in oids {
            let kind = store.kind(oid)?;
            // Pages that changed in (from, to].
            let pages: Vec<u64> = store
                .pages_at(oid, to_epoch)?
                .into_iter()
                .filter(|&pi| {
                    // Changed iff its newest version ≤ to is > from.
                    match store.pages_at(oid, from_epoch) {
                        Ok(old) if old.contains(&pi) => {
                            // Compare content versions via read: cheaper —
                            // version epochs — use read only when needed.
                            store.page_version_epoch(oid, pi, to_epoch).unwrap_or(0) > from_epoch
                        }
                        _ => true,
                    }
                })
                .collect();
            let meta_changed = store.meta_version_epoch(oid, to_epoch).unwrap_or(0) > from_epoch;
            if pages.is_empty() && !meta_changed {
                continue;
            }
            let meta =
                store.meta_at(oid, to_epoch).map(|m| m.to_vec()).unwrap_or_default();
            let mut body = Encoder::new();
            body.u64(oid.0);
            body.u16(kind.to_raw());
            body.bytes(&meta);
            body.u32(pages.len() as u32);
            total_pages += pages.len() as u64;
            for pi in pages {
                // The page's redo records in (from, to] — exactly the
                // delta the leader logged, replayed by the receiver onto
                // its own copy of the page.
                let recs = store.page_records_in(oid, pi, from_epoch, to_epoch)?;
                body.u64(pi);
                body.u32(recs.len() as u32);
                for r in &recs {
                    body.bool(r.full);
                    body.u32(r.offset);
                    body.bytes(&r.payload);
                    body.u64(r.page_csum);
                }
            }
            let bytes = body.finish_vec();
            bodies.u32(bytes.len() as u32);
            bodies.raw(&bytes);
            emitted += 1;
        }
        // Rewrite the header with the emitted count, stamping the
        // provenance context: who encoded this stream, and when.
        let origin = self.node_id;
        let sent_at = self.kernel.charge.clock().now();
        let mut out = Encoder::new();
        out.record(STREAM_TAG, STREAM_VERSION, |e| {
            e.u64(to_epoch);
            e.u32(emitted);
            e.u64(origin);
            e.u64(sent_at);
        });
        out.raw(&bodies.finish_vec());
        let stream = out.finish_vec();
        let stats = DeltaStats {
            epoch: to_epoch,
            objects: emitted as u64,
            pages: total_pages,
            bytes: stream.len() as u64,
        };
        Ok((stream, stats))
    }

    /// Convenience: migrate the image at `epoch` into `target`, restoring
    /// it there (`sls send | sls recv` + restore).
    pub fn migrate_to(
        &self,
        target: &mut Sls,
        epoch: u64,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        let stream = self.send_stream(epoch)?;
        let manifests = target.recv_stream(&stream)?;
        let manifest = *manifests.first().ok_or(SlsError::BadImage("no manifest in stream"))?;
        let epoch = target
            .store
            .lock()
            .last_epoch()
            .ok_or(SlsError::BadImage("empty target store"))?;
        target.restore_image(manifest, epoch, mode)
    }
}
