//! The SLS error type.

use crate::GroupId;
use aurora_objstore::StoreError;
use aurora_posix::KError;
use aurora_sim::codec::CodecError;
use aurora_vm::VmError;
use std::fmt;

/// Errors from SLS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlsError {
    /// Unknown consistency group.
    NoSuchGroup(GroupId),
    /// The group has no checkpoint yet.
    NoCheckpoint(GroupId),
    /// A checkpoint image failed validation during restore.
    BadImage(&'static str),
    /// Kernel-layer failure.
    Kernel(KError),
    /// Store-layer failure.
    Store(StoreError),
    /// VM-layer failure.
    Vm(VmError),
    /// Codec failure.
    Codec(CodecError),
    /// The group's circuit breaker is open after repeated checkpoint
    /// failures: the flush stage is tripped open and checkpoints are
    /// skipped (reported, not silently dropped) until the cooldown
    /// expires at `until_ns`.
    BreakerOpen {
        /// The group whose breaker tripped.
        group: u64,
        /// Virtual time at which the breaker closes again.
        until_ns: u64,
    },
}

impl SlsError {
    /// True when retrying the failed operation may succeed: a transient
    /// device error surfaced through the store layer. Everything else
    /// (corrupt images, missing objects, kernel errors) is permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, SlsError::Store(e) if e.is_transient())
    }
}

impl fmt::Display for SlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlsError::NoSuchGroup(g) => write!(f, "no such consistency group {g:?}"),
            SlsError::NoCheckpoint(g) => write!(f, "group {g:?} has no checkpoint"),
            SlsError::BadImage(w) => write!(f, "bad checkpoint image: {w}"),
            SlsError::Kernel(e) => write!(f, "kernel: {e}"),
            SlsError::Store(e) => write!(f, "store: {e}"),
            SlsError::Vm(e) => write!(f, "vm: {e}"),
            SlsError::Codec(e) => write!(f, "codec: {e}"),
            SlsError::BreakerOpen { group, until_ns } => {
                write!(f, "group {group} circuit breaker open until t={until_ns}ns")
            }
        }
    }
}

impl std::error::Error for SlsError {}

impl From<KError> for SlsError {
    fn from(e: KError) -> Self {
        SlsError::Kernel(e)
    }
}

impl From<StoreError> for SlsError {
    fn from(e: StoreError) -> Self {
        SlsError::Store(e)
    }
}

impl From<VmError> for SlsError {
    fn from(e: VmError) -> Self {
        SlsError::Vm(e)
    }
}

impl From<CodecError> for SlsError {
    fn from(e: CodecError) -> Self {
        SlsError::Codec(e)
    }
}
