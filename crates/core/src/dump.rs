//! ELF coredump export (`sls dump`, Table 2): any checkpoint or running
//! state can be extracted as an ELF64 core file for debugging.

use crate::checkpoint::Reach;
use crate::oidmap::OidMap;
use crate::registry::KObjKind;
use crate::{Sls, SlsError};
use aurora_objstore::Oid;
use aurora_posix::Pid;
use aurora_sim::codec::Encoder;
use aurora_vm::{ObjId, PageSlot, PAGE_SIZE};

const EHDR_SIZE: usize = 64;
const PHDR_SIZE: usize = 56;
const PT_LOAD: u32 = 1;
const PT_NOTE: u32 = 4;
const NT_PRSTATUS: u32 = 1;
/// Aurora extension note: the process record in the checkpoint image
/// format, produced by the same serializer registry checkpoints use
/// ("AURA").
const NT_AURORA_PROC: u32 = 0x4155_5241;

/// Reads `[addr, addr+len)` of a space without faulting: missing or
/// swapped pages read as zeros (they are holes in the dump).
fn read_region_nofault(
    sls: &Sls,
    space: aurora_vm::SpaceId,
    top: ObjId,
    offset_pages: u64,
    start: u64,
    len: u64,
) -> Result<Vec<u8>, SlsError> {
    let _ = space;
    let mut out = vec![0u8; len as usize];
    let pages = len / PAGE_SIZE as u64;
    let chain = sls.kernel.vm.chain_of(top)?;
    for i in 0..pages {
        let pindex = offset_pages + i;
        for &obj in &chain {
            let o = sls.kernel.vm.object(obj)?;
            match o.pages.get(&pindex) {
                Some(PageSlot::Resident { .. }) => {
                    let data = sls.kernel.vm.page_bytes(obj, pindex)?;
                    let off = (i as usize) * PAGE_SIZE;
                    out[off..off + PAGE_SIZE].copy_from_slice(data);
                    break;
                }
                Some(PageSlot::Swapped) => break, // hole in the dump
                None => continue,
            }
        }
    }
    let _ = start;
    Ok(out)
}

impl Sls {
    /// The OID map [`coredump`](Sls::coredump) encodes process records
    /// against: an attached group's live map when one covers `pid`,
    /// otherwise a temporary map fake-bound over the process's reachable
    /// objects (the OIDs only name cross-references inside the note).
    fn dump_oidmap(&self, pid: Pid) -> Result<OidMap, SlsError> {
        let registry = self.registry.clone();
        let mut oids = OidMap::default();
        let reach = Reach::collect(&self.kernel, &[pid])?;
        // Fake bindings live above bit 48 so they can never collide with
        // a store-allocated OID carried over from a group's live map.
        let mut next = 1u64 << 48;
        for ser in registry.iter() {
            for id in ser.collect(&self.kernel, &reach)? {
                let key = ser.key_of(&self.kernel, id)?;
                let bound = self
                    .groups
                    .values()
                    .find_map(|g| g.oidmap.get(key))
                    .unwrap_or_else(|| {
                        next += 1;
                        Oid(next - 1)
                    });
                if oids.get(key).is_none() {
                    oids.bind(key, bound);
                }
            }
        }
        Ok(oids)
    }

    /// Produces an ELF64 core image of a running process: one PT_NOTE
    /// with an NT_PRSTATUS per thread plus an NT_AURORA_PROC carrying
    /// the registry-encoded process record, one PT_LOAD per map entry.
    pub fn coredump(&self, pid: Pid) -> Result<Vec<u8>, SlsError> {
        let p = self.kernel.proc(pid)?;
        let entries: Vec<_> = self.kernel.vm.entries(p.space)?.to_vec();

        let push_note = |notes: &mut Encoder, ntype: u32, desc: &[u8]| {
            let name = b"CORE";
            notes.u32(name.len() as u32 + 1);
            notes.u32(desc.len() as u32);
            notes.u32(ntype);
            notes.raw(name);
            notes.raw(&[0, 0, 0, 0][..(4 - name.len() % 4) % 4 + 1]); // NUL + pad
            notes.raw(desc);
            let pad = (4 - desc.len() % 4) % 4;
            notes.raw(&vec![0u8; pad]);
        };

        // NT_PRSTATUS notes.
        let mut notes = Encoder::new();
        for tid in &p.threads {
            let t = self.kernel.threads.get(tid).ok_or(SlsError::BadImage("thread"))?;
            let mut desc = Encoder::new();
            desc.u32(t.local_tid.0);
            desc.u64(t.regs.pc);
            desc.u64(t.regs.sp);
            for r in t.regs.gp {
                desc.u64(r);
            }
            let desc = desc.finish_vec();
            push_note(&mut notes, NT_PRSTATUS, &desc);
        }
        // The checkpoint-format process record, via the same serializer
        // the checkpoint pipeline dispatches through.
        {
            let oids = self.dump_oidmap(pid)?;
            let rec =
                self.registry.get(KObjKind::Proc)?.encode(&self.kernel, pid.0 as u64, &oids)?;
            push_note(&mut notes, NT_AURORA_PROC, &rec);
        }
        let notes = notes.finish_vec();

        let phnum = 1 + entries.len();
        let headers_len = EHDR_SIZE + phnum * PHDR_SIZE;
        let mut segments: Vec<(u64, Vec<u8>)> = Vec::with_capacity(entries.len());
        for e in &entries {
            let data = read_region_nofault(
                self,
                p.space,
                e.object,
                e.offset_pages,
                e.start,
                e.end - e.start,
            )?;
            segments.push((e.start, data));
        }

        let mut out = Vec::new();
        // ELF header.
        out.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]); // ident
        out.extend_from_slice(&[0; 8]);
        out.extend_from_slice(&4u16.to_le_bytes()); // ET_CORE
        out.extend_from_slice(&62u16.to_le_bytes()); // EM_X86_64
        out.extend_from_slice(&1u32.to_le_bytes()); // version
        out.extend_from_slice(&0u64.to_le_bytes()); // entry
        out.extend_from_slice(&(EHDR_SIZE as u64).to_le_bytes()); // phoff
        out.extend_from_slice(&0u64.to_le_bytes()); // shoff
        out.extend_from_slice(&0u32.to_le_bytes()); // flags
        out.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(phnum as u16).to_le_bytes());
        out.extend_from_slice(&[0u8; 6]); // shentsize, shnum, shstrndx
        debug_assert_eq!(out.len(), EHDR_SIZE);

        // Program headers. Note first, then loads.
        let mut file_off = headers_len as u64;
        let phdr = |ptype: u32, flags: u32, off: u64, vaddr: u64, fsz: u64, msz: u64| {
            let mut h = Vec::with_capacity(PHDR_SIZE);
            h.extend_from_slice(&ptype.to_le_bytes());
            h.extend_from_slice(&flags.to_le_bytes());
            h.extend_from_slice(&off.to_le_bytes());
            h.extend_from_slice(&vaddr.to_le_bytes());
            h.extend_from_slice(&vaddr.to_le_bytes()); // paddr
            h.extend_from_slice(&fsz.to_le_bytes());
            h.extend_from_slice(&msz.to_le_bytes());
            h.extend_from_slice(&PAGE_SIZE.to_le_bytes());
            h
        };
        let mut phdrs = Vec::new();
        phdrs.extend(phdr(PT_NOTE, 4, file_off, 0, notes.len() as u64, 0));
        file_off += notes.len() as u64;
        for (vaddr, data) in &segments {
            phdrs.extend(phdr(PT_LOAD, 6, file_off, *vaddr, data.len() as u64, data.len() as u64));
            file_off += data.len() as u64;
        }
        out.extend_from_slice(&phdrs);
        out.extend_from_slice(&notes);
        for (_, data) in segments {
            out.extend_from_slice(&data);
        }
        Ok(out)
    }

    /// Dumps a *checkpointed* memory object's pages from the store (for
    /// `sls dump --epoch`): returns (pindex, page) pairs.
    pub fn dump_object_pages(
        &self,
        oid: Oid,
        epoch: u64,
    ) -> Result<Vec<(u64, [u8; PAGE_SIZE])>, SlsError> {
        let mut store = self.store.lock();
        let mut out = Vec::new();
        for pi in store.pages_at(oid, epoch)? {
            // Dump is an export boundary: copy the bytes out of the frame.
            out.push((pi, *store.read_page(oid, pi, epoch)?.bytes()));
        }
        Ok(out)
    }
}
