//! The kernel-object → OID mapping (§5.2).
//!
//! "For each incremental checkpoint Aurora maintains a mapping of each
//! object's address in the kernel to a 64-bit on-disk object identifier.
//! This structure allows Aurora to scan over all persistent objects and
//! serialize each of them to storage exactly once." Sharing falls out for
//! free: two fd-table slots holding the same open-file description map to
//! the same OID, so the description is stored once and both slots encode
//! a reference.

use aurora_objstore::{ObjectKind, ObjectStore, Oid};
use std::collections::HashMap;

/// A key identifying a kernel object (the "address in the kernel").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KObj {
    /// A process (global pid).
    Proc(u32),
    /// A thread (global tid).
    Thread(u32),
    /// An open-file description.
    File(u64),
    /// A vnode.
    Vnode(u64),
    /// A pipe.
    Pipe(u64),
    /// A socket.
    Socket(u64),
    /// A kqueue.
    Kqueue(u64),
    /// A pseudoterminal pair.
    Pty(u64),
    /// A POSIX shm object.
    ShmPosix(u64),
    /// A SysV shm segment.
    ShmSysv(u64),
    /// A logical memory object (VM lineage).
    Mem(u64),
}

/// Record tags for serialized POSIX objects (also the store subtype).
pub mod tag {
    /// Process record.
    pub const PROC: u16 = 0x01;
    /// Thread record.
    pub const THREAD: u16 = 0x02;
    /// Open-file description record.
    pub const FILE: u16 = 0x03;
    /// Vnode record.
    pub const VNODE: u16 = 0x04;
    /// Pipe record.
    pub const PIPE: u16 = 0x05;
    /// Socket record.
    pub const SOCKET: u16 = 0x06;
    /// Kqueue record.
    pub const KQUEUE: u16 = 0x07;
    /// Pseudoterminal record.
    pub const PTY: u16 = 0x08;
    /// POSIX shm record.
    pub const SHM_POSIX: u16 = 0x09;
    /// SysV shm record.
    pub const SHM_SYSV: u16 = 0x0A;
    /// Memory (VM) object record.
    pub const MEM: u16 = 0x0B;
    /// Group manifest record.
    pub const MANIFEST: u16 = 0x0C;
}

impl KObj {
    /// The store kind for this object's on-disk representation.
    pub fn kind(&self) -> ObjectKind {
        match self {
            KObj::Proc(_) => ObjectKind::Posix(tag::PROC),
            KObj::Thread(_) => ObjectKind::Posix(tag::THREAD),
            KObj::File(_) => ObjectKind::Posix(tag::FILE),
            KObj::Vnode(_) => ObjectKind::File,
            KObj::Pipe(_) => ObjectKind::Posix(tag::PIPE),
            KObj::Socket(_) => ObjectKind::Posix(tag::SOCKET),
            KObj::Kqueue(_) => ObjectKind::Posix(tag::KQUEUE),
            KObj::Pty(_) => ObjectKind::Posix(tag::PTY),
            KObj::ShmPosix(_) => ObjectKind::Posix(tag::SHM_POSIX),
            KObj::ShmSysv(_) => ObjectKind::Posix(tag::SHM_SYSV),
            KObj::Mem(_) => ObjectKind::Memory,
        }
    }
}

/// The per-group mapping. Cloneable so the checkpoint pipeline can
/// snapshot it before OID assignment and roll back on abort.
#[derive(Clone, Debug, Default)]
pub struct OidMap {
    map: HashMap<KObj, Oid>,
}

impl OidMap {
    /// Returns the OID for `kobj`, allocating and creating the store
    /// object on first sight.
    pub fn get_or_create(
        &mut self,
        store: &mut ObjectStore,
        kobj: KObj,
    ) -> Result<Oid, aurora_objstore::StoreError> {
        if let Some(&oid) = self.map.get(&kobj) {
            return Ok(oid);
        }
        let oid = store.alloc_oid();
        store.create_object(oid, kobj.kind())?;
        self.map.insert(kobj, oid);
        Ok(oid)
    }

    /// Looks up an existing mapping.
    pub fn get(&self, kobj: KObj) -> Option<Oid> {
        self.map.get(&kobj).copied()
    }

    /// Binds a kernel object to an existing OID (restore path).
    pub fn bind(&mut self, kobj: KObj, oid: Oid) {
        self.map.insert(kobj, oid);
    }

    /// Number of mapped objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::cost::Charge;
    use aurora_sim::{Clock, CostModel};
    use aurora_storage::testbed_array;

    #[test]
    fn same_kernel_object_maps_once() {
        let clock = Clock::new();
        let dev = testbed_array(&clock, 1 << 24);
        let mut store =
            ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 256).unwrap();
        let mut m = OidMap::default();
        let a = m.get_or_create(&mut store, KObj::File(7)).unwrap();
        let b = m.get_or_create(&mut store, KObj::File(7)).unwrap();
        let c = m.get_or_create(&mut store, KObj::File(8)).unwrap();
        assert_eq!(a, b, "shared description serializes exactly once");
        assert_ne!(a, c);
        assert_eq!(m.len(), 2);
    }
}
