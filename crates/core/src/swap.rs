//! Swap/overcommit integration (§6, "Memory Overcommitment").
//!
//! Aurora subsumes swap: a page that is already in a checkpoint is clean
//! and can be evicted *without IO*; dirty pages are flushed by the next
//! checkpoint rather than to a separate swap partition. Faults retrieve
//! the most recent version from the store — the same path lazy restore
//! uses.

use crate::{GroupId, LineageBinding, SharedStore, Sls, SlsError};
use aurora_vm::{ObjKind, PageData};
use aurora_sim::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The kernel pager backed by the object store: page-ins read the latest
/// committed version of the page (§6, "On a page fault Aurora retrieves
/// the most recent version of the page").
pub struct StorePager {
    /// The store shared with the SLS.
    pub store: SharedStore,
    /// Lineage → binding, shared with the SLS.
    pub lineage_oids: Arc<Mutex<HashMap<u64, LineageBinding>>>,
}

impl aurora_posix::Pager for StorePager {
    fn page_in(&mut self, lineage: u64, pindex: u64) -> Option<PageData> {
        let binding = *self.lineage_oids.lock().get(&lineage)?;
        let mut store = self.store.lock();
        let page = store
            .read_page_pinned(binding.oid, pindex, binding.floor, binding.resume)
            .ok()?;
        Some(page)
    }
}

impl Sls {
    /// The pageout daemon: evicts up to `max_pages` clean pages from the
    /// group's memory, preferring them over dirty pages (§6's paging
    /// policy). Returns how many pages were evicted — all without IO.
    ///
    /// Waits for the latest checkpoint to be durable first: a "clean"
    /// page whose backing write is still in flight must not be dropped.
    pub fn evict_clean_pages(&mut self, gid: GroupId, max_pages: u64) -> Result<u64, SlsError> {
        let pending = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?.pending_durable;
        self.kernel.charge.clock().advance_to(pending);
        let pids = self.group_pids(gid)?;
        let mut evicted = 0;
        'outer: for pid in pids {
            let space = self.kernel.proc(pid)?.space;
            let tops: Vec<aurora_vm::ObjId> =
                self.kernel.vm.entries(space)?.iter().map(|e| e.object).collect();
            for top in tops {
                for obj in self.kernel.vm.chain_of(top)? {
                    if matches!(self.kernel.vm.object(obj)?.kind, ObjKind::Device { .. }) {
                        continue;
                    }
                    let clean: Vec<u64> = self
                        .kernel
                        .vm
                        .resident_page_indices(obj)?
                        .into_iter()
                        .filter(|&(_, dirty)| !dirty)
                        .map(|(pi, _)| pi)
                        .collect();
                    for pi in clean {
                        if evicted >= max_pages {
                            break 'outer;
                        }
                        self.kernel.vm.evict_page(obj, pi)?;
                        evicted += 1;
                    }
                }
            }
        }
        Ok(evicted)
    }

    /// Resident pages across a group (for memory-pressure decisions).
    pub fn group_resident_pages(&self, gid: GroupId) -> Result<u64, SlsError> {
        let mut total = 0;
        for pid in self.group_pids(gid)? {
            let space = self.kernel.proc(pid)?.space;
            total += self.kernel.vm.space_resident_pages(space)?;
        }
        Ok(total)
    }
}
