//! External synchrony (§3): outbound messages from a consistency group
//! are buffered until the checkpoint covering their computation is
//! durable — so the outside world never observes state that could be
//! rolled back.
//!
//! No synchrony is needed *within* a group (all members roll back
//! together), and descriptors opted out via `sls_fdctl` release
//! immediately (e.g. read-only responses, §3).

use crate::{GroupId, Sls, SlsError};
use aurora_posix::file::FileKind;
use std::collections::{HashMap, HashSet};

impl Sls {
    /// Sockets owned by a group's members (by fd table reference).
    fn group_sockets(&self, gid: GroupId) -> Result<HashSet<u64>, SlsError> {
        let mut out = HashSet::new();
        for pid in self.group_pids(gid)? {
            let p = self.kernel.proc(pid)?;
            for (_, fid) in p.fdtable.iter() {
                if let Ok(f) = self.kernel.file(fid) {
                    if let FileKind::Socket(s) = f.kind {
                        out.insert(s);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Sockets whose *every* referencing descriptor has external
    /// synchrony disabled via `sls_fdctl`.
    fn extsync_disabled_sockets(&self) -> HashSet<u64> {
        let mut enabled = HashSet::new();
        let mut disabled = HashSet::new();
        for f in self.kernel.files.values() {
            if let FileKind::Socket(s) = f.kind {
                if f.extsync_disabled {
                    disabled.insert(s);
                } else {
                    enabled.insert(s);
                }
            }
        }
        disabled.retain(|s| !enabled.contains(s));
        disabled
    }

    /// Seals the current outbound high-water marks of the group's sockets
    /// under the in-progress checkpoint. Returns sid → messages sealed so
    /// far (absolute count).
    pub(crate) fn seal_group_sockets(
        &mut self,
        gid: GroupId,
    ) -> Result<HashMap<u64, usize>, SlsError> {
        let members = self.group_sockets(gid)?;
        let mut counts = HashMap::new();
        for &sid in &members {
            if let Some(s) = self.kernel.sockets.get(&sid) {
                counts.insert(sid, s.sent_count as usize);
            }
        }
        Ok(counts)
    }

    /// Delivers everything deliverable *now*:
    ///
    /// * sealed batches whose covering checkpoint is durable,
    /// * traffic between members of the same group (no synchrony needed),
    /// * sockets opted out via `sls_fdctl`,
    /// * sockets not owned by any synchronized group.
    pub fn pump_external_synchrony(&mut self) {
        let now = self.kernel.charge.clock().now();

        // Which sockets are withheld (owned by an extsync-on group and
        // not opted out), and which pairs are intra-group?
        let mut withheld: HashSet<u64> = HashSet::new();
        let gids: Vec<GroupId> = self.groups.keys().copied().collect();
        let mut ownership: HashMap<u64, GroupId> = HashMap::new();
        for gid in &gids {
            if !self.groups[gid].opts.external_synchrony {
                continue;
            }
            if let Ok(sockets) = self.group_sockets(*gid) {
                for s in sockets {
                    ownership.insert(s, *gid);
                    withheld.insert(s);
                }
            }
        }
        for s in self.extsync_disabled_sockets() {
            withheld.remove(&s);
        }
        // Intra-group pairs release immediately.
        let intra: Vec<u64> = withheld
            .iter()
            .copied()
            .filter(|sid| {
                let peer = self.kernel.sockets.get(sid).and_then(|s| s.peer);
                match peer {
                    Some(p) => ownership.get(sid) == ownership.get(&p) && ownership.contains_key(&p),
                    None => false,
                }
            })
            .collect();
        for sid in intra {
            withheld.remove(&sid);
        }

        // Release durable sealed batches (per group, FIFO). Each group's
        // queue drains against its *own* durability horizons — a slow
        // flush in one group never serializes another group's releases,
        // because commit barriers are per-draft in the store.
        for gid in &gids {
            let mut to_release: Vec<(u64, usize)> = Vec::new();
            let mut released_batches: Vec<(u64, u64, u64, u64)> = Vec::new();
            {
                let gate = self.release_gate;
                let g = self.groups.get_mut(gid).expect("listed");
                while let Some(front) = g.sealed.front() {
                    if front.durable_at > now {
                        break;
                    }
                    // Cluster quorum gate: locally durable is not enough
                    // when replication is on — the epoch must also be
                    // under the quorum durable watermark.
                    if gate.is_some_and(|w| front.epoch > w) {
                        break;
                    }
                    let batch = g.sealed.pop_front().expect("checked front");
                    released_batches.push((
                        batch.epoch,
                        batch.durable_at,
                        batch.sealed_at,
                        batch.counts.len() as u64,
                    ));
                    for (sid, upto) in batch.counts {
                        to_release.push((sid, upto));
                    }
                }
            }
            self.extsync_released += released_batches.len() as u64;
            let trace = self.kernel.charge.trace();
            if trace.is_enabled() {
                for (epoch, durable_at, sealed_at, sockets) in released_batches {
                    trace.instant(
                        "extsync",
                        "extsync.release",
                        &[
                            ("epoch", epoch),
                            ("group", gid.0),
                            ("durable_at", durable_at),
                            ("sockets", sockets),
                        ],
                    );
                    trace.hist("release_latency", now.saturating_sub(sealed_at));
                }
            }
            for (sid, upto) in to_release {
                let already = self
                    .kernel
                    .sockets
                    .get(&sid)
                    .map(|s| s.sent_count as usize - s.send_buf.len())
                    .unwrap_or(0);
                if upto > already {
                    self.kernel.deliver_n(sid, upto - already);
                }
            }
        }

        // Everything not withheld flows freely.
        let all: Vec<u64> = self.kernel.sockets.keys().copied().collect();
        for sid in all {
            if !withheld.contains(&sid) {
                self.kernel.deliver_socket(sid);
            }
        }
    }
}
