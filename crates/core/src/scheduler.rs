//! The checkpoint scheduler: interleaves many groups' pipeline phases
//! so flush bandwidth stays saturated without a global stop.
//!
//! Admission is event-driven: runs waiting on their per-group
//! backpressure horizon sit in a `ready_at`-ordered min-heap and only
//! surface when the virtual clock reaches them; runnable runs advance
//! one phase per turn from a FIFO queue, so each scheduling step costs
//! O(log groups) instead of the old O(groups) round-robin scan — the
//! difference between thousands of groups and dozens. Flush phases are
//! deferred while the store already has
//! [`SchedulerPolicy::max_inflight_flushes`] drafts with writes in
//! flight — staggering the groups against the device queue instead of
//! dumping every flush at once. When no run can make progress at the
//! current virtual time, the clock jumps to the earliest unblocking
//! event (the heap's front or a draft's completion), so group B
//! quiesces and serializes while group A's flush is still in the
//! device queue.

use crate::checkpoint::CheckpointStats;
use crate::pipeline::{GroupRun, Phase};
use crate::{GroupId, Sls, SlsError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Tunables for [`CheckpointScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerPolicy {
    /// Maximum drafts with in-flight device writes before further
    /// Flush phases wait for the queue to drain. Matched to the device
    /// stack's useful queue depth (the default suits the 4-way RAID 0
    /// testbed).
    pub max_inflight_flushes: u64,
    /// The flush cap while the device stack reports a `Degraded` (or
    /// worse) member: a degraded mirror is resilvering or limping, so
    /// the scheduler throttles to one draft at a time instead of
    /// saturating a queue the device can no longer drain. Full rate
    /// resumes automatically when the health report recovers.
    pub degraded_max_inflight: u64,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        Self { max_inflight_flushes: 4, degraded_max_inflight: 1 }
    }
}

/// Staggers many groups' checkpoint pipelines against the device queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointScheduler {
    policy: SchedulerPolicy,
}

impl CheckpointScheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self { policy }
    }

    /// Checkpoints every group in `gids`, overlapping their pipelines.
    /// Returns one [`CheckpointStats`] per group, in `gids` order.
    pub fn run(&self, sls: &mut Sls, gids: &[GroupId]) -> Result<Vec<CheckpointStats>, SlsError> {
        let mut runs = Vec::with_capacity(gids.len());
        for &gid in gids {
            runs.push(GroupRun::new(sls, gid)?);
        }
        let clock = sls.kernel.charge.clock().clone();
        let n = runs.len();
        let mut done = 0usize;
        // Stop admission: min-heap on (ready_at, seq) — seq keeps ties
        // FIFO in `gids` order, matching the old round-robin's
        // determinism.
        let mut waiting: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        // Runs able to attempt their next phase at the current time.
        let mut runnable: VecDeque<usize> = VecDeque::new();
        // Flush phases held back by the in-flight cap, re-admitted when
        // a draft completes (or the clock otherwise advances).
        let mut deferred: VecDeque<usize> = VecDeque::new();
        let mut seq = 0u64;
        for (i, run) in runs.iter().enumerate() {
            waiting.push(Reverse((run.ready_at(), seq, i)));
            seq += 1;
        }
        while done < n {
            // Surface every waiter whose horizon has passed.
            while let Some(&Reverse((t, _, i))) = waiting.peek() {
                if t > clock.now() {
                    break;
                }
                waiting.pop();
                runnable.push_back(i);
            }
            let Some(i) = runnable.pop_front() else {
                // Nothing runnable now: jump to the earliest unblocking
                // event — the heap's front horizon or an in-flight
                // draft's completion freeing a flush slot.
                let mut wake: Option<u64> = waiting.peek().map(|&Reverse((t, _, _))| t);
                if !deferred.is_empty() {
                    if let Some(t) = sls.store.lock().next_draft_completion(clock.now()) {
                        wake = Some(wake.map_or(t, |w| w.min(t)));
                    }
                }
                match wake {
                    Some(t) => clock.advance_to(t),
                    None => {
                        // The queue is saturated by drafts with no
                        // pending completions (can't happen with a live
                        // device, but never spin): issue one deferred
                        // flush anyway.
                        let i = deferred
                            .pop_front()
                            .expect("undone run neither runnable nor waiting");
                        runs[i].step(sls)?;
                        if runs[i].is_done() {
                            done += 1;
                        } else {
                            runnable.push_back(i);
                        }
                    }
                }
                // The clock moved (or a slot freed): deferred flushes
                // get a fresh cap check.
                runnable.extend(deferred.drain(..));
                continue;
            };
            match runs[i].phase() {
                Phase::Done => continue,
                Phase::Stop => {
                    // Per-group backpressure: this group's previous
                    // checkpoint must be durable first. Other groups
                    // keep running meanwhile.
                    if clock.now() < runs[i].ready_at() {
                        waiting.push(Reverse((runs[i].ready_at(), seq, i)));
                        seq += 1;
                        continue;
                    }
                    runs[i].step(sls)?;
                }
                Phase::Flush => {
                    // Device-health feedback: shrink the flush window
                    // while a mirror is degraded, restore it on
                    // recovery. Re-read each turn — health changes
                    // mid-schedule (a storm mid-checkpoint) take effect
                    // on the very next flush admission.
                    let cap = if sls.device_degraded() {
                        self.policy.degraded_max_inflight.max(1)
                    } else {
                        self.policy.max_inflight_flushes
                    };
                    let inflight = sls.store.lock().inflight_drafts(clock.now());
                    if inflight >= cap {
                        deferred.push_back(i);
                        continue;
                    }
                    runs[i].step(sls)?;
                }
                Phase::Seal | Phase::Commit => {
                    runs[i].step(sls)?;
                }
            }
            if runs[i].is_done() {
                done += 1;
            } else {
                runnable.push_back(i);
            }
        }
        Ok(runs.into_iter().map(|r| r.take_stats()).collect())
    }
}
