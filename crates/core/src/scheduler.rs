//! The checkpoint scheduler: interleaves many groups' pipeline phases
//! so flush bandwidth stays saturated without a global stop.
//!
//! One [`GroupRun`] per group advances round-robin, one phase per
//! round. Stop phases are admitted only once the group's previous
//! checkpoint is durable (per-group backpressure, §7), and Flush phases
//! are deferred while the store already has
//! [`SchedulerPolicy::max_inflight_flushes`] drafts with writes in
//! flight — staggering the groups against the device queue instead of
//! dumping every flush at once. When no run can make progress at the
//! current virtual time, the clock jumps to the earliest unblocking
//! event (a backpressure horizon or a draft's completion), so group B
//! quiesces and serializes while group A's flush is still in the
//! device queue.

use crate::checkpoint::CheckpointStats;
use crate::pipeline::{GroupRun, Phase};
use crate::{GroupId, Sls, SlsError};

/// Tunables for [`CheckpointScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerPolicy {
    /// Maximum drafts with in-flight device writes before further
    /// Flush phases wait for the queue to drain. Matched to the device
    /// stack's useful queue depth (the default suits the 4-way RAID 0
    /// testbed).
    pub max_inflight_flushes: u64,
    /// The flush cap while the device stack reports a `Degraded` (or
    /// worse) member: a degraded mirror is resilvering or limping, so
    /// the scheduler throttles to one draft at a time instead of
    /// saturating a queue the device can no longer drain. Full rate
    /// resumes automatically when the health report recovers.
    pub degraded_max_inflight: u64,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        Self { max_inflight_flushes: 4, degraded_max_inflight: 1 }
    }
}

/// Staggers many groups' checkpoint pipelines against the device queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointScheduler {
    policy: SchedulerPolicy,
}

impl CheckpointScheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self { policy }
    }

    /// Checkpoints every group in `gids`, overlapping their pipelines.
    /// Returns one [`CheckpointStats`] per group, in `gids` order.
    pub fn run(&self, sls: &mut Sls, gids: &[GroupId]) -> Result<Vec<CheckpointStats>, SlsError> {
        let mut runs = Vec::with_capacity(gids.len());
        for &gid in gids {
            runs.push(GroupRun::new(sls, gid)?);
        }
        let clock = sls.kernel.charge.clock().clone();
        let n = runs.len();
        let mut next = 0usize;
        while !runs.iter().all(|r| r.is_done()) {
            let mut progressed = false;
            let mut deferred_flush: Option<usize> = None;
            for k in 0..n {
                let i = (next + k) % n;
                match runs[i].phase() {
                    Phase::Done => {}
                    Phase::Stop => {
                        // Per-group backpressure: this group's previous
                        // checkpoint must be durable first. Other groups
                        // keep running meanwhile.
                        if clock.now() >= runs[i].ready_at() {
                            runs[i].step(sls)?;
                            progressed = true;
                        }
                    }
                    Phase::Flush => {
                        // Device-health feedback: shrink the flush window
                        // while a mirror is degraded, restore it on
                        // recovery. Re-read each round — health changes
                        // mid-schedule (a storm mid-checkpoint) take
                        // effect on the very next flush admission.
                        let cap = if sls.device_degraded() {
                            self.policy.degraded_max_inflight.max(1)
                        } else {
                            self.policy.max_inflight_flushes
                        };
                        let inflight = sls.store.lock().inflight_drafts(clock.now());
                        if inflight >= cap {
                            deferred_flush.get_or_insert(i);
                        } else {
                            runs[i].step(sls)?;
                            progressed = true;
                        }
                    }
                    Phase::Seal | Phase::Commit => {
                        runs[i].step(sls)?;
                        progressed = true;
                    }
                }
            }
            next = (next + 1) % n;
            if progressed {
                continue;
            }
            // Nothing runnable now: jump to the earliest unblocking
            // event — a waiting group's durability horizon or an
            // in-flight draft's completion freeing a flush slot.
            let mut wake: Option<u64> = None;
            for run in &runs {
                if run.phase() == Phase::Stop && run.ready_at() > clock.now() {
                    wake = Some(wake.map_or(run.ready_at(), |w| w.min(run.ready_at())));
                }
            }
            if deferred_flush.is_some() {
                if let Some(t) = sls.store.lock().next_draft_completion(clock.now()) {
                    wake = Some(wake.map_or(t, |w| w.min(t)));
                }
            }
            match (wake, deferred_flush) {
                (Some(t), _) => clock.advance_to(t),
                (None, Some(i)) => {
                    // The queue is saturated by drafts with no pending
                    // completions (can't happen with a live device, but
                    // never spin): issue the flush anyway.
                    runs[i].step(sls)?;
                }
                (None, None) => unreachable!("undone run neither runnable nor waiting"),
            }
        }
        Ok(runs.into_iter().map(|r| r.take_stats()).collect())
    }
}
