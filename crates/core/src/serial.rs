//! Per-object serializers and deserializers: the POSIX object model's
//! record formats (§5.2).
//!
//! Each kernel object type has a *record*: a versioned, self-contained
//! encoding of its user-visible and kernel state, referencing other
//! objects by OID. Sharing is never inferred — it is preserved by the
//! references themselves: two fd slots pointing to one description encode
//! the same file OID; a description and an independent `open` of the same
//! file reference the same vnode OID through different file OIDs.
//!
//! Serializers charge the virtual clock with the lock acquisitions,
//! cache-missing pointer chases, and per-element scans the real kernel
//! pays (Table 4's calibration); deserializers charge allocation-side
//! costs.

use crate::error::SlsError;
use crate::oidmap::{tag, KObj, OidMap};
use aurora_objstore::Oid;
use aurora_posix::file::{FileKind, OpenFlags, PipeEnd, PtySide};
use aurora_posix::kqueue::{Filter, Kevent};
use aurora_posix::process::Regs;
use aurora_posix::socket::{Domain, SockType, TcpState};
use aurora_posix::vfs::VnodeKind;
use aurora_posix::{Kernel, Pid, Tid};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_vm::{Inherit, ObjKind, Prot};


/// A process record.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcRecord {
    /// Application-visible pid.
    pub local_pid: u32,
    /// Parent's *local* pid, if the parent is in the group.
    pub parent_local: Option<u32>,
    /// Process group (local).
    pub pgid: u32,
    /// Session (local).
    pub sid: u32,
    /// Command name.
    pub name: String,
    /// Thread records, in creation order.
    pub threads: Vec<Oid>,
    /// Descriptor table: (fd number, file OID).
    pub fds: Vec<(u32, Oid)>,
    /// VM map entries.
    pub entries: Vec<EntryRecord>,
    /// The process had ephemeral (non-persistent) children at checkpoint
    /// time; a restore posts SIGCHLD so it can recreate them (§3).
    pub had_ephemeral_children: bool,
    /// In-flight asynchronous reads, recorded so the restore can reissue
    /// them (§5.3): (file OID, offset, length).
    pub aio_reads: Vec<(Oid, u64, u64)>,
}

/// One VM map entry in a process record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryRecord {
    /// Start address.
    pub start: u64,
    /// End address.
    pub end: u64,
    /// Protection bits.
    pub prot: u8,
    /// Inheritance (0 share, 1 copy, 2 none).
    pub inherit: u8,
    /// Offset into the object, pages.
    pub offset_pages: u64,
    /// Memory object OID (top of the entry's chain).
    pub mem: Oid,
    /// Excluded from checkpoints.
    pub sls_exclude: bool,
}

/// A thread record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadRecord {
    /// Application-visible tid.
    pub local_tid: u32,
    /// Signal mask.
    pub sigmask: u64,
    /// Pending signals.
    pub sigpending: u64,
    /// Scheduling priority.
    pub priority: i8,
    /// CPU state.
    pub regs: Regs,
}

/// An open-file description record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileRecord {
    /// What the description points at.
    pub target: FileTarget,
    /// Seek offset.
    pub offset: u64,
    /// read/write/append/nonblock bits.
    pub flags: u8,
    /// External synchrony disabled (`sls_fdctl`).
    pub extsync_disabled: bool,
}

/// Targets of a file record, by OID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileTarget {
    /// Regular file/directory.
    Vnode(Oid),
    /// One pipe end.
    Pipe(Oid, bool /* read end */),
    /// Socket.
    Socket(Oid),
    /// Kqueue.
    Kqueue(Oid),
    /// Pty side.
    Pty(Oid, bool /* master */),
    /// POSIX shm object.
    ShmPosix(Oid),
    /// Whitelisted device.
    Device(u64),
}

impl FileTarget {
    /// The (kind, OID) this target references in the store, if any
    /// (whitelisted devices are pass-throughs, not persisted objects).
    pub fn kobj(self) -> Option<(crate::registry::KObjKind, Oid)> {
        use crate::registry::KObjKind as K;
        Some(match self {
            FileTarget::Vnode(o) => (K::Vnode, o),
            FileTarget::Pipe(o, _) => (K::Pipe, o),
            FileTarget::Socket(o) => (K::Socket, o),
            FileTarget::Kqueue(o) => (K::Kqueue, o),
            FileTarget::Pty(o, _) => (K::Pty, o),
            FileTarget::ShmPosix(o) => (K::ShmPosix, o),
            FileTarget::Device(_) => return None,
        })
    }
}

/// A vnode record. Regular-file content is stored as the same store
/// object's pages; this record holds metadata and directory entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VnodeRecord {
    /// Inode number (the checkpoint references inodes, not paths, §5.2).
    pub ino: u64,
    /// Directory?
    pub is_dir: bool,
    /// Directory link count.
    pub nlink: u32,
    /// Hidden link count: open references that keep anonymous files alive
    /// across crashes (§5.2).
    pub open_refs: u32,
    /// File size in bytes.
    pub size: u64,
    /// Directory entries (name, child ino).
    pub dirents: Vec<(String, u64)>,
}

/// A pipe record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipeRecord {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Reader end open.
    pub reader_open: bool,
    /// Writer end open.
    pub writer_open: bool,
    /// Buffered bytes.
    pub buffer: Vec<u8>,
}

/// A socket record (§5.3): address/port/options/buffers for UDP and UNIX;
/// the 5-tuple, sequence numbers, and buffers for established TCP. The
/// accept queue of listening sockets is deliberately omitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocketRecord {
    /// Domain (0 unix, 1 inet).
    pub domain: u8,
    /// Type (0 stream, 1 dgram).
    pub stype: u8,
    /// nodelay, reuseaddr, keepalive.
    pub opts: (bool, bool, bool),
    /// Bound UNIX path.
    pub unix_path: Option<String>,
    /// Local (ip, port).
    pub local: (u32, u16),
    /// Remote (ip, port).
    pub remote: (u32, u16),
    /// 0 closed, 1 listen, 2 established.
    pub tcp_state: u8,
    /// Send sequence.
    pub snd_seq: u32,
    /// Receive sequence.
    pub rcv_seq: u32,
    /// Peer socket OID (same-host pairs).
    pub peer: Option<Oid>,
    /// Receive buffer: (payload, control-message file OIDs).
    pub recv_buf: Vec<(Vec<u8>, Vec<Oid>)>,
    /// Send buffer (externally-synchronized messages in flight).
    pub send_buf: Vec<(Vec<u8>, Vec<Oid>)>,
}

/// A kqueue record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KqueueRecord {
    /// Registered events: (ident, filter, enabled, udata).
    pub events: Vec<(u64, u8, bool, u64)>,
}

/// A pseudoterminal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PtyRecord {
    /// pts number.
    pub pts: u64,
    /// canonical, echo.
    pub term: (bool, bool),
    /// Baud rate.
    pub baud: u32,
    /// Master→slave bytes.
    pub input: Vec<u8>,
    /// Slave→master bytes.
    pub output: Vec<u8>,
    /// Foreground process group (local).
    pub fg_pgid: Option<u32>,
}

/// A POSIX shm record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShmPosixRecord {
    /// `shm_open` name.
    pub name: String,
    /// Size in pages.
    pub pages: u64,
    /// Backing memory object OID.
    pub mem: Oid,
}

/// A SysV shm record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShmSysvRecord {
    /// IPC key.
    pub key: i64,
    /// Size in pages.
    pub pages: u64,
    /// Backing memory object OID.
    pub mem: Oid,
    /// Attach count.
    pub nattch: u32,
}

/// A memory (VM) object record: the hierarchy is persisted, not a flat
/// view (§6, "Checkpointing the VM").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemRecord {
    /// Size in pages.
    pub size_pages: u64,
    /// 0 anonymous, 1 vnode-backed, 2 device.
    pub kind: u8,
    /// Backing vnode OID for kind 1.
    pub vnode: Option<Oid>,
    /// Shadow backer (memory object OID).
    pub backer: Option<Oid>,
}

/// The group manifest: everything a restore needs to find the rest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Checkpoint period.
    pub period_ns: u64,
    /// External synchrony enabled.
    pub extsync: bool,
    /// Member processes: (proc OID, local pid, is_root).
    pub procs: Vec<(Oid, u32, bool)>,
    /// Every file-system vnode object in the image (the namespace is part
    /// of the single level store, §5.2).
    pub fs_vnodes: Vec<Oid>,
}

fn prot_bits(p: Prot) -> u8 {
    p.0
}

fn inherit_bits(i: Inherit) -> u8 {
    match i {
        Inherit::Share => 0,
        Inherit::Copy => 1,
        Inherit::None => 2,
    }
}

fn flags_bits(f: OpenFlags) -> u8 {
    (f.read as u8) | (f.write as u8) << 1 | (f.append as u8) << 2 | (f.nonblock as u8) << 3
}

/// Decodes open flags.
pub fn flags_from(b: u8) -> OpenFlags {
    OpenFlags { read: b & 1 != 0, write: b & 2 != 0, append: b & 4 != 0, nonblock: b & 8 != 0 }
}

fn filter_bits(f: Filter) -> u8 {
    match f {
        Filter::Read => 0,
        Filter::Write => 1,
        Filter::Timer => 2,
        Filter::Proc => 3,
    }
}

fn filter_from(b: u8) -> Result<Filter, SlsError> {
    Ok(match b {
        0 => Filter::Read,
        1 => Filter::Write,
        2 => Filter::Timer,
        3 => Filter::Proc,
        _ => return Err(SlsError::BadImage("kevent filter")),
    })
}

fn put_msgs(e: &mut Encoder, msgs: &[(Vec<u8>, Vec<Oid>)]) {
    e.u32(msgs.len() as u32);
    for (data, fds) in msgs {
        e.bytes(data);
        e.u32(fds.len() as u32);
        for f in fds {
            e.u64(f.0);
        }
    }
}

/// Decoded socket-buffer messages: (payload, in-flight descriptor OIDs).
type Msgs = Vec<(Vec<u8>, Vec<Oid>)>;

fn get_msgs(d: &mut Decoder<'_>) -> Result<Msgs, SlsError> {
    let n = d.u32()?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let data = d.bytes()?.to_vec();
        let nf = d.u32()?;
        let mut fds = Vec::with_capacity(nf as usize);
        for _ in 0..nf {
            fds.push(Oid(d.u64()?));
        }
        out.push((data, fds));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Encoders (kernel → record bytes), with Table 4 cost charging.
// ---------------------------------------------------------------------

/// Serializes a process. `oids` must already contain mappings for its
/// threads, files, and memory objects.
///
/// In-flight asynchronous *reads* are recorded for reissue at restore;
/// in-flight writes were already folded into the checkpoint by the
/// quiesce path (§5.3).
pub fn encode_proc(k: &Kernel, pid: Pid, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
    let p = k.proc(pid)?;
    // Proc lock, fd table lock, map lock; pointer chases across the
    // proc/fdtable/vmspace structures.
    k.charge.locks(3);
    k.charge.misses(12 + p.threads.len() as u64 + p.fdtable.len() as u64);
    let parent_local = p.ppid.and_then(|pp| k.proc(pp).ok()).map(|pp| pp.local_pid.0);
    let had_ephemeral_children = p
        .children
        .iter()
        .any(|&c| k.proc(c).map(|cp| cp.ephemeral && !cp.dead).unwrap_or(false));
    let aio_reads: Vec<(u64, u64, u64)> = k
        .aio
        .in_flight()
        .filter(|op| op.pid == pid.0 && op.kind == aurora_posix::aio::AioKind::Read)
        .map(|op| (oids.get(KObj::File(op.file.0)).expect("aio file mapped").0, op.offset, op.len))
        .collect();
    let mut e = Encoder::new();
    e.record(tag::PROC, 2, |e| {
        e.bool(had_ephemeral_children);
        e.u32(p.local_pid.0);
        match parent_local {
            Some(x) => {
                e.bool(true);
                e.u32(x);
            }
            None => e.bool(false),
        }
        e.u32(p.pgid.0);
        e.u32(p.sid.0);
        e.str(&p.name);
        e.u32(p.threads.len() as u32);
        for t in &p.threads {
            e.u64(oids.get(KObj::Thread(t.0)).expect("thread mapped").0);
        }
        let fds: Vec<(u32, Oid)> = p
            .fdtable
            .iter()
            .map(|(fd, fid)| (fd.0, oids.get(KObj::File(fid.0)).expect("file mapped")))
            .collect();
        e.u32(fds.len() as u32);
        for (fd, oid) in fds {
            e.u32(fd);
            e.u64(oid.0);
        }
        let entries = k.vm.entries(p.space).expect("space exists");
        e.u32(entries.len() as u32);
        for en in entries {
            let lineage = k.vm.object(en.object).expect("entry object").lineage;
            e.u64(en.start);
            e.u64(en.end);
            e.u8(prot_bits(en.prot));
            e.u8(inherit_bits(en.inherit));
            e.u64(en.offset_pages);
            e.u64(oids.get(KObj::Mem(lineage.0)).expect("mem mapped").0);
            e.bool(en.sls_exclude);
        }
        // v2: in-flight asynchronous reads.
        e.u32(aio_reads.len() as u32);
        for (oid, off, len) in &aio_reads {
            e.u64(*oid);
            e.u64(*off);
            e.u64(*len);
        }
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a process record.
pub fn decode_proc(bytes: &[u8]) -> Result<ProcRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (v, mut b) = d.record(tag::PROC, 2)?;
    let had_ephemeral_children = b.bool()?;
    let local_pid = b.u32()?;
    let parent_local = if b.bool()? { Some(b.u32()?) } else { None };
    let pgid = b.u32()?;
    let sid = b.u32()?;
    let name = b.str()?.to_string();
    let nt = b.u32()?;
    let mut threads = Vec::with_capacity(nt as usize);
    for _ in 0..nt {
        threads.push(Oid(b.u64()?));
    }
    let nf = b.u32()?;
    let mut fds = Vec::with_capacity(nf as usize);
    for _ in 0..nf {
        fds.push((b.u32()?, Oid(b.u64()?)));
    }
    let ne = b.u32()?;
    let mut entries = Vec::with_capacity(ne as usize);
    for _ in 0..ne {
        entries.push(EntryRecord {
            start: b.u64()?,
            end: b.u64()?,
            prot: b.u8()?,
            inherit: b.u8()?,
            offset_pages: b.u64()?,
            mem: Oid(b.u64()?),
            sls_exclude: b.bool()?,
        });
    }
    // v2 appended in-flight asynchronous reads; v1 images have none.
    let mut aio_reads = Vec::new();
    if v >= 2 {
        let na = b.u32()?;
        for _ in 0..na {
            aio_reads.push((Oid(b.u64()?), b.u64()?, b.u64()?));
        }
    }
    Ok(ProcRecord {
        local_pid,
        parent_local,
        pgid,
        sid,
        name,
        threads,
        fds,
        entries,
        had_ephemeral_children,
        aio_reads,
    })
}

/// Serializes a thread: registers off the kernel stack, FPU state flushed
/// by IPI (§5.1).
pub fn encode_thread(k: &Kernel, tid: Tid) -> Result<Vec<u8>, SlsError> {
    let t = k.threads.get(&tid).ok_or(SlsError::BadImage("no such thread"))?;
    k.charge.locks(1);
    k.charge.misses(6);
    let mut e = Encoder::new();
    e.record(tag::THREAD, 1, |e| {
        e.u32(t.local_tid.0);
        e.u64(t.sigmask);
        e.u64(t.sigpending);
        e.u8(t.priority as u8);
        e.u64(t.regs.pc);
        e.u64(t.regs.sp);
        for r in t.regs.gp {
            e.u64(r);
        }
        for r in t.regs.fpu {
            e.u64(r);
        }
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a thread record.
pub fn decode_thread(bytes: &[u8]) -> Result<ThreadRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::THREAD, 1)?;
    let local_tid = b.u32()?;
    let sigmask = b.u64()?;
    let sigpending = b.u64()?;
    let priority = b.u8()? as i8;
    let mut regs = Regs { pc: b.u64()?, sp: b.u64()?, ..Regs::default() };
    for r in regs.gp.iter_mut() {
        *r = b.u64()?;
    }
    for r in regs.fpu.iter_mut() {
        *r = b.u64()?;
    }
    Ok(ThreadRecord { local_tid, sigmask, sigpending, priority, regs })
}

/// Serializes an open-file description.
pub fn encode_file(k: &Kernel, fid: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
    let f = k.file(aurora_posix::FileId(fid))?;
    k.charge.locks(1);
    k.charge.misses(5);
    let (kind_byte, target_oid, aux) = match f.kind {
        FileKind::Vnode(v) => (0u8, oids.get(KObj::Vnode(v.0)).expect("vnode mapped").0, 0u8),
        FileKind::Pipe { pipe, end } => (
            1,
            oids.get(KObj::Pipe(pipe)).expect("pipe mapped").0,
            (end == PipeEnd::Read) as u8,
        ),
        FileKind::Socket(s) => (2, oids.get(KObj::Socket(s)).expect("socket mapped").0, 0),
        FileKind::Kqueue(q) => (3, oids.get(KObj::Kqueue(q)).expect("kqueue mapped").0, 0),
        FileKind::Pty { pty, side } => (
            4,
            oids.get(KObj::Pty(pty)).expect("pty mapped").0,
            (side == PtySide::Master) as u8,
        ),
        FileKind::ShmPosix(s) => (5, oids.get(KObj::ShmPosix(s)).expect("shm mapped").0, 0),
        FileKind::Device(d) => (6, d, 0),
    };
    let mut e = Encoder::new();
    e.record(tag::FILE, 1, |e| {
        e.u8(kind_byte);
        e.u64(target_oid);
        e.u8(aux);
        e.u64(f.offset);
        e.u8(flags_bits(f.flags));
        e.bool(f.extsync_disabled);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a file record.
pub fn decode_file(bytes: &[u8]) -> Result<FileRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::FILE, 1)?;
    let kind = b.u8()?;
    let oid = Oid(b.u64()?);
    let aux = b.u8()?;
    let target = match kind {
        0 => FileTarget::Vnode(oid),
        1 => FileTarget::Pipe(oid, aux != 0),
        2 => FileTarget::Socket(oid),
        3 => FileTarget::Kqueue(oid),
        4 => FileTarget::Pty(oid, aux != 0),
        5 => FileTarget::ShmPosix(oid),
        6 => FileTarget::Device(oid.0),
        _ => return Err(SlsError::BadImage("file kind")),
    };
    Ok(FileRecord {
        target,
        offset: b.u64()?,
        flags: b.u8()?,
        extsync_disabled: b.bool()?,
    })
}

/// Serializes a vnode: checkpointing references the inode number instead
/// of the file path, skipping the name cache and `namei` (§5.2).
pub fn encode_vnode(k: &Kernel, ino: u64) -> Result<Vec<u8>, SlsError> {
    let v = k.vfs.vnode(aurora_posix::VnodeId(ino))?;
    k.charge.locks(1);
    k.charge.misses(8);
    let mut e = Encoder::new();
    e.record(tag::VNODE, 1, |e| {
        e.u64(ino);
        match &v.kind {
            VnodeKind::Regular { data } => {
                e.bool(false);
                e.u32(v.nlink);
                e.u32(v.open_refs);
                e.u64(data.len() as u64);
                e.u32(0);
            }
            VnodeKind::Directory { entries } => {
                e.bool(true);
                e.u32(v.nlink);
                e.u32(v.open_refs);
                e.u64(0);
                e.u32(entries.len() as u32);
                for (name, child) in entries {
                    e.str(name);
                    e.u64(child.0);
                }
            }
        }
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a vnode record.
pub fn decode_vnode(bytes: &[u8]) -> Result<VnodeRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::VNODE, 1)?;
    let ino = b.u64()?;
    let is_dir = b.bool()?;
    let nlink = b.u32()?;
    let open_refs = b.u32()?;
    let size = b.u64()?;
    let nd = b.u32()?;
    let mut dirents = Vec::with_capacity(nd as usize);
    for _ in 0..nd {
        dirents.push((b.str()?.to_string(), b.u64()?));
    }
    Ok(VnodeRecord { ino, is_dir, nlink, open_refs, size, dirents })
}

/// Serializes a pipe.
pub fn encode_pipe(k: &Kernel, pipe: u64) -> Result<Vec<u8>, SlsError> {
    let p = k.pipes.get(&pipe).ok_or(SlsError::BadImage("no such pipe"))?;
    k.charge.locks(2);
    k.charge.misses(14);
    let buf: Vec<u8> = p.buffer.iter().copied().collect();
    let mut e = Encoder::new();
    e.record(tag::PIPE, 1, |e| {
        e.u64(p.capacity as u64);
        e.bool(p.reader_open);
        e.bool(p.writer_open);
        e.bytes(&buf);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a pipe record.
pub fn decode_pipe(bytes: &[u8]) -> Result<PipeRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::PIPE, 1)?;
    Ok(PipeRecord {
        capacity: b.u64()?,
        reader_open: b.bool()?,
        writer_open: b.bool()?,
        buffer: b.bytes()?.to_vec(),
    })
}

/// Serializes a socket, parsing its buffers for in-flight control
/// messages (§5.3). The accept queue is omitted: clients retransmit.
pub fn encode_socket(k: &Kernel, sock: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
    let s = k.sockets.get(&sock).ok_or(SlsError::BadImage("no such socket"))?;
    k.charge.locks(2);
    k.charge.misses(15 + (s.recv_buf.len() + s.send_buf.len()) as u64);
    let conv = |msgs: &std::collections::VecDeque<aurora_posix::socket::Message>| {
        msgs.iter()
            .map(|m| {
                (
                    m.data.clone(),
                    m.fds
                        .iter()
                        .map(|f| oids.get(KObj::File(f.0)).expect("in-flight fd mapped"))
                        .collect::<Vec<Oid>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let recv = conv(&s.recv_buf);
    let send = conv(&s.send_buf);
    // A peer outside the group is not persisted: the connection restores
    // unlinked and the remote end re-establishes it (§5.3).
    let peer = s.peer.and_then(|p| oids.get(KObj::Socket(p)));
    let mut e = Encoder::new();
    e.record(tag::SOCKET, 1, |e| {
        e.u8(match s.domain {
            Domain::Unix => 0,
            Domain::Inet => 1,
        });
        e.u8(match s.stype {
            SockType::Stream => 0,
            SockType::Dgram => 1,
        });
        e.bool(s.opts.nodelay);
        e.bool(s.opts.reuseaddr);
        e.bool(s.opts.keepalive);
        match &s.unix_path {
            Some(p) => {
                e.bool(true);
                e.str(p);
            }
            None => e.bool(false),
        }
        e.u32(s.inet.0.ip);
        e.u16(s.inet.0.port);
        e.u32(s.inet.1.ip);
        e.u16(s.inet.1.port);
        e.u8(match s.tcp_state {
            TcpState::Closed => 0,
            TcpState::Listen => 1,
            TcpState::Established => 2,
        });
        e.u32(s.snd_seq);
        e.u32(s.rcv_seq);
        e.opt_u64(peer.map(|p| p.0));
        put_msgs(e, &recv);
        put_msgs(e, &send);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a socket record.
pub fn decode_socket(bytes: &[u8]) -> Result<SocketRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::SOCKET, 1)?;
    Ok(SocketRecord {
        domain: b.u8()?,
        stype: b.u8()?,
        opts: (b.bool()?, b.bool()?, b.bool()?),
        unix_path: if b.bool()? { Some(b.str()?.to_string()) } else { None },
        local: (b.u32()?, b.u16()?),
        remote: (b.u32()?, b.u16()?),
        tcp_state: b.u8()?,
        snd_seq: b.u32()?,
        rcv_seq: b.u32()?,
        peer: b.opt_u64()?.map(Oid),
        recv_buf: get_msgs(&mut b)?,
        send_buf: get_msgs(&mut b)?,
    })
}

/// Serializes a kqueue: every knote is scanned and locked (the slow
/// checkpoint row of Table 4).
pub fn encode_kqueue(k: &Kernel, kq: u64) -> Result<Vec<u8>, SlsError> {
    let q = k.kqueues.get(&kq).ok_or(SlsError::BadImage("no such kqueue"))?;
    k.charge.locks(1);
    k.charge.misses(8);
    k.charge.raw(q.events.len() as u64 * k.charge.model().kevent_ns);
    let mut e = Encoder::new();
    e.record(tag::KQUEUE, 1, |e| {
        e.u32(q.events.len() as u32);
        for ev in &q.events {
            e.u64(ev.ident);
            e.u8(filter_bits(ev.filter));
            e.bool(ev.enabled);
            e.u64(ev.udata);
        }
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a kqueue record.
pub fn decode_kqueue(bytes: &[u8]) -> Result<KqueueRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::KQUEUE, 1)?;
    let n = b.u32()?;
    let mut events = Vec::with_capacity(n as usize);
    for _ in 0..n {
        events.push((b.u64()?, b.u8()?, b.bool()?, b.u64()?));
    }
    Ok(KqueueRecord { events })
}

/// Rebuilds kevents from a record.
pub fn kevents_from(rec: &KqueueRecord) -> Result<Vec<Kevent>, SlsError> {
    rec.events
        .iter()
        .map(|&(ident, f, enabled, udata)| {
            Ok(Kevent { ident, filter: filter_from(f)?, enabled, udata })
        })
        .collect()
}

/// Serializes a pseudoterminal.
pub fn encode_pty(k: &Kernel, pty: u64) -> Result<Vec<u8>, SlsError> {
    let p = k.ptys.get(&pty).ok_or(SlsError::BadImage("no such pty"))?;
    k.charge.locks(2);
    k.charge.misses(28); // termios + queues + tty structure chases
    let input: Vec<u8> = p.input.iter().copied().collect();
    let output: Vec<u8> = p.output.iter().copied().collect();
    let mut e = Encoder::new();
    e.record(tag::PTY, 1, |e| {
        e.u64(p.id);
        e.bool(p.termios.canonical);
        e.bool(p.termios.echo);
        e.u32(p.termios.baud);
        e.bytes(&input);
        e.bytes(&output);
        match p.fg_pgid {
            Some(x) => {
                e.bool(true);
                e.u32(x);
            }
            None => e.bool(false),
        }
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a pty record.
pub fn decode_pty(bytes: &[u8]) -> Result<PtyRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::PTY, 1)?;
    Ok(PtyRecord {
        pts: b.u64()?,
        term: (b.bool()?, b.bool()?),
        baud: b.u32()?,
        input: b.bytes()?.to_vec(),
        output: b.bytes()?.to_vec(),
        fg_pgid: if b.bool()? { Some(b.u32()?) } else { None },
    })
}

/// Serializes a POSIX shm object (includes the time spent shadowing its
/// backing object — charged by the checkpoint pipeline — plus the
/// descriptor bookkeeping here).
pub fn encode_shm_posix(k: &Kernel, id: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
    let s = k.shm.posix.get(&id).ok_or(SlsError::BadImage("no such posix shm"))?;
    k.charge.locks(2);
    k.charge.misses(12);
    let lineage = k.vm.object(s.object)?.lineage;
    let mut e = Encoder::new();
    e.record(tag::SHM_POSIX, 1, |e| {
        e.str(&s.name);
        e.u64(s.pages);
        e.u64(oids.get(KObj::Mem(lineage.0)).expect("shm mem mapped").0);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a POSIX shm record.
pub fn decode_shm_posix(bytes: &[u8]) -> Result<ShmPosixRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::SHM_POSIX, 1)?;
    Ok(ShmPosixRecord {
        name: b.str()?.to_string(),
        pages: b.u64()?,
        mem: Oid(b.u64()?),
    })
}

/// Serializes a SysV shm segment. The global namespace scan is what makes
/// this ~10 µs slower than POSIX shm (Table 4).
pub fn encode_shm_sysv(k: &Kernel, id: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
    let s = k.shm.sysv.get(&id).ok_or(SlsError::BadImage("no such sysv shm"))?;
    k.charge.locks(2);
    k.charge.misses(12);
    k.charge.raw(k.shm.sysv.len() as u64 * k.charge.model().sysv_scan_entry_ns);
    let lineage = k.vm.object(s.object)?.lineage;
    let mut e = Encoder::new();
    e.record(tag::SHM_SYSV, 1, |e| {
        e.i64(s.key);
        e.u64(s.pages);
        e.u64(oids.get(KObj::Mem(lineage.0)).expect("shm mem mapped").0);
        e.u32(s.nattch);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a SysV shm record.
pub fn decode_shm_sysv(bytes: &[u8]) -> Result<ShmSysvRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::SHM_SYSV, 1)?;
    Ok(ShmSysvRecord {
        key: b.i64()?,
        pages: b.u64()?,
        mem: Oid(b.u64()?),
        nattch: b.u32()?,
    })
}

/// Serializes a memory object's metadata (pages are flushed separately).
pub fn encode_mem(
    k: &Kernel,
    obj: aurora_vm::ObjId,
    oids: &OidMap,
) -> Result<Vec<u8>, SlsError> {
    let o = k.vm.object(obj)?;
    k.charge.locks(1);
    k.charge.misses(4);
    let (kind, vnode) = match o.kind {
        ObjKind::Anonymous => (0u8, None),
        ObjKind::Vnode { vnode } => (1, oids.get(KObj::Vnode(vnode))),
        ObjKind::Device { .. } => (2, None),
    };
    let backer = o
        .backer
        .map(|b| {
            let l = k.vm.object(b).expect("backer exists").lineage;
            oids.get(KObj::Mem(l.0)).expect("backer mapped")
        })
        .map(|o| o.0);
    let mut e = Encoder::new();
    e.record(tag::MEM, 1, |e| {
        e.u64(o.size_pages);
        e.u8(kind);
        e.opt_u64(vnode.map(|v| v.0));
        e.opt_u64(backer);
    });
    let out = e.finish_vec();
    k.charge.encode(out.len() as u64);
    Ok(out)
}

/// Decodes a memory object record.
pub fn decode_mem(bytes: &[u8]) -> Result<MemRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::MEM, 1)?;
    Ok(MemRecord {
        size_pages: b.u64()?,
        kind: b.u8()?,
        vnode: b.opt_u64()?.map(Oid),
        backer: b.opt_u64()?.map(Oid),
    })
}

/// Serializes the group manifest.
pub fn encode_manifest(m: &ManifestRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    e.record(tag::MANIFEST, 1, |e| {
        e.u64(m.period_ns);
        e.bool(m.extsync);
        e.u32(m.procs.len() as u32);
        for (oid, local, root) in &m.procs {
            e.u64(oid.0);
            e.u32(*local);
            e.bool(*root);
        }
        e.u32(m.fs_vnodes.len() as u32);
        for v in &m.fs_vnodes {
            e.u64(v.0);
        }
    });
    e.finish_vec()
}

/// Decodes the group manifest.
pub fn decode_manifest(bytes: &[u8]) -> Result<ManifestRecord, SlsError> {
    let mut d = Decoder::new(bytes);
    let (_v, mut b) = d.record(tag::MANIFEST, 1)?;
    let period_ns = b.u64()?;
    let extsync = b.bool()?;
    let n = b.u32()?;
    let mut procs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        procs.push((Oid(b.u64()?), b.u32()?, b.bool()?));
    }
    let nv = b.u32()?;
    let mut fs_vnodes = Vec::with_capacity(nv as usize);
    for _ in 0..nv {
        fs_vnodes.push(Oid(b.u64()?));
    }
    Ok(ManifestRecord { period_ns, extsync, procs, fs_vnodes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = ManifestRecord {
            period_ns: 10_000_000,
            extsync: true,
            procs: vec![(Oid(5), 100, true), (Oid(9), 101, false)],
            fs_vnodes: vec![Oid(11)],
        };
        assert_eq!(decode_manifest(&encode_manifest(&m)).unwrap(), m);
    }

    #[test]
    fn flags_roundtrip() {
        for bits in 0..16u8 {
            assert_eq!(flags_bits(flags_from(bits)), bits);
        }
    }

    #[test]
    fn kqueue_record_roundtrip() {
        let rec = KqueueRecord { events: vec![(1, 0, true, 7), (2, 2, false, 9)] };
        let mut e = Encoder::new();
        e.record(tag::KQUEUE, 1, |e| {
            e.u32(rec.events.len() as u32);
            for ev in &rec.events {
                e.u64(ev.0);
                e.u8(ev.1);
                e.bool(ev.2);
                e.u64(ev.3);
            }
        });
        assert_eq!(decode_kqueue(&e.finish_vec()).unwrap(), rec);
        assert_eq!(kevents_from(&rec).unwrap().len(), 2);
    }
}
