//! The subsystem serializer implementations behind the registry
//! (§5.2): [`posix`] registers the ten POSIX object kinds, [`vm`] the
//! memory-object hierarchy. See [`crate::registry::default_registry`].

pub mod posix;
pub mod vm;
