//! The VM subsystem serializer (§6): memory objects, keyed by lineage
//! so a shadow chain keeps writing the same on-disk object across
//! checkpoints. Flushing batches every object's dirty pages into one
//! charged bulk write; restoring rebuilds chains bottom-up (backer
//! first) and pins the lineage binding to the restored branch.

use crate::checkpoint::Reach;
use crate::error::SlsError;
use crate::oidmap::{tag, KObj, OidMap};
use crate::registry::{AssignCtx, FlushCtx, KObjKind, Rebuild, Serializer, SerializerRegistry};
use crate::restore::RestoreMode;
use crate::serial;
use crate::{LineageBinding, Sls};
use aurora_objstore::{ObjectKind, Oid, PAGE};
use aurora_posix::Kernel;
use aurora_vm::{ObjId, ObjKind};

/// Registers the VM subsystem's serializer.
pub fn register(r: &mut SerializerRegistry) {
    r.register(Box::new(MemSer));
}

struct MemSer;

impl Serializer for MemSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Mem
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.mem_objs.iter().map(|o| o.0).collect())
    }

    /// Memory objects key by lineage, not object id: every shadow in a
    /// chain maps to the chain's single on-disk object.
    fn key_of(&self, k: &Kernel, id: u64) -> Result<KObj, SlsError> {
        Ok(KObj::Mem(k.vm.object(ObjId(id))?.lineage.0))
    }

    /// Besides the OID, assignment publishes the lineage binding to the
    /// pager. An existing (possibly pinned) binding is kept: a restored
    /// branch stays pinned; only brand-new lineages go live.
    fn assign_oid(&self, ctx: &mut AssignCtx<'_>, id: u64) -> Result<Oid, SlsError> {
        let lineage = ctx.kernel.vm.object(ObjId(id))?.lineage.0;
        let oid = ctx.oids.get_or_create(ctx.store, KObj::Mem(lineage))?;
        ctx.lineages.entry(lineage).or_insert_with(|| LineageBinding::live(oid));
        Ok(oid)
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_mem(k, ObjId(id), oids)
    }

    /// Flushes the frozen objects' dirty pages. Chains are collected
    /// top-down; flush BOTTOM-UP so that when two objects of one lineage
    /// hold the same page index (a fork shadow under a system shadow),
    /// the newer version lands last and wins in the store. Each object's
    /// pages go out as one charged bulk write.
    ///
    /// In delta mode each dirty page is diffed against its parent COW
    /// shadow's copy (the page's content at the last checkpoint): the
    /// changed span becomes a sub-page redo record, and only when the
    /// span exceeds the configured cap — or no parent copy is resident —
    /// does the page fall back to a full image. The store demotes any
    /// delta whose base doesn't match the version it would chain on.
    fn flush(&self, ctx: &mut FlushCtx<'_>) -> Result<(), SlsError> {
        let FlushCtx {
            kernel,
            store,
            oids,
            reach,
            pages_flushed,
            bytes_flushed,
            cleaned,
            redo_delta_max,
            lineages,
            redo_records,
            ..
        } = ctx;
        for &obj in reach.mem_objs.iter().rev() {
            if matches!(kernel.vm.object(obj)?.kind, ObjKind::Device { .. }) {
                continue; // device pages are re-injected at restore (§5.3)
            }
            let lineage = kernel.vm.object(obj)?.lineage.0;
            let oid =
                oids.get(KObj::Mem(lineage)).ok_or(SlsError::BadImage("unassigned memory object"))?;
            let mut dirty: Vec<u64> = kernel
                .vm
                .resident_page_indices(obj)?
                .into_iter()
                .filter(|&(_, d)| d)
                .map(|(pi, _)| pi)
                .collect();
            if dirty.is_empty() {
                continue;
            }
            // Flush in page order: LSN assignment becomes a pure function
            // of the dirty set, not of hash-map iteration order.
            dirty.sort_unstable();
            match *redo_delta_max {
                None => {
                    // Full-page mode. Frames travel into the store by
                    // ref: the flush copies zero page bytes on the host.
                    let mut batch: Vec<(u64, aurora_objstore::PageRef)> =
                        Vec::with_capacity(dirty.len());
                    for &pi in &dirty {
                        batch.push((pi, kernel.vm.page_ref(obj, pi)?));
                    }
                    store.write_pages(oid, &batch)?;
                    *pages_flushed += batch.len() as u64;
                    *bytes_flushed += (batch.len() * PAGE) as u64;
                }
                Some(cap) => {
                    let mut batch: Vec<aurora_objstore::RedoWrite> =
                        Vec::with_capacity(dirty.len());
                    for &pi in &dirty {
                        let page = kernel.vm.page_ref(obj, pi)?;
                        let (delta, base_csum) = match kernel.vm.backer_page_ref(obj, pi)? {
                            // Shared frame ⇒ COW never broke ⇒ the page
                            // is byte-identical to its committed parent
                            // copy: a zero-length record marks the page
                            // dirty-but-unchanged at this consistency
                            // point without rewriting any bytes.
                            Some(base) if aurora_objstore::PageRef::ptr_eq(&base, &page) => {
                                (Some((0, Vec::new())), aurora_sim::fnv1a(base.bytes()))
                            }
                            Some(base) => match diff_span(base.bytes(), page.bytes()) {
                                None => (Some((0, Vec::new())), aurora_sim::fnv1a(base.bytes())),
                                Some((off, len)) if len <= cap => {
                                    let payload = page.bytes()[off..off + len].to_vec();
                                    (Some((off as u32, payload)), aurora_sim::fnv1a(base.bytes()))
                                }
                                // Span too wide: a full image is cheaper.
                                Some(_) => (None, 0),
                            },
                            None => (None, 0),
                        };
                        match &delta {
                            Some((_, p)) => {
                                *bytes_flushed += p.len() as u64;
                                *redo_records += 1;
                            }
                            None => *bytes_flushed += PAGE as u64,
                        }
                        batch.push(aurora_objstore::RedoWrite { pindex: pi, page, delta, base_csum });
                    }
                    let pin = lineages.get(&lineage).copied();
                    let (floor, resume) = pin.map(|b| (b.floor, b.resume)).unwrap_or((u64::MAX, 0));
                    store.append_redo_pinned(oid, &batch, floor, resume)?;
                    *pages_flushed += batch.len() as u64;
                }
            }
            for &pi in &dirty {
                kernel.vm.mark_clean(obj, pi)?;
                cleaned.push((obj, pi));
            }
        }
        Ok(())
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Mem, oid).is_some() {
            return Ok(());
        }
        let rec = {
            let store = sls.store.lock();
            serial::decode_mem(store.meta_at(oid, epoch)?)?
        };
        // Bottom-up: the backer first.
        if let Some(b) = rec.backer {
            reg.restore_one(KObjKind::Mem, sls, b, epoch, mode, rb)?;
        }
        let kind = match rec.kind {
            1 => {
                // Vnode-backed: ensure the vnode exists.
                if let Some(voi) = rec.vnode {
                    reg.restore_one(KObjKind::Vnode, sls, voi, epoch, mode, rb)?;
                    ObjKind::Vnode { vnode: rb.require(KObjKind::Vnode, voi)? }
                } else {
                    ObjKind::Anonymous
                }
            }
            2 => ObjKind::Device { dev: 1 }, // re-injected device page (§5.3)
            _ => ObjKind::Anonymous,
        };
        sls.kernel.charge.allocs(1);
        sls.kernel.charge.locks(1);
        let obj = sls.kernel.vm.create_object(kind, rec.size_pages);
        if let Some(b) = rec.backer {
            sls.kernel.vm.set_backer(obj, ObjId(rb.require(KObjKind::Mem, b)?))?;
        }
        // Populate pages.
        if rec.kind != 2 {
            let pages = {
                let store = sls.store.lock();
                store.pages_at(oid, epoch).unwrap_or_default()
            };
            match mode {
                RestoreMode::Full => {
                    let loaded = {
                        let mut store = sls.store.lock();
                        store.read_pages_bulk(oid, epoch, &pages)?
                    };
                    // Installed refs alias the store's page cache: the
                    // restored space shares frames with the store until
                    // its first post-restore write breaks COW.
                    for (pi, data) in loaded {
                        sls.kernel.vm.install_page(obj, pi, data, false)?;
                        rb.pages_read += 1;
                    }
                }
                RestoreMode::Lazy => {
                    for pi in pages {
                        sls.kernel.vm.mark_swapped(obj, pi)?;
                    }
                }
            }
        }
        // Bind the fresh lineage immediately so lazy faults can page in
        // — pinned to this restore's branch: history ≤ epoch plus
        // whatever this instance commits from now on.
        let lineage = sls.kernel.vm.object(obj)?.lineage.0;
        let resume = sls.store.lock().current_epoch();
        sls.lineage_oids.lock().insert(lineage, LineageBinding { oid, floor: epoch, resume });
        // Record before scanning for attached segments — they reference
        // this object back.
        rb.insert(KObjKind::Mem, oid, obj.0);
        // SysV segments attached to this object.
        let sysv_oids: Vec<Oid> = {
            let store = sls.store.lock();
            store
                .objects_at(epoch)?
                .into_iter()
                .filter(|o| store.kind(*o) == Ok(ObjectKind::Posix(tag::SHM_SYSV)))
                .collect()
        };
        for so in sysv_oids {
            let srec = {
                let store = sls.store.lock();
                serial::decode_shm_sysv(store.meta_at(so, epoch)?)?
            };
            if srec.mem == oid {
                reg.restore_one(KObjKind::ShmSysv, sls, so, epoch, mode, rb)?;
            }
        }
        Ok(())
    }

    /// Restored objects rebind by the *new* lineage the kernel assigned.
    fn rebind_key(&self, sls: &Sls, id: u64) -> Result<u64, SlsError> {
        Ok(sls.kernel.vm.object(ObjId(id))?.lineage.0)
    }
}

/// The contiguous byte span where `new` differs from `base`:
/// `Some((offset, len))` covering the first through last differing
/// byte, or `None` when the buffers are identical. One span, not a run
/// list: redo records carry a single `(offset, payload)` and scattered
/// small edits within a page are rare enough that the enclosing span is
/// a good trade against per-run record overhead.
fn diff_span(base: &[u8], new: &[u8]) -> Option<(usize, usize)> {
    debug_assert_eq!(base.len(), new.len());
    let first = base.iter().zip(new).position(|(a, b)| a != b)?;
    let last = base.iter().zip(new).rposition(|(a, b)| a != b).expect("some byte differs");
    Some((first, last - first + 1))
}
