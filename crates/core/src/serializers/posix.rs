//! POSIX object serializers (§5.2–5.3): one [`Serializer`] per kernel
//! object kind, moved out of the old monolithic checkpoint/restore
//! match blocks. Restores recurse through object references (a file
//! restores its target, a socket its peer), so sharing is re-linked by
//! construction; in-flight descriptors inside socket buffers are wired
//! up by the post-restore pass once the whole population exists.

use crate::checkpoint::Reach;
use crate::error::SlsError;
use crate::oidmap::KObj;
use crate::registry::{FlushCtx, KObjKind, Rebuild, Serializer, SerializerRegistry};
use crate::restore::{decode_inherit, RestoreMode};
use crate::serial::{self, FileTarget};
use crate::Sls;
use aurora_objstore::{Oid, PAGE};
use aurora_posix::fd::{Fd, FdTable};
use aurora_posix::file::{FileId, FileKind, OpenFile, PipeEnd, PtySide};
use aurora_posix::kqueue::Kqueue;
use aurora_posix::pipe::Pipe;
use aurora_posix::process::{sig, Process, Thread, ThreadState};
use aurora_posix::pty::{Pty, Termios};
use aurora_posix::shm::{PosixShm, SysvShm};
use aurora_posix::socket::{Domain, InetAddr, Message, SockType, Socket, TcpState};
use aurora_posix::vfs::{Vnode, VnodeKind};
use aurora_posix::{Kernel, Pid, Tid, VnodeId};
use aurora_vm::{ObjId, Prot};

/// Registers the POSIX subsystem's serializers, in serialization order.
pub fn register(r: &mut SerializerRegistry) {
    r.register(Box::new(ProcSer));
    r.register(Box::new(ThreadSer));
    r.register(Box::new(FileSer));
    r.register(Box::new(VnodeSer));
    r.register(Box::new(PipeSer));
    r.register(Box::new(SockSer));
    r.register(Box::new(KqueueSer));
    r.register(Box::new(PtySer));
    r.register(Box::new(ShmPosixSer));
    r.register(Box::new(ShmSysvSer));
}

/// Reads an object's record bytes as of `epoch`.
pub(crate) fn meta(sls: &Sls, oid: Oid, epoch: u64) -> Result<Vec<u8>, SlsError> {
    let store = sls.store.lock();
    Ok(store.meta_at(oid, epoch)?.to_vec())
}

pub(crate) use aurora_sim::hash::fnv1a as fnv;

struct ProcSer;

impl Serializer for ProcSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Proc
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.procs.iter().map(|p| p.0 as u64).collect())
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_proc(k, Pid(id as u32), oids)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Proc, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_proc(&meta(sls, oid, epoch)?)?;
        // Referenced objects first: the descriptor table's files (each
        // recursing into its target) and the map entries' memory chains.
        for (_, foid) in &rec.fds {
            reg.restore_one(KObjKind::File, sls, *foid, epoch, mode, rb)?;
        }
        for e in &rec.entries {
            reg.restore_one(KObjKind::Mem, sls, e.mem, epoch, mode, rb)?;
        }
        // Global pid: reserve the checkpoint-time value when free; the
        // application sees its local pid either way (§5.3).
        let global = if sls.kernel.pid_alloc.reserve(rec.local_pid).is_ok() {
            Pid(rec.local_pid)
        } else {
            Pid(sls.kernel.pid_alloc.alloc())
        };
        rb.pid_ns.insert(rec.local_pid, global.0);
        let space = sls.kernel.vm.create_space();
        for e in &rec.entries {
            let obj = ObjId(rb.require(KObjKind::Mem, e.mem)?);
            sls.kernel.vm.ref_object(obj)?;
            let pages = (e.end - e.start) / aurora_vm::PAGE_SIZE as u64;
            sls.kernel.vm.map(
                space,
                Some(e.start),
                pages,
                Prot(e.prot),
                obj,
                e.offset_pages,
                decode_inherit(e.inherit)?,
            )?;
            if e.sls_exclude {
                sls.kernel.vm.set_sls_exclude(space, e.start, true)?;
            }
        }
        // Threads restore inline: register state belongs to the process
        // image (ThreadSer::restore is deliberately a no-op).
        let mut tids = Vec::with_capacity(rec.threads.len());
        for toid in &rec.threads {
            let trec = serial::decode_thread(&meta(sls, *toid, epoch)?)?;
            let gtid = if sls.kernel.tid_alloc.reserve(trec.local_tid).is_ok() {
                Tid(trec.local_tid)
            } else {
                Tid(sls.kernel.tid_alloc.alloc())
            };
            sls.kernel.threads.insert(
                gtid,
                Thread {
                    tid: gtid,
                    local_tid: Tid(trec.local_tid),
                    pid: global,
                    state: ThreadState::User,
                    sigmask: trec.sigmask,
                    sigpending: trec.sigpending,
                    priority: trec.priority,
                    regs: trec.regs,
                    restarts: 0,
                },
            );
            sls.kernel.charge.allocs(2);
            rb.insert(KObjKind::Thread, *toid, gtid.0 as u64);
            tids.push(gtid);
        }
        let mut fdtable = FdTable::new();
        for (fdno, foid) in &rec.fds {
            let fid = FileId(rb.require(KObjKind::File, *foid)?);
            fdtable.install_at(Fd(*fdno), fid);
            sls.kernel.files.get_mut(&fid).expect("restored").refs += 1;
        }
        // Parents restore before children (manifest order), so the
        // parent's local pid already resolves.
        let parent_global = rec.parent_local.map(|l| Pid(rb.pid_ns.global_of(l)));
        sls.kernel.procs.insert(
            global,
            Process {
                pid: global,
                local_pid: Pid(rec.local_pid),
                ppid: parent_global,
                pgid: Pid(rec.pgid),
                sid: Pid(rec.sid),
                name: rec.name.clone(),
                space,
                fdtable,
                threads: tids,
                children: Vec::new(),
                ns: rb.kernel_ns,
                sigpending: if rec.had_ephemeral_children {
                    // The ephemeral child "exited" from the parent's
                    // point of view (§3).
                    sig::bit(sig::SIGCHLD)
                } else {
                    0
                },
                ephemeral: false,
                dead: false,
            },
        );
        if let Some(pp) = parent_global {
            if let Ok(parent) = sls.kernel.proc_mut(pp) {
                parent.children.push(global);
            }
        }
        // Reissue recorded asynchronous reads (§5.3).
        for (foid, off, len) in &rec.aio_reads {
            let fid = FileId(rb.require(KObjKind::File, *foid)?);
            sls.kernel.aio.issue(global.0, fid, *off, *len, aurora_posix::aio::AioKind::Read);
        }
        sls.kernel.charge.allocs(3);
        sls.kernel.charge.locks(2);
        rb.new_pids.push(global);
        rb.insert(KObjKind::Proc, oid, global.0 as u64);
        Ok(())
    }
}

struct ThreadSer;

impl Serializer for ThreadSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Thread
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.threads.iter().map(|t| t.0 as u64).collect())
    }

    fn encode(&self, k: &Kernel, id: u64, _oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_thread(k, Tid(id as u32))
    }

    fn restore(
        &self,
        _sls: &mut Sls,
        _reg: &SerializerRegistry,
        _oid: Oid,
        _epoch: u64,
        _mode: RestoreMode,
        _rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        // Threads restore with their owning process (ProcSer), which
        // records the oid → tid mapping; a thread has no standalone
        // existence to rebuild.
        Ok(())
    }
}

struct FileSer;

impl Serializer for FileSer {
    fn kind(&self) -> KObjKind {
        KObjKind::File
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.files.clone())
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_file(k, id, oids)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::File, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_file(&meta(sls, oid, epoch)?)?;
        // The target first.
        if let Some((tkind, toid)) = rec.target.kobj() {
            reg.restore_one(tkind, sls, toid, epoch, mode, rb)?;
        }
        let kind = match rec.target {
            FileTarget::Vnode(v) => {
                let ino = VnodeId(rb.require(KObjKind::Vnode, v)?);
                sls.kernel.vfs.open_ref(ino)?;
                FileKind::Vnode(ino)
            }
            FileTarget::Pipe(p, read) => FileKind::Pipe {
                pipe: rb.require(KObjKind::Pipe, p)?,
                end: if read { PipeEnd::Read } else { PipeEnd::Write },
            },
            FileTarget::Socket(s) => FileKind::Socket(rb.require(KObjKind::Socket, s)?),
            FileTarget::Kqueue(q) => FileKind::Kqueue(rb.require(KObjKind::Kqueue, q)?),
            FileTarget::Pty(p, master) => FileKind::Pty {
                pty: rb.require(KObjKind::Pty, p)?,
                side: if master { PtySide::Master } else { PtySide::Slave },
            },
            FileTarget::ShmPosix(s) => FileKind::ShmPosix(rb.require(KObjKind::ShmPosix, s)?),
            FileTarget::Device(d) => FileKind::Device(d),
        };
        let fid = FileId(sls.next_file_id());
        sls.kernel.insert_file(OpenFile {
            id: fid,
            kind,
            offset: rec.offset,
            flags: serial::flags_from(rec.flags),
            refs: 0, // counted as fd slots / in-flight references install
            extsync_disabled: rec.extsync_disabled,
        });
        sls.kernel.charge.allocs(1);
        rb.insert(KObjKind::File, oid, fid.0);
        Ok(())
    }
}

struct VnodeSer;

impl Serializer for VnodeSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Vnode
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.vnodes.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, _oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_vnode(k, id)
    }

    /// Reflushes changed regular-file contents as one batched page write
    /// per vnode.
    fn flush(&self, ctx: &mut FlushCtx<'_>) -> Result<(), SlsError> {
        let FlushCtx { kernel, store, oids, reach, vnode_hash, pages_flushed, bytes_flushed, .. } =
            ctx;
        for &v in &reach.vnodes {
            let vn = kernel.vfs.vnode(VnodeId(v))?;
            let VnodeKind::Regular { data } = &vn.kind else { continue };
            let hash = fnv(data);
            if vnode_hash.get(&VnodeId(v)) == Some(&hash) {
                continue;
            }
            let oid = oids.get(KObj::Vnode(v)).ok_or(SlsError::BadImage("unassigned vnode"))?;
            // File bytes live in the vnode, not in frames; page-align them
            // into arena frames so they enter the cache like VM pages do.
            let mut pages: Vec<(u64, aurora_objstore::PageRef)> =
                Vec::with_capacity(data.len().div_ceil(PAGE));
            let mut off = 0usize;
            while off < data.len() {
                let mut page = [0u8; PAGE];
                let n = (data.len() - off).min(PAGE);
                page[..n].copy_from_slice(&data[off..off + n]);
                pages.push(((off / PAGE) as u64, store.arena().alloc(page)));
                off += n;
            }
            store.write_pages(oid, &pages)?;
            *pages_flushed += pages.len() as u64;
            *bytes_flushed += data.len() as u64;
            vnode_hash.insert(VnodeId(v), hash);
        }
        Ok(())
    }

    fn restore(
        &self,
        sls: &mut Sls,
        _reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        _mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Vnode, oid).is_some() {
            return Ok(());
        }
        let (rec, content) = {
            let mut store = sls.store.lock();
            let rec = serial::decode_vnode(store.meta_at(oid, epoch)?)?;
            let mut content = Vec::new();
            if !rec.is_dir && rec.size > 0 {
                let pages: Vec<u64> = (0..rec.size.div_ceil(PAGE as u64)).collect();
                for (_, page) in store.read_pages_bulk(oid, epoch, &pages)? {
                    content.extend_from_slice(page.bytes());
                    rb.pages_read += 1;
                }
                content.truncate(rec.size as usize);
            }
            (rec, content)
        };
        let kind = if rec.is_dir {
            VnodeKind::Directory {
                entries: rec.dirents.iter().map(|(n, ino)| (n.clone(), VnodeId(*ino))).collect(),
            }
        } else {
            VnodeKind::Regular { data: content }
        };
        sls.kernel.charge.allocs(2);
        sls.kernel.charge.locks(1);
        sls.kernel.vfs.insert_vnode(Vnode {
            id: VnodeId(rec.ino),
            kind,
            nlink: rec.nlink,
            open_refs: 0, // re-counted as descriptions reference it
        });
        rb.insert(KObjKind::Vnode, oid, rec.ino);
        Ok(())
    }
}

struct PipeSer;

impl Serializer for PipeSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Pipe
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.pipes.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, _oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_pipe(k, id)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        _reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        _mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Pipe, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_pipe(&meta(sls, oid, epoch)?)?;
        sls.kernel.charge.allocs(2);
        sls.kernel.charge.locks(1);
        sls.kernel.charge.misses(10);
        let id = sls.kernel.pipes.keys().max().copied().unwrap_or(0) + 1;
        let mut pipe = Pipe::new(id);
        pipe.capacity = rec.capacity as usize;
        pipe.reader_open = rec.reader_open;
        pipe.writer_open = rec.writer_open;
        pipe.buffer.extend(rec.buffer.iter().copied());
        sls.kernel.pipes.insert(id, pipe);
        rb.insert(KObjKind::Pipe, oid, id);
        Ok(())
    }
}

struct SockSer;

impl Serializer for SockSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Socket
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.sockets.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_socket(k, id, oids)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Socket, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_socket(&meta(sls, oid, epoch)?)?;
        sls.kernel.charge.allocs(2);
        sls.kernel.charge.locks(2);
        sls.kernel.charge.misses(14);
        let id = sls.kernel.sockets.keys().max().copied().unwrap_or(0) + 1;
        let mut s = Socket::new(
            id,
            if rec.domain == 0 { Domain::Unix } else { Domain::Inet },
            if rec.stype == 0 { SockType::Stream } else { SockType::Dgram },
        );
        s.opts.nodelay = rec.opts.0;
        s.opts.reuseaddr = rec.opts.1;
        s.opts.keepalive = rec.opts.2;
        s.unix_path = rec.unix_path.clone();
        s.inet = (
            InetAddr { ip: rec.local.0, port: rec.local.1 },
            InetAddr { ip: rec.remote.0, port: rec.remote.1 },
        );
        s.tcp_state = match rec.tcp_state {
            1 => TcpState::Listen,
            2 => TcpState::Established,
            _ => TcpState::Closed,
        };
        s.snd_seq = rec.snd_seq;
        s.rcv_seq = rec.rcv_seq;
        // Buffers; in-flight fds are re-linked by the post-restore pass.
        for (data, _) in &rec.recv_buf {
            s.recv_buf.push_back(Message { data: data.clone(), fds: Vec::new() });
        }
        for (data, _) in &rec.send_buf {
            s.send_buf.push_back(Message { data: data.clone(), fds: Vec::new() });
            s.sent_count += 1;
        }
        sls.kernel.sockets.insert(id, s);
        // Record BEFORE the peer recursion: socket pairs reference each
        // other, and this mapping is what breaks the cycle.
        rb.insert(KObjKind::Socket, oid, id);
        // Link the peer if it is part of the image (a peer outside the
        // group was encoded as None; the remote end re-establishes).
        if let Some(peer_oid) = rec.peer {
            let present = {
                let store = sls.store.lock();
                store.meta_at(peer_oid, epoch).is_ok()
            };
            if present {
                reg.restore_one(KObjKind::Socket, sls, peer_oid, epoch, mode, rb)?;
                let peer_id = rb.require(KObjKind::Socket, peer_oid)?;
                sls.kernel.sockets.get_mut(&id).expect("restored").peer = Some(peer_id);
                sls.kernel.sockets.get_mut(&peer_id).expect("restored").peer = Some(id);
            }
        }
        Ok(())
    }

    /// Restores descriptors in flight inside the buffers (SCM_RIGHTS,
    /// §5.3) and links them in — they may reference sockets carrying
    /// further descriptors, which the fixpoint driver then revisits.
    fn post_restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        let sid = rb.require(KObjKind::Socket, oid)?;
        let rec = serial::decode_socket(&meta(sls, oid, epoch)?)?;
        for (_, fds) in rec.recv_buf.iter().chain(rec.send_buf.iter()) {
            for f in fds {
                reg.restore_one(KObjKind::File, sls, *f, epoch, mode, rb)?;
            }
        }
        let to_fids = |rb: &Rebuild, fds: &[Oid]| -> Result<Vec<FileId>, SlsError> {
            fds.iter().map(|f| Ok(FileId(rb.require(KObjKind::File, *f)?))).collect()
        };
        let mut inflight: Vec<FileId> = Vec::new();
        let sock = sls.kernel.sockets.get_mut(&sid).expect("restored");
        for (i, (_, fds)) in rec.recv_buf.iter().enumerate() {
            let fids = to_fids(rb, fds)?;
            inflight.extend(fids.iter().copied());
            sock.recv_buf[i].fds = fids;
        }
        for (i, (_, fds)) in rec.send_buf.iter().enumerate() {
            let fids = to_fids(rb, fds)?;
            inflight.extend(fids.iter().copied());
            sock.send_buf[i].fds = fids;
        }
        for fid in inflight {
            sls.kernel.files.get_mut(&fid).expect("restored").refs += 1;
        }
        Ok(())
    }
}

struct KqueueSer;

impl Serializer for KqueueSer {
    fn kind(&self) -> KObjKind {
        KObjKind::Kqueue
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.kqueues.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, _oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_kqueue(k, id)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        _reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        _mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Kqueue, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_kqueue(&meta(sls, oid, epoch)?)?;
        // Restore is a bulk insert — cheap compared to the per-knote
        // locking at checkpoint time (Table 4's asymmetry).
        sls.kernel.charge.allocs(1);
        sls.kernel.charge.locks(1);
        sls.kernel.charge.misses(8);
        let id = sls.kernel.kqueues.keys().max().copied().unwrap_or(0) + 1;
        let mut kq = Kqueue::new(id);
        kq.events = serial::kevents_from(&rec)?;
        sls.kernel.kqueues.insert(id, kq);
        rb.insert(KObjKind::Kqueue, oid, id);
        Ok(())
    }
}

struct PtySer;

impl Serializer for PtySer {
    fn kind(&self) -> KObjKind {
        KObjKind::Pty
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.ptys.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, _oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_pty(k, id)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        _reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        _mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::Pty, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_pty(&meta(sls, oid, epoch)?)?;
        // Recreating the device node takes the devfs locks — the slow
        // restore row of Table 4.
        sls.kernel.charge.raw(sls.kernel.charge.model().devfs_create_ns);
        sls.kernel.charge.allocs(2);
        let id = sls.kernel.ptys.keys().max().copied().unwrap_or(0) + 1;
        let mut pty = Pty::new(id);
        pty.termios = Termios { canonical: rec.term.0, echo: rec.term.1, baud: rec.baud };
        pty.input.extend(rec.input.iter().copied());
        pty.output.extend(rec.output.iter().copied());
        pty.fg_pgid = rec.fg_pgid;
        sls.kernel.ptys.insert(id, pty);
        rb.insert(KObjKind::Pty, oid, id);
        Ok(())
    }
}

struct ShmPosixSer;

impl Serializer for ShmPosixSer {
    fn kind(&self) -> KObjKind {
        KObjKind::ShmPosix
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.shm_posix.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_shm_posix(k, id, oids)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::ShmPosix, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_shm_posix(&meta(sls, oid, epoch)?)?;
        reg.restore_one(KObjKind::Mem, sls, rec.mem, epoch, mode, rb)?;
        sls.kernel.charge.allocs(1);
        sls.kernel.charge.locks(2);
        let id = sls.kernel.shm.next_id();
        sls.kernel.shm.posix.insert(
            id,
            PosixShm {
                id,
                name: rec.name.clone(),
                object: ObjId(rb.require(KObjKind::Mem, rec.mem)?),
                pages: rec.pages,
            },
        );
        rb.insert(KObjKind::ShmPosix, oid, id);
        Ok(())
    }
}

struct ShmSysvSer;

impl Serializer for ShmSysvSer {
    fn kind(&self) -> KObjKind {
        KObjKind::ShmSysv
    }

    fn collect(&self, _k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError> {
        Ok(reach.shm_sysv.iter().copied().collect())
    }

    fn encode(&self, k: &Kernel, id: u64, oids: &crate::oidmap::OidMap) -> Result<Vec<u8>, SlsError> {
        serial::encode_shm_sysv(k, id, oids)
    }

    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.get(KObjKind::ShmSysv, oid).is_some() {
            return Ok(());
        }
        let rec = serial::decode_shm_sysv(&meta(sls, oid, epoch)?)?;
        // The SysV key namespace is kernel-global: a segment with this
        // key may already exist from an earlier restore — adopt it.
        if let Some(existing) = sls.kernel.shm.sysv.values().find(|s| s.key == rec.key).map(|s| s.id)
        {
            rb.insert(KObjKind::ShmSysv, oid, existing);
            return Ok(());
        }
        reg.restore_one(KObjKind::Mem, sls, rec.mem, epoch, mode, rb)?;
        sls.kernel.charge.allocs(1);
        sls.kernel.charge.locks(2);
        let id = sls.kernel.shm.next_id();
        sls.kernel.shm.sysv.insert(
            id,
            SysvShm {
                id,
                key: rec.key,
                object: ObjId(rb.require(KObjKind::Mem, rec.mem)?),
                pages: rec.pages,
                nattch: rec.nattch,
            },
        );
        rb.insert(KObjKind::ShmSysv, oid, id);
        Ok(())
    }
}
