//! The checkpoint pipeline (§4–6): quiesce → serialize → shadow → resume
//! → flush → commit, with reversed collapse of retired shadows.

use crate::oidmap::{KObj, OidMap};
use crate::serial;
use crate::{GroupId, SealedBatch, Sls, SlsError};
use aurora_objstore::{ObjectStore, Oid};
use aurora_posix::file::FileKind;
use aurora_posix::{Kernel, Pid, Tid};
use aurora_sim::clock::Stopwatch;
use aurora_vm::{ObjId, ObjKind, SpaceId, PAGE_SIZE};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// What one checkpoint did and cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Store epoch of this checkpoint.
    pub epoch: u64,
    /// First (full) checkpoint of the group?
    pub full: bool,
    /// Total application stop time (quiesce → resume), ns.
    pub stop_time_ns: u64,
    /// Portion spent quiescing, ns.
    pub quiesce_ns: u64,
    /// Portion spent serializing OS state, ns.
    pub os_state_ns: u64,
    /// Portion spent shadowing memory (PTE COW marking + TLB), ns.
    pub shadow_ns: u64,
    /// POSIX objects serialized.
    pub objects: u64,
    /// Pages flushed to the store.
    pub pages_flushed: u64,
    /// Data bytes flushed.
    pub bytes_flushed: u64,
    /// Virtual time at which the checkpoint is durable.
    pub durable_at: u64,
}

/// Everything reachable from a consistency group — the input to the
/// exactly-once serialization scan (§5.2).
#[derive(Debug, Default)]
pub(crate) struct Reach {
    pub procs: Vec<Pid>,
    pub threads: Vec<Tid>,
    pub files: Vec<u64>,
    pub vnodes: BTreeSet<u64>,
    pub pipes: BTreeSet<u64>,
    pub sockets: BTreeSet<u64>,
    pub kqueues: BTreeSet<u64>,
    pub ptys: BTreeSet<u64>,
    pub shm_posix: BTreeSet<u64>,
    pub shm_sysv: BTreeSet<u64>,
    /// Every VM object in every reachable chain, deduplicated.
    pub mem_objs: Vec<ObjId>,
}

impl Reach {
    /// Walks the object graph from the group's persistent processes.
    pub(crate) fn collect(k: &Kernel, pids: &[Pid]) -> Result<Reach, SlsError> {
        let mut r = Reach { procs: pids.to_vec(), ..Reach::default() };
        let mut seen_files: BTreeSet<u64> = BTreeSet::new();
        let mut file_queue: VecDeque<u64> = VecDeque::new();
        let mut seen_mem: BTreeSet<u64> = BTreeSet::new();

        let add_chain = |k: &Kernel, top: ObjId, seen: &mut BTreeSet<u64>, out: &mut Vec<ObjId>,
                             vnodes: &mut BTreeSet<u64>|
         -> Result<(), SlsError> {
            for obj in k.vm.chain_of(top)? {
                if seen.insert(obj.0) {
                    out.push(obj);
                    if let ObjKind::Vnode { vnode } = k.vm.object(obj)?.kind {
                        vnodes.insert(vnode);
                    }
                }
            }
            Ok(())
        };

        for &pid in pids {
            let p = k.proc(pid)?;
            r.threads.extend(p.threads.iter().copied());
            for (_, fid) in p.fdtable.iter() {
                if seen_files.insert(fid.0) {
                    file_queue.push_back(fid.0);
                }
            }
            for entry in k.vm.entries(p.space)? {
                add_chain(k, entry.object, &mut seen_mem, &mut r.mem_objs, &mut r.vnodes)?;
            }
        }

        // Chase files, including descriptors in flight inside socket
        // buffers (SCM_RIGHTS, §5.3) — those can reference further
        // sockets carrying further descriptors.
        while let Some(fid) = file_queue.pop_front() {
            r.files.push(fid);
            let f = k.file(aurora_posix::FileId(fid))?;
            match f.kind {
                FileKind::Vnode(v) => {
                    r.vnodes.insert(v.0);
                }
                FileKind::Pipe { pipe, .. } => {
                    r.pipes.insert(pipe);
                }
                FileKind::Socket(s) => {
                    if r.sockets.insert(s) {
                        let sock = k
                            .sockets
                            .get(&s)
                            .ok_or(SlsError::BadImage("socket missing"))?;
                        for m in sock.recv_buf.iter().chain(sock.send_buf.iter()) {
                            for inflight in &m.fds {
                                if seen_files.insert(inflight.0) {
                                    file_queue.push_back(inflight.0);
                                }
                            }
                        }
                    }
                }
                FileKind::Kqueue(q) => {
                    r.kqueues.insert(q);
                }
                FileKind::Pty { pty, .. } => {
                    r.ptys.insert(pty);
                }
                FileKind::ShmPosix(id) => {
                    r.shm_posix.insert(id);
                    if let Some(shm) = k.shm.posix.get(&id) {
                        add_chain(k, shm.object, &mut seen_mem, &mut r.mem_objs, &mut r.vnodes)?;
                    }
                }
                FileKind::Device(_) => {}
            }
        }

        // The whole file-system namespace: the Aurora FS is itself part
        // of the single level store, so every vnode persists (§5.2).
        for v in k.vfs.vnode_ids() {
            r.vnodes.insert(v.0);
        }

        // SysV segments attached by the group (their objects are already
        // in reachable chains).
        for (id, seg) in &k.shm.sysv {
            if seen_mem.contains(&seg.object.0) {
                r.shm_sysv.insert(*id);
            }
        }
        // POSIX shm reachable purely through a mapping (fd closed after
        // mmap): pick up registry entries whose object we saw.
        for (id, seg) in &k.shm.posix {
            if seen_mem.contains(&seg.object.0) {
                r.shm_posix.insert(*id);
            }
        }
        Ok(r)
    }

    fn assign_oids(
        &self,
        k: &Kernel,
        store: &mut ObjectStore,
        oids: &mut OidMap,
        lineage_oids: &mut HashMap<u64, crate::LineageBinding>,
    ) -> Result<(), SlsError> {
        for &pid in &self.procs {
            oids.get_or_create(store, KObj::Proc(pid.0))?;
        }
        for &tid in &self.threads {
            oids.get_or_create(store, KObj::Thread(tid.0))?;
        }
        for &f in &self.files {
            oids.get_or_create(store, KObj::File(f))?;
        }
        for &v in &self.vnodes {
            oids.get_or_create(store, KObj::Vnode(v))?;
        }
        for &p in &self.pipes {
            oids.get_or_create(store, KObj::Pipe(p))?;
        }
        for &s in &self.sockets {
            oids.get_or_create(store, KObj::Socket(s))?;
        }
        for &q in &self.kqueues {
            oids.get_or_create(store, KObj::Kqueue(q))?;
        }
        for &p in &self.ptys {
            oids.get_or_create(store, KObj::Pty(p))?;
        }
        for &s in &self.shm_posix {
            oids.get_or_create(store, KObj::ShmPosix(s))?;
        }
        for &s in &self.shm_sysv {
            oids.get_or_create(store, KObj::ShmSysv(s))?;
        }
        for &obj in &self.mem_objs {
            let lineage = k.vm.object(obj)?.lineage.0;
            let oid = oids.get_or_create(store, KObj::Mem(lineage))?;
            // Keep an existing (possibly pinned) binding: a restored
            // branch stays pinned; only brand-new lineages get the
            // all-visible live binding.
            lineage_oids.entry(lineage).or_insert_with(|| crate::LineageBinding::live(oid));
        }
        Ok(())
    }
}

impl Sls {
    /// Takes a checkpoint of the group right now (`sls checkpoint` / the
    /// periodic driver). The first checkpoint is full; later ones are
    /// incremental.
    pub fn checkpoint_now(&mut self, gid: GroupId) -> Result<CheckpointStats, SlsError> {
        let pids = self.group_pids(gid)?;
        let persist: Vec<Pid> = pids
            .iter()
            .copied()
            .filter(|&p| self.kernel.proc(p).map(|pr| !pr.ephemeral).unwrap_or(false))
            .collect();
        if persist.is_empty() {
            return Err(SlsError::NoSuchGroup(gid));
        }

        // Backpressure: Aurora waits for a checkpoint to fully persist
        // before initiating another one (§7).
        let (collapse_mode, pending) = {
            let g = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
            (g.opts.collapse_mode, g.pending_durable)
        };
        self.kernel.charge.clock().advance_to(pending);

        let full = self.groups[&gid].epochs.is_empty();
        let clock = self.kernel.charge.clock().clone();
        let sw = Stopwatch::start(&clock);

        // 1. Quiesce every member (ephemeral included) at the kernel
        //    boundary.
        self.kernel.quiesce(&pids)?;
        self.kernel.charge.raw(self.kernel.charge.model().checkpoint_barrier_ns);
        let quiesce_ns = sw.elapsed_ns();

        // 2. Collapse the shadows retired by the previous checkpoint —
        //    their flush is durable thanks to the backpressure wait.
        let spaces: Vec<SpaceId> = persist
            .iter()
            .map(|&p| self.kernel.proc(p).map(|pr| pr.space))
            .collect::<Result<_, _>>()?;
        if !full {
            let mut tops = BTreeSet::new();
            for &space in &spaces {
                for e in self.kernel.vm.entries(space)? {
                    tops.insert(e.object);
                }
            }
            for top in tops {
                // Refusals (short chains, fork shadows in the middle) are
                // expected; corruption is not.
                let _ = self.kernel.vm.collapse_under(top, collapse_mode);
            }
        }

        // 2b. Quiesce asynchronous IO (§5.3): in-flight writes must be
        //     incorporated before the checkpoint counts as complete —
        //     wait them out now; reads stay pending and are recorded for
        //     reissue at restore.
        {
            let member: std::collections::HashSet<u32> =
                persist.iter().map(|p| p.0).collect();
            let pending_writes: Vec<u64> = self
                .kernel
                .aio
                .in_flight()
                .filter(|op| {
                    member.contains(&op.pid)
                        && op.kind == aurora_posix::aio::AioKind::Write
                })
                .map(|op| op.id)
                .collect();
            for id in pending_writes {
                // Device-side completion wait, then fold into the image.
                self.kernel.charge.raw(12_000);
                self.kernel.aio.complete(id, false);
            }
        }

        // 3. Walk the object graph and assign OIDs (exactly-once scan).
        let reach = Reach::collect(&self.kernel, &persist)?;
        {
            let g = self.groups.get_mut(&gid).expect("checked above");
            let mut store = self.store.lock();
            let mut lineages = self.lineage_oids.lock();
            reach.assign_oids(&self.kernel, &mut store, &mut g.oidmap, &mut lineages)?;
        }

        // 4. Serialize every POSIX object into memory buffers.
        let t_serial = Stopwatch::start(&clock);
        let mut buffers: Vec<(Oid, Vec<u8>)> = Vec::new();
        {
            let g = self.groups.get(&gid).expect("checked above");
            let k = &self.kernel;
            let o = &g.oidmap;
            for &pid in &reach.procs {
                buffers.push((o.get(KObj::Proc(pid.0)).expect("assigned"), serial::encode_proc(k, pid, o)?));
            }
            for &tid in &reach.threads {
                buffers.push((o.get(KObj::Thread(tid.0)).expect("assigned"), serial::encode_thread(k, tid)?));
            }
            for &f in &reach.files {
                buffers.push((o.get(KObj::File(f)).expect("assigned"), serial::encode_file(k, f, o)?));
            }
            for &v in &reach.vnodes {
                buffers.push((o.get(KObj::Vnode(v)).expect("assigned"), serial::encode_vnode(k, v)?));
            }
            for &p in &reach.pipes {
                buffers.push((o.get(KObj::Pipe(p)).expect("assigned"), serial::encode_pipe(k, p)?));
            }
            for &s in &reach.sockets {
                buffers.push((o.get(KObj::Socket(s)).expect("assigned"), serial::encode_socket(k, s, o)?));
            }
            for &q in &reach.kqueues {
                buffers.push((o.get(KObj::Kqueue(q)).expect("assigned"), serial::encode_kqueue(k, q)?));
            }
            for &p in &reach.ptys {
                buffers.push((o.get(KObj::Pty(p)).expect("assigned"), serial::encode_pty(k, p)?));
            }
            for &s in &reach.shm_posix {
                buffers.push((o.get(KObj::ShmPosix(s)).expect("assigned"), serial::encode_shm_posix(k, s, o)?));
            }
            for &s in &reach.shm_sysv {
                buffers.push((o.get(KObj::ShmSysv(s)).expect("assigned"), serial::encode_shm_sysv(k, s, o)?));
            }
            for &m in &reach.mem_objs {
                let lineage = k.vm.object(m)?.lineage.0;
                buffers.push((o.get(KObj::Mem(lineage)).expect("assigned"), serial::encode_mem(k, m, o)?));
            }
        }
        let os_state_ns = t_serial.elapsed_ns();

        // 5. System shadowing: one shadow per writable object across the
        //    whole group; COW-mark the frozen pages; TLB shootdown (§6).
        let t_shadow = Stopwatch::start(&clock);
        let stats_before = self.kernel.vm.stats;
        let pairs = self.kernel.vm.system_shadow(&spaces)?;
        for pair in &pairs {
            self.kernel.shm_backmap(pair.old_top, pair.new_top);
        }
        let delta = self.kernel.vm.stats - stats_before;
        let model = self.kernel.charge.model().clone();
        self.kernel.charge.raw(delta.pte_downgrades * model.pte_cow_ns);
        let threads: u64 = reach.threads.len() as u64;
        self.kernel.charge.raw(model.shootdown_ns(threads));
        let shadow_ns = t_shadow.elapsed_ns();

        // 6. Resume the application — end of stop time.
        self.kernel.resume(&pids)?;
        let stop_time_ns = sw.elapsed_ns();

        // 7. Flush concurrently with execution: object metadata, dirty
        //    pages of the frozen objects, and changed vnode contents.
        let mut pages_flushed = 0u64;
        let mut bytes_flushed = 0u64;
        {
            let g = self.groups.get_mut(&gid).expect("checked above");
            let mut store = self.store.lock();
            for (oid, bytes) in &buffers {
                store.set_meta(*oid, bytes)?;
                bytes_flushed += bytes.len() as u64;
            }
            // Frozen memory pages: everything still marked dirty in the
            // reachable (pre-shadow) objects. Chains are collected
            // top-down; flush them BOTTOM-UP so that when two objects of
            // one lineage hold the same page index (a fork shadow under a
            // system shadow), the newer version lands last and wins in
            // the store.
            for &obj in reach.mem_objs.iter().rev() {
                if matches!(self.kernel.vm.object(obj)?.kind, ObjKind::Device { .. }) {
                    continue; // device pages are re-injected at restore (§5.3)
                }
                let lineage = self.kernel.vm.object(obj)?.lineage.0;
                let oid = g.oidmap.get(KObj::Mem(lineage)).expect("assigned");
                let dirty: Vec<u64> = self
                    .kernel
                    .vm
                    .resident_page_indices(obj)?
                    .into_iter()
                    .filter(|&(_, d)| d)
                    .map(|(pi, _)| pi)
                    .collect();
                for pi in dirty {
                    let data = *self.kernel.vm.page_bytes(obj, pi)?;
                    store.write_page(oid, pi, &data)?;
                    self.kernel.vm.mark_clean(obj, pi)?;
                    pages_flushed += 1;
                    bytes_flushed += PAGE_SIZE as u64;
                }
            }
            // Changed file contents.
            for &v in &reach.vnodes {
                let vn = self.kernel.vfs.vnode(aurora_posix::VnodeId(v))?;
                if let aurora_posix::vfs::VnodeKind::Regular { data } = &vn.kind {
                    let hash = fnv(data);
                    if g.vnode_hash.get(&aurora_posix::VnodeId(v)) != Some(&hash) {
                        let oid = g.oidmap.get(KObj::Vnode(v)).expect("assigned");
                        let mut pi = 0u64;
                        let mut off = 0usize;
                        while off < data.len() {
                            let mut page = [0u8; PAGE_SIZE];
                            let n = (data.len() - off).min(PAGE_SIZE);
                            page[..n].copy_from_slice(&data[off..off + n]);
                            store.write_page(oid, pi, &page)?;
                            pages_flushed += 1;
                            bytes_flushed += n as u64;
                            off += n;
                            pi += 1;
                        }
                        g.vnode_hash.insert(aurora_posix::VnodeId(v), hash);
                    }
                }
            }
            // The manifest, every checkpoint (the tree may have changed).
            let manifest = serial::ManifestRecord {
                period_ns: g.opts.period_ns,
                extsync: g.opts.external_synchrony,
                procs: reach
                    .procs
                    .iter()
                    .map(|&p| {
                        let pr = self.kernel.proc(p).expect("member");
                        (
                            g.oidmap.get(KObj::Proc(p.0)).expect("assigned"),
                            pr.local_pid.0,
                            g.roots.contains(&p),
                        )
                    })
                    .collect(),
                fs_vnodes: reach
                    .vnodes
                    .iter()
                    .map(|&v| g.oidmap.get(KObj::Vnode(v)).expect("assigned"))
                    .collect(),
            };
            store.create_object(g.manifest, aurora_objstore::ObjectKind::Posix(crate::oidmap::tag::MANIFEST))?;
            store.set_meta(g.manifest, &serial::encode_manifest(&manifest))?;
        }

        // 8. Seal outbound messages under this checkpoint (external
        //    synchrony, §3) and commit.
        let sealed_counts = self.seal_group_sockets(gid)?;
        let info = {
            let mut store = self.store.lock();
            store.commit()?
        };
        let now = clock.now();
        let g = self.groups.get_mut(&gid).expect("checked above");
        g.epochs.push(info.epoch);
        g.pending_durable = info.durable_at;
        g.last_checkpoint_ns = now;
        if g.opts.external_synchrony {
            g.sealed.push_back(SealedBatch { durable_at: info.durable_at, counts: sealed_counts });
        }

        Ok(CheckpointStats {
            epoch: info.epoch,
            full,
            stop_time_ns,
            quiesce_ns,
            os_state_ns,
            shadow_ns,
            objects: buffers.len() as u64,
            pages_flushed,
            bytes_flushed,
            durable_at: info.durable_at,
        })
    }
}

fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
