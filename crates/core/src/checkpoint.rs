//! Checkpoint entry point and the shared reachability scan (§4–6). The
//! actual work happens in [`crate::pipeline::CheckpointPipeline`]; every
//! per-object-kind operation dispatches through the
//! [`crate::registry::SerializerRegistry`].

use crate::{GroupId, Sls, SlsError};
use aurora_posix::file::FileKind;
use aurora_posix::{Kernel, Pid, Tid};
use aurora_vm::{ObjId, ObjKind};
use std::collections::{BTreeSet, VecDeque};

/// Where and why a checkpoint gave up: the failing stage, how many
/// attempts it got (retries included), and the final error. Recorded in
/// [`CheckpointStats::failure`] when a checkpoint aborts after
/// exhausting its retries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageFailure {
    /// The pipeline stage that failed ("flush", "commit").
    pub stage: &'static str,
    /// Consistency group whose draft epoch rolled back — with several
    /// epochs concurrently in flight, the abort report must say whose.
    pub group: u64,
    /// Attempts made before giving up (first try + retries).
    pub attempts: u32,
    /// The error the final attempt returned.
    pub cause: SlsError,
}

/// What one checkpoint did and cost, with the per-stage breakdown of
/// the pipeline. The first six stage timings sum exactly to
/// [`stop_time_ns`](CheckpointStats::stop_time_ns); all nine sum to
/// [`stage_total_ns`](CheckpointStats::stage_total_ns).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Store epoch of this checkpoint.
    pub epoch: u64,
    /// Consistency group this checkpoint covered.
    pub group: u64,
    /// First (full) checkpoint of the group?
    pub full: bool,
    /// Total application stop time (quiesce → resume), ns.
    pub stop_time_ns: u64,
    /// Stage 1 — quiescing every member, ns.
    pub quiesce_ns: u64,
    /// Stage 2 — collapsing the shadows retired by the previous
    /// checkpoint, ns.
    pub collapse_ns: u64,
    /// Stage 3 — draining in-flight asynchronous writes, ns.
    pub aio_ns: u64,
    /// Stage 4 — serializing OS state (scan + OID assignment + encode),
    /// ns.
    pub os_state_ns: u64,
    /// Stage 5 — shadowing memory (PTE COW marking + TLB), ns.
    pub shadow_ns: u64,
    /// Stage 6 — resuming the application, ns.
    pub resume_ns: u64,
    /// Stage 7 — flushing records and pages, concurrent with execution,
    /// ns.
    pub flush_ns: u64,
    /// Stage 8 — sealing outbound messages (external synchrony), ns.
    pub seal_ns: u64,
    /// Stage 9 — committing the store epoch, ns.
    pub commit_ns: u64,
    /// POSIX objects serialized.
    pub objects: u64,
    /// Pages flushed to the store.
    pub pages_flushed: u64,
    /// Data bytes flushed.
    pub bytes_flushed: u64,
    /// Virtual time at which the checkpoint is durable.
    pub durable_at: u64,
    /// Frames shared (refcount ≥ 2) during the checkpoint, sampled right
    /// after the flush stage: the frozen epoch's pages now aliased by the
    /// store's page cache — proof the flush moved them by reference.
    pub shared_frames: u64,
    /// Transient-error retries spent across the device-facing stages.
    pub retries: u32,
    /// Set when the checkpoint aborted after exhausting retries. The
    /// live world was rolled back and stays checkpointable; `epoch` and
    /// `durable_at` are meaningless when this is `Some`.
    pub failure: Option<StageFailure>,
}

impl CheckpointStats {
    /// True when this checkpoint committed an epoch (no failure).
    pub fn committed(&self) -> bool {
        self.failure.is_none()
    }
    /// The nine pipeline stages with their timings, pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 9] {
        [
            ("quiesce", self.quiesce_ns),
            ("collapse", self.collapse_ns),
            ("aio-drain", self.aio_ns),
            ("serialize", self.os_state_ns),
            ("shadow", self.shadow_ns),
            ("resume", self.resume_ns),
            ("flush", self.flush_ns),
            ("seal", self.seal_ns),
            ("commit", self.commit_ns),
        ]
    }

    /// Total time across all nine stages
    /// (= `stop_time_ns + flush_ns + seal_ns + commit_ns`).
    pub fn stage_total_ns(&self) -> u64 {
        self.stages().iter().map(|(_, ns)| ns).sum()
    }
}

/// Everything reachable from a consistency group — the input to the
/// exactly-once serialization scan (§5.2). Shared by the checkpoint
/// pipeline, the coredump exporter, and the CRIU baseline.
#[derive(Debug, Default)]
pub struct Reach {
    /// Member processes.
    pub procs: Vec<Pid>,
    /// Their threads.
    pub threads: Vec<Tid>,
    /// Reachable open-file descriptions (including in-flight ones).
    pub files: Vec<u64>,
    /// Reachable vnodes plus the whole file-system namespace.
    pub vnodes: BTreeSet<u64>,
    /// Reachable pipes.
    pub pipes: BTreeSet<u64>,
    /// Reachable sockets.
    pub sockets: BTreeSet<u64>,
    /// Reachable kqueues.
    pub kqueues: BTreeSet<u64>,
    /// Reachable pseudoterminals.
    pub ptys: BTreeSet<u64>,
    /// Reachable POSIX shm objects.
    pub shm_posix: BTreeSet<u64>,
    /// Reachable SysV shm segments.
    pub shm_sysv: BTreeSet<u64>,
    /// Every VM object in every reachable chain, deduplicated,
    /// top-down.
    pub mem_objs: Vec<ObjId>,
}

impl Reach {
    /// Walks the object graph from the group's persistent processes.
    pub fn collect(k: &Kernel, pids: &[Pid]) -> Result<Reach, SlsError> {
        let mut r = Reach { procs: pids.to_vec(), ..Reach::default() };
        let mut seen_files: BTreeSet<u64> = BTreeSet::new();
        let mut file_queue: VecDeque<u64> = VecDeque::new();
        let mut seen_mem: BTreeSet<u64> = BTreeSet::new();

        let add_chain = |k: &Kernel, top: ObjId, seen: &mut BTreeSet<u64>, out: &mut Vec<ObjId>,
                             vnodes: &mut BTreeSet<u64>|
         -> Result<(), SlsError> {
            for obj in k.vm.chain_of(top)? {
                if seen.insert(obj.0) {
                    out.push(obj);
                    if let ObjKind::Vnode { vnode } = k.vm.object(obj)?.kind {
                        vnodes.insert(vnode);
                    }
                }
            }
            Ok(())
        };

        for &pid in pids {
            let p = k.proc(pid)?;
            r.threads.extend(p.threads.iter().copied());
            for (_, fid) in p.fdtable.iter() {
                if seen_files.insert(fid.0) {
                    file_queue.push_back(fid.0);
                }
            }
            for entry in k.vm.entries(p.space)? {
                add_chain(k, entry.object, &mut seen_mem, &mut r.mem_objs, &mut r.vnodes)?;
            }
        }

        // Chase files, including descriptors in flight inside socket
        // buffers (SCM_RIGHTS, §5.3) — those can reference further
        // sockets carrying further descriptors.
        while let Some(fid) = file_queue.pop_front() {
            r.files.push(fid);
            let f = k.file(aurora_posix::FileId(fid))?;
            match f.kind {
                FileKind::Vnode(v) => {
                    r.vnodes.insert(v.0);
                }
                FileKind::Pipe { pipe, .. } => {
                    r.pipes.insert(pipe);
                }
                FileKind::Socket(s) => {
                    if r.sockets.insert(s) {
                        let sock = k
                            .sockets
                            .get(&s)
                            .ok_or(SlsError::BadImage("socket missing"))?;
                        for m in sock.recv_buf.iter().chain(sock.send_buf.iter()) {
                            for inflight in &m.fds {
                                if seen_files.insert(inflight.0) {
                                    file_queue.push_back(inflight.0);
                                }
                            }
                        }
                    }
                }
                FileKind::Kqueue(q) => {
                    r.kqueues.insert(q);
                }
                FileKind::Pty { pty, .. } => {
                    r.ptys.insert(pty);
                }
                FileKind::ShmPosix(id) => {
                    r.shm_posix.insert(id);
                    if let Some(shm) = k.shm.posix.get(&id) {
                        add_chain(k, shm.object, &mut seen_mem, &mut r.mem_objs, &mut r.vnodes)?;
                    }
                }
                FileKind::Device(_) => {}
            }
        }

        // The whole file-system namespace: the Aurora FS is itself part
        // of the single level store, so every vnode persists (§5.2).
        for v in k.vfs.vnode_ids() {
            r.vnodes.insert(v.0);
        }

        // SysV segments attached by the group (their objects are already
        // in reachable chains).
        for (id, seg) in &k.shm.sysv {
            if seen_mem.contains(&seg.object.0) {
                r.shm_sysv.insert(*id);
            }
        }
        // POSIX shm reachable purely through a mapping (fd closed after
        // mmap): pick up registry entries whose object we saw.
        for (id, seg) in &k.shm.posix {
            if seen_mem.contains(&seg.object.0) {
                r.shm_posix.insert(*id);
            }
        }
        Ok(r)
    }
}

impl Sls {
    /// Takes a checkpoint of the group right now (`sls checkpoint` / the
    /// periodic driver). The first checkpoint is full; later ones are
    /// incremental.
    pub fn checkpoint_now(&mut self, gid: GroupId) -> Result<CheckpointStats, SlsError> {
        if let Some(stats) = self.breaker_short_circuit(gid) {
            self.last_stats = Some(stats.clone());
            self.last_stats_by_group.insert(gid.0, stats.clone());
            return Ok(stats);
        }
        let stats = crate::pipeline::CheckpointPipeline::new(self, gid)?.run()?;
        self.note_checkpoint_outcome(&stats);
        self.checkpoints_taken += 1;
        self.last_stats = Some(stats.clone());
        self.last_stats_by_group.insert(gid.0, stats.clone());
        self.sample_metrics();
        Ok(stats)
    }
}
