//! The staged checkpoint pipeline (§4–6), made explicit: Quiesce →
//! Collapse → AioDrain → Serialize → Shadow → Resume → Flush → Seal →
//! Commit. Each stage produces a typed output consumed by later stages
//! and is timed back-to-back on the virtual clock, so the per-stage
//! breakdown in [`CheckpointStats`] is exact: the first six stages sum
//! to the application stop time, and all nine sum to
//! [`CheckpointStats::stage_total_ns`].
//!
//! The Serialize and Flush stages dispatch through the
//! [`SerializerRegistry`] — the pipeline knows *when* to serialize, the
//! registry knows *how* each object kind does.

use crate::checkpoint::{CheckpointStats, Reach, StageFailure};
use crate::oidmap::OidMap;
use crate::registry::{AssignCtx, FlushCtx, KObjKind, SerializerRegistry};
use crate::serial;
use crate::{GroupId, LineageBinding, SealedBatch, Sls, SlsError};
use aurora_objstore::{CommitInfo, Oid};
use aurora_posix::{Pid, VnodeId};
use aurora_vm::{CollapseMode, ObjId, SpaceId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Attempts a device-facing stage gets (first try + retries) before the
/// checkpoint aborts and rolls back.
const MAX_ATTEMPTS: u32 = 4;

/// Backoff before retry `k` is `BACKOFF_BASE_NS << (k - 1)`, charged to
/// the virtual clock — deterministic, and visible in the stage timings.
const BACKOFF_BASE_NS: u64 = 50_000;

/// The recorded stage boundaries of one pipeline run: (name, start ns,
/// duration ns), pipeline order. Always recorded (it is nine tuples);
/// both [`CheckpointStats`] and the trace exporter read from it.
#[derive(Default)]
struct StageSpans(Vec<(&'static str, u64, u64)>);

impl StageSpans {
    /// Closes the current stage at the clock's now.
    fn mark(&mut self, clock: &aurora_sim::Clock, last: &mut u64, name: &'static str) {
        let now = clock.now();
        self.0.push((name, *last, now - *last));
        *last = now;
    }
}

/// Output of the Quiesce stage: the frozen membership.
pub struct Quiesced {
    /// Every live member, ephemeral included (all are quiesced).
    pub pids: Vec<Pid>,
    /// The persistent members (what gets serialized).
    pub persist: Vec<Pid>,
    /// The persistent members' address spaces.
    pub spaces: Vec<SpaceId>,
    /// First (full) checkpoint of the group?
    pub full: bool,
}

/// Output of the Serialize stage: the reachability scan and the encoded
/// records, ready to flush.
pub struct Serialized {
    /// Everything reachable from the group (§5.2's exactly-once scan).
    pub reach: Reach,
    /// Encoded records, (OID, record bytes), serialization order.
    pub buffers: Vec<(Oid, Vec<u8>)>,
}

/// Output of the Flush stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlushOut {
    /// Pages written to the store.
    pub pages_flushed: u64,
    /// Data bytes written (records + pages).
    pub bytes_flushed: u64,
}

/// Live-world state the checkpoint mutates before anything commits,
/// captured before the Serialize stage so an abort can restore it.
struct Snapshot {
    oidmap: OidMap,
    vnode_hash: HashMap<VnodeId, u64>,
    lineages: HashMap<u64, LineageBinding>,
}

/// One checkpoint, as an explicit staged pipeline over a group.
pub struct CheckpointPipeline<'a> {
    sls: &'a mut Sls,
    gid: GroupId,
    registry: Arc<SerializerRegistry>,
    collapse_mode: CollapseMode,
    pids: Vec<Pid>,
    persist: Vec<Pid>,
    full: bool,
    /// Pages flush attempts marked clean, kept across retries: an abort
    /// must re-dirty them because their "durable" copies die with the
    /// rolled-back epoch.
    cleaned_pages: Vec<(ObjId, u64)>,
}

impl<'a> CheckpointPipeline<'a> {
    /// Prepares a checkpoint of `gid`: validates membership and applies
    /// backpressure (Aurora waits for the previous checkpoint to fully
    /// persist before initiating another, §7).
    pub fn new(sls: &'a mut Sls, gid: GroupId) -> Result<Self, SlsError> {
        let pids = sls.group_pids(gid)?;
        let persist: Vec<Pid> = pids
            .iter()
            .copied()
            .filter(|&p| sls.kernel.proc(p).map(|pr| !pr.ephemeral).unwrap_or(false))
            .collect();
        if persist.is_empty() {
            return Err(SlsError::NoSuchGroup(gid));
        }
        let (collapse_mode, pending) = {
            let g = sls.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
            (g.opts.collapse_mode, g.pending_durable)
        };
        sls.kernel.charge.clock().advance_to(pending);
        let full = sls.groups[&gid].epochs.is_empty();
        let registry = sls.registry.clone();
        Ok(Self {
            sls,
            gid,
            registry,
            collapse_mode,
            pids,
            persist,
            full,
            cleaned_pages: Vec::new(),
        })
    }

    /// Runs every stage in order and assembles the stats. Stage timings
    /// are cumulative marks off one stopwatch, so they sum exactly.
    ///
    /// The device-facing stages (Flush, Commit) get [`MAX_ATTEMPTS`]
    /// tries with exponential backoff for transient device errors; a
    /// stage that still fails aborts the checkpoint — the uncommitted
    /// epoch is discarded and the live world rolled back — and the
    /// failure is reported in [`CheckpointStats::failure`] rather than
    /// as an `Err`: the machine keeps running and the next checkpoint
    /// starts clean.
    pub fn run(mut self) -> Result<CheckpointStats, SlsError> {
        let clock = self.sls.kernel.charge.clock().clone();
        // Stage boundaries are recorded once into `spans` and consumed by
        // both the stats breakdown and the trace exporter, so the two
        // views of the pipeline cannot drift.
        let t0 = clock.now();
        let mut last = t0;
        let mut spans = StageSpans::default();
        let mut stats = CheckpointStats::default();

        let q = self.quiesce()?;
        spans.mark(&clock, &mut last, "quiesce");
        self.collapse(&q)?;
        spans.mark(&clock, &mut last, "collapse");
        self.aio_drain(&q)?;
        spans.mark(&clock, &mut last, "aio-drain");
        // Serialize is the first stage that mutates shared state (OID
        // assignment, lineage bindings); snapshot just before it.
        let snap = self.snapshot()?;
        let s = self.serialize(&q)?;
        spans.mark(&clock, &mut last, "serialize");
        self.shadow(&q, &s)?;
        spans.mark(&clock, &mut last, "shadow");
        self.resume(&q)?;
        spans.mark(&clock, &mut last, "resume");

        let f = match self.with_retry(&mut stats, |p| p.flush(&s)) {
            Ok(f) => f,
            Err((attempts, cause)) => {
                spans.mark(&clock, &mut last, "flush");
                self.finish_stages(&mut stats, t0, &spans);
                return self.abort(stats, "flush", attempts, cause, snap);
            }
        };
        spans.mark(&clock, &mut last, "flush");
        // The flush handed the frozen frames to the store's page cache
        // by reference — sample the aliasing while it is visible, before
        // post-resume writes break it.
        stats.shared_frames = self.sls.kernel.vm.frame_gauges().shared;
        let sealed = self.seal()?;
        spans.mark(&clock, &mut last, "seal");
        let info = match self.with_retry(&mut stats, |p| p.commit(sealed.clone())) {
            Ok(i) => i,
            Err((attempts, cause)) => {
                spans.mark(&clock, &mut last, "commit");
                self.finish_stages(&mut stats, t0, &spans);
                return self.abort(stats, "commit", attempts, cause, snap);
            }
        };
        spans.mark(&clock, &mut last, "commit");

        stats.epoch = info.epoch;
        stats.full = q.full;
        stats.objects = s.buffers.len() as u64;
        stats.pages_flushed = f.pages_flushed;
        stats.bytes_flushed = f.bytes_flushed;
        stats.durable_at = info.durable_at;
        self.finish_stages(&mut stats, t0, &spans);
        Ok(stats)
    }

    /// Fills the per-stage stats fields from the recorded spans and, when
    /// tracing is on, emits one "pipeline" complete-span per stage plus
    /// the enclosing "checkpoint" parent span.
    fn finish_stages(&self, stats: &mut CheckpointStats, t0: u64, spans: &StageSpans) {
        for &(name, _, dur) in &spans.0 {
            match name {
                "quiesce" => stats.quiesce_ns = dur,
                "collapse" => stats.collapse_ns = dur,
                "aio-drain" => stats.aio_ns = dur,
                "serialize" => stats.os_state_ns = dur,
                "shadow" => stats.shadow_ns = dur,
                "resume" => stats.resume_ns = dur,
                "flush" => stats.flush_ns = dur,
                "seal" => stats.seal_ns = dur,
                "commit" => stats.commit_ns = dur,
                _ => unreachable!("unknown stage {name}"),
            }
        }
        stats.stop_time_ns = stats.quiesce_ns
            + stats.collapse_ns
            + stats.aio_ns
            + stats.os_state_ns
            + stats.shadow_ns
            + stats.resume_ns;
        let trace = self.sls.kernel.charge.trace();
        if trace.is_enabled() {
            let end = spans.0.last().map(|&(_, s, d)| s + d).unwrap_or(t0);
            trace.complete(
                "pipeline",
                "checkpoint",
                t0,
                end - t0,
                &[("epoch", stats.epoch), ("full", stats.full as u64)],
            );
            for &(name, start, dur) in &spans.0 {
                trace.complete("pipeline", name, start, dur, &[]);
                trace.hist(&format!("stage.{name}"), dur);
            }
        }
    }

    /// Captures the live-world state the later stages mutate.
    fn snapshot(&self) -> Result<Snapshot, SlsError> {
        let g = self.sls.groups.get(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        Ok(Snapshot {
            oidmap: g.oidmap.clone(),
            vnode_hash: g.vnode_hash.clone(),
            lineages: self.sls.lineage_oids.lock().clone(),
        })
    }

    /// Runs `op` up to [`MAX_ATTEMPTS`] times, retrying only transient
    /// device errors, with deterministic exponential backoff charged to
    /// the virtual clock. Returns the final error with the attempt
    /// count once retries are exhausted (or immediately for permanent
    /// errors).
    fn with_retry<T>(
        &mut self,
        stats: &mut CheckpointStats,
        mut op: impl FnMut(&mut Self) -> Result<T, SlsError>,
    ) -> Result<T, (u32, SlsError)> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempts < MAX_ATTEMPTS => {
                    stats.retries += 1;
                    let backoff = BACKOFF_BASE_NS << (attempts - 1);
                    let trace = self.sls.kernel.charge.trace();
                    if trace.is_enabled() {
                        trace.instant(
                            "pipeline",
                            "pipeline.retry",
                            &[("attempt", attempts as u64), ("backoff_ns", backoff)],
                        );
                    }
                    self.sls.kernel.charge.raw(backoff);
                }
                Err(e) => return Err((attempts, e)),
            }
        }
    }

    /// Rolls the live world back after a stage exhausted its retries:
    /// the store's uncommitted epoch is discarded (its staged blocks
    /// freed, the epoch number reusable), the group's OID map and vnode
    /// fingerprints and the pager's lineage bindings revert to their
    /// pre-serialize snapshot, and every page a flush attempt marked
    /// clean is dirtied again. The failed checkpoint is reported via
    /// [`CheckpointStats::failure`]; nothing of it remains visible.
    fn abort(
        mut self,
        mut stats: CheckpointStats,
        stage: &'static str,
        attempts: u32,
        cause: SlsError,
        snap: Snapshot,
    ) -> Result<CheckpointStats, SlsError> {
        let trace = self.sls.kernel.charge.trace();
        if trace.is_enabled() {
            trace.instant("pipeline", "pipeline.abort", &[("attempts", attempts as u64)]);
        }
        self.sls.store.lock().abort_epoch();
        if let Some(g) = self.sls.groups.get_mut(&self.gid) {
            g.oidmap = snap.oidmap;
            g.vnode_hash = snap.vnode_hash;
        }
        *self.sls.lineage_oids.lock() = snap.lineages;
        for (obj, pi) in std::mem::take(&mut self.cleaned_pages) {
            // The page may have been shadowed since it was flushed; a
            // non-resident slot has nothing to re-dirty (the dirty copy
            // lives elsewhere in the chain).
            let _ = self.sls.kernel.vm.mark_dirty(obj, pi);
        }
        stats.failure = Some(StageFailure { stage, attempts, cause });
        Ok(stats)
    }

    /// Stage 1 — Quiesce: every member (ephemeral included) stops at
    /// the kernel boundary.
    pub fn quiesce(&mut self) -> Result<Quiesced, SlsError> {
        self.sls.kernel.quiesce(&self.pids)?;
        self.sls.kernel.charge.raw(self.sls.kernel.charge.model().checkpoint_barrier_ns);
        let spaces: Vec<SpaceId> = self
            .persist
            .iter()
            .map(|&p| self.sls.kernel.proc(p).map(|pr| pr.space))
            .collect::<Result<_, _>>()?;
        Ok(Quiesced {
            pids: self.pids.clone(),
            persist: self.persist.clone(),
            spaces,
            full: self.full,
        })
    }

    /// Stage 2 — Collapse: fold the shadows retired by the previous
    /// checkpoint; their flush is durable thanks to the backpressure
    /// wait.
    pub fn collapse(&mut self, q: &Quiesced) -> Result<(), SlsError> {
        if q.full {
            return Ok(());
        }
        let mut tops = BTreeSet::new();
        for &space in &q.spaces {
            for e in self.sls.kernel.vm.entries(space)? {
                tops.insert(e.object);
            }
        }
        for top in tops {
            // Refusals (short chains, fork shadows in the middle) are
            // expected; corruption is not.
            let _ = self.sls.kernel.vm.collapse_under(top, self.collapse_mode);
        }
        Ok(())
    }

    /// Stage 3 — AioDrain: in-flight writes must be incorporated before
    /// the checkpoint counts as complete — wait them out now; reads stay
    /// pending and are recorded for reissue at restore (§5.3).
    pub fn aio_drain(&mut self, q: &Quiesced) -> Result<(), SlsError> {
        let member: HashSet<u32> = q.persist.iter().map(|p| p.0).collect();
        let pending_writes: Vec<u64> = self
            .sls
            .kernel
            .aio
            .in_flight()
            .filter(|op| member.contains(&op.pid) && op.kind == aurora_posix::aio::AioKind::Write)
            .map(|op| op.id)
            .collect();
        for id in pending_writes {
            // Device-side completion wait, then fold into the image.
            self.sls.kernel.charge.raw(12_000);
            self.sls.kernel.aio.complete(id, false);
        }
        Ok(())
    }

    /// Stage 4 — Serialize: walk the object graph once, assign OIDs, and
    /// encode every reachable object into a memory buffer — all through
    /// the registry; no per-kind logic lives here.
    pub fn serialize(&mut self, q: &Quiesced) -> Result<Serialized, SlsError> {
        let reach = Reach::collect(&self.sls.kernel, &q.persist)?;
        let plan: Vec<(KObjKind, Vec<u64>)> = self
            .registry
            .iter()
            .map(|s| Ok((s.kind(), s.collect(&self.sls.kernel, &reach)?)))
            .collect::<Result<_, SlsError>>()?;
        {
            let sls = &mut *self.sls;
            let g = sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
            let mut store = sls.store.lock();
            let mut lineages = sls.lineage_oids.lock();
            let mut ctx = AssignCtx {
                kernel: &sls.kernel,
                store: &mut store,
                oids: &mut g.oidmap,
                lineages: &mut lineages,
            };
            for (kind, ids) in &plan {
                let ser = self.registry.get(*kind)?;
                for &id in ids {
                    ser.assign_oid(&mut ctx, id)?;
                }
            }
        }
        let mut buffers: Vec<(Oid, Vec<u8>)> = Vec::new();
        {
            let g = self.sls.groups.get(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
            let k = &self.sls.kernel;
            for (kind, ids) in &plan {
                let ser = self.registry.get(*kind)?;
                for &id in ids {
                    let key = ser.key_of(k, id)?;
                    let oid =
                        g.oidmap.get(key).ok_or(SlsError::BadImage("object skipped assignment"))?;
                    buffers.push((oid, ser.encode(k, id, &g.oidmap)?));
                }
            }
        }
        Ok(Serialized { reach, buffers })
    }

    /// Stage 5 — Shadow: one system shadow per writable object across
    /// the whole group; COW-mark the frozen pages; TLB shootdown (§6).
    pub fn shadow(&mut self, q: &Quiesced, s: &Serialized) -> Result<(), SlsError> {
        let stats_before = self.sls.kernel.vm.stats;
        let pairs = self.sls.kernel.vm.system_shadow(&q.spaces)?;
        for pair in &pairs {
            self.sls.kernel.shm_backmap(pair.old_top, pair.new_top);
        }
        let delta = self.sls.kernel.vm.stats - stats_before;
        let model = self.sls.kernel.charge.model().clone();
        self.sls.kernel.charge.raw(delta.pte_downgrades * model.pte_cow_ns);
        self.sls.kernel.charge.raw(model.shootdown_ns(s.reach.threads.len() as u64));
        Ok(())
    }

    /// Stage 6 — Resume: the application runs again; stop time ends.
    pub fn resume(&mut self, q: &Quiesced) -> Result<(), SlsError> {
        Ok(self.sls.kernel.resume(&q.pids)?)
    }

    /// Stage 7 — Flush, concurrent with execution: records as one
    /// charged metadata batch, then each kind's bulk data through its
    /// serializer's flush hook, then the group manifest.
    pub fn flush(&mut self, s: &Serialized) -> Result<FlushOut, SlsError> {
        let sls = &mut *self.sls;
        let g = sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        let mut store = sls.store.lock();
        let mut out = FlushOut::default();

        store.set_meta_batch(&s.buffers)?;
        out.bytes_flushed += s.buffers.iter().map(|(_, b)| b.len() as u64).sum::<u64>();

        let mut ctx = FlushCtx {
            kernel: &mut sls.kernel,
            store: &mut store,
            oids: &g.oidmap,
            reach: &s.reach,
            vnode_hash: &mut g.vnode_hash,
            pages_flushed: 0,
            bytes_flushed: 0,
            cleaned: Vec::new(),
        };
        // No `?` inside the hook loop: pages a partial flush marked
        // clean must reach `cleaned_pages` even when a later hook fails,
        // or an abort could not re-dirty them.
        let mut hook_res = Ok(());
        for ser in self.registry.iter() {
            hook_res = ser.flush(&mut ctx);
            if hook_res.is_err() {
                break;
            }
        }
        out.pages_flushed += ctx.pages_flushed;
        out.bytes_flushed += ctx.bytes_flushed;
        let cleaned = ctx.cleaned;
        self.cleaned_pages.extend(cleaned);
        hook_res?;

        // The manifest, every checkpoint (the tree may have changed).
        let manifest = serial::ManifestRecord {
            period_ns: g.opts.period_ns,
            extsync: g.opts.external_synchrony,
            procs: s
                .reach
                .procs
                .iter()
                .map(|&p| {
                    let pr = sls.kernel.proc(p).expect("member");
                    (
                        g.oidmap.get(crate::oidmap::KObj::Proc(p.0)).expect("assigned"),
                        pr.local_pid.0,
                        g.roots.contains(&p),
                    )
                })
                .collect(),
            fs_vnodes: s
                .reach
                .vnodes
                .iter()
                .map(|&v| g.oidmap.get(crate::oidmap::KObj::Vnode(v)).expect("assigned"))
                .collect(),
        };
        store.create_object(
            g.manifest,
            aurora_objstore::ObjectKind::Posix(crate::oidmap::tag::MANIFEST),
        )?;
        store.set_meta(g.manifest, &serial::encode_manifest(&manifest))?;
        Ok(out)
    }

    /// Stage 8 — Seal outbound messages under this checkpoint (external
    /// synchrony, §3).
    pub fn seal(&mut self) -> Result<HashMap<u64, usize>, SlsError> {
        self.sls.seal_group_sockets(self.gid)
    }

    /// Stage 9 — Commit: one compact metadata record; durable once the
    /// data completions it is ordered behind land.
    pub fn commit(&mut self, sealed_counts: HashMap<u64, usize>) -> Result<CommitInfo, SlsError> {
        let info = {
            let mut store = self.sls.store.lock();
            store.commit()?
        };
        let now = self.sls.kernel.charge.clock().now();
        let g = self.sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        g.epochs.push(info.epoch);
        g.pending_durable = info.durable_at;
        g.last_checkpoint_ns = now;
        if g.opts.external_synchrony {
            let trace = self.sls.kernel.charge.trace();
            if trace.is_enabled() {
                trace.instant(
                    "extsync",
                    "extsync.seal",
                    &[
                        ("epoch", info.epoch),
                        ("durable_at", info.durable_at),
                        ("sockets", sealed_counts.len() as u64),
                    ],
                );
            }
            let g = self.sls.groups.get_mut(&self.gid).expect("checked above");
            g.sealed.push_back(SealedBatch {
                epoch: info.epoch,
                durable_at: info.durable_at,
                counts: sealed_counts,
            });
            self.sls.extsync_sealed += 1;
        }
        Ok(info)
    }
}
