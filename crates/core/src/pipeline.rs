//! The staged checkpoint pipeline (§4–6), made explicit: Quiesce →
//! Collapse → AioDrain → Serialize → Shadow → Resume → Flush → Seal →
//! Commit. Each stage produces a typed output consumed by later stages
//! and is timed back-to-back on the virtual clock, so the per-stage
//! breakdown in [`CheckpointStats`] is exact: the first six stages sum
//! to the application stop time, and all nine sum to
//! [`CheckpointStats::stage_total_ns`].
//!
//! The pipeline is sharded by consistency group: a [`GroupRun`] is one
//! group's checkpoint as a resumable state machine over four phases
//! (Stop → Flush → Seal → Commit), every store mutation staged under
//! the group's draft epoch. [`CheckpointPipeline`] drives one run to
//! completion (the single-group path); the
//! [`CheckpointScheduler`](crate::scheduler::CheckpointScheduler)
//! interleaves many runs so group B can quiesce while group A's flush
//! is still in flight.
//!
//! The Serialize and Flush stages dispatch through the
//! [`SerializerRegistry`] — the pipeline knows *when* to serialize, the
//! registry knows *how* each object kind does.

use crate::checkpoint::{CheckpointStats, Reach, StageFailure};
use crate::oidmap::OidMap;
use crate::registry::{AssignCtx, FlushCtx, KObjKind, SerializerRegistry};
use crate::serial;
use crate::{GroupId, LineageBinding, SealedBatch, Sls, SlsError};
use aurora_objstore::{CommitInfo, Oid};
use aurora_posix::{Pid, VnodeId};
use aurora_vm::{CollapseMode, ObjId, SpaceId};
use aurora_sim::rng::{DetRng, Rng};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// How the device-facing stages (Flush, Commit) respond to transient
/// device errors. Part of [`CheckpointConfig`](crate::CheckpointConfig);
/// the defaults reproduce the pipeline's historical fixed constants, so
/// existing schedules are unchanged unless a test or bench opts in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts a stage gets (first try + retries) before the
    /// checkpoint aborts and rolls back.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_ns << (k - 1)`,
    /// charged to the virtual clock — deterministic, and visible in the
    /// stage timings.
    pub backoff_base_ns: u64,
    /// Relative jitter applied to each backoff: the charged wait is
    /// scaled by a factor drawn uniformly from
    /// `[1 - jitter_frac, 1 + jitter_frac]` using the sim's
    /// deterministic PRNG. `0.0` (the default) disables jitter. Jitter
    /// decorrelates the retry clocks of groups hitting the same storm,
    /// so their re-issues don't land on the device in lockstep.
    pub jitter_frac: f64,
    /// Seed for the jitter PRNG; each group derives its own stream from
    /// this and its group id, so schedules stay deterministic per seed.
    pub jitter_seed: u64,
    /// Total retries one checkpoint run may spend across all of its
    /// stages — the *budget*. Exhausting it aborts even if the current
    /// stage has `max_attempts` left. `u32::MAX` (the default) means
    /// the per-stage cap is the only limit.
    pub retry_budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_ns: 50_000,
            jitter_frac: 0.0,
            jitter_seed: 0,
            retry_budget: u32::MAX,
        }
    }
}

/// The recorded stage boundaries of one pipeline run: (name, start ns,
/// duration ns), pipeline order. Always recorded (it is nine tuples);
/// both [`CheckpointStats`] and the trace exporter read from it.
#[derive(Default)]
struct StageSpans(Vec<(&'static str, u64, u64)>);

/// Output of the Quiesce stage: the frozen membership.
pub struct Quiesced {
    /// Every live member, ephemeral included (all are quiesced).
    pub pids: Vec<Pid>,
    /// The persistent members (what gets serialized).
    pub persist: Vec<Pid>,
    /// The persistent members' address spaces.
    pub spaces: Vec<SpaceId>,
    /// First (full) checkpoint of the group?
    pub full: bool,
}

/// Output of the Serialize stage: the reachability scan and the encoded
/// records, ready to flush.
pub struct Serialized {
    /// Everything reachable from the group (§5.2's exactly-once scan).
    pub reach: Reach,
    /// Encoded records, (OID, record bytes), serialization order.
    pub buffers: Vec<(Oid, Vec<u8>)>,
}

/// Output of the Flush stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlushOut {
    /// Pages written to the store.
    pub pages_flushed: u64,
    /// Data bytes written (records + pages).
    pub bytes_flushed: u64,
}

/// Live-world state the checkpoint mutates before anything commits,
/// captured before the Serialize stage so an abort can restore it.
struct Snapshot {
    oidmap: OidMap,
    vnode_hash: HashMap<VnodeId, u64>,
    lineages: HashMap<u64, LineageBinding>,
}

/// Where a [`GroupRun`] is in its checkpoint. The Stop phase runs the
/// first six stages (quiesce → resume) contiguously so the group's stop
/// window stays one closed interval; the later phases are separate steps
/// a scheduler can interleave with other groups' phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Quiesce → Collapse → AioDrain → Serialize → Shadow → Resume.
    Stop,
    /// Flush records and pages, concurrent with execution.
    Flush,
    /// Seal outbound messages (external synchrony).
    Seal,
    /// Commit the group's draft epoch.
    Commit,
    /// Finished (committed or aborted); stats are ready.
    Done,
}

/// One group's checkpoint as a resumable state machine. A `GroupRun`
/// holds no borrow of the [`Sls`], so a scheduler can hold many runs
/// and step them against one world — each [`step`](GroupRun::step)
/// re-stages the store's draft cursor to this group first, so store
/// mutations from interleaved runs land in separate draft epochs.
pub struct GroupRun {
    gid: GroupId,
    registry: Arc<SerializerRegistry>,
    collapse_mode: CollapseMode,
    pids: Vec<Pid>,
    persist: Vec<Pid>,
    full: bool,
    /// Pages flush attempts marked clean, kept across retries: an abort
    /// must re-dirty them because their "durable" copies die with the
    /// rolled-back epoch.
    cleaned_pages: Vec<(ObjId, u64)>,
    spans: StageSpans,
    t0: u64,
    last: u64,
    stats: CheckpointStats,
    snap: Option<Snapshot>,
    q: Option<Quiesced>,
    s: Option<Serialized>,
    fout: FlushOut,
    sealed: Option<HashMap<u64, usize>>,
    phase: Phase,
    /// Backpressure horizon: the Stop phase must not start before the
    /// group's previous checkpoint is durable (§7).
    ready_at: u64,
    /// Retry policy, copied from the world's [`CheckpointConfig`]
    /// (crate::CheckpointConfig) when the run is created.
    retry: RetryPolicy,
    /// Retries this run may still spend (starts at
    /// [`RetryPolicy::retry_budget`]).
    budget_left: u32,
    /// Jitter stream, derived from the policy seed and the group id.
    rng: DetRng,
}

impl GroupRun {
    /// Prepares a checkpoint run of `gid`: validates membership and
    /// records the group's backpressure horizon (Aurora waits for the
    /// previous checkpoint to fully persist before initiating another,
    /// §7). The clock is *not* advanced here — the single-group driver
    /// advances it immediately, a scheduler overlaps the wait with
    /// other groups' phases.
    pub fn new(sls: &mut Sls, gid: GroupId) -> Result<Self, SlsError> {
        let pids = sls.group_pids(gid)?;
        let persist: Vec<Pid> = pids
            .iter()
            .copied()
            .filter(|&p| sls.kernel.proc(p).map(|pr| !pr.ephemeral).unwrap_or(false))
            .collect();
        if persist.is_empty() {
            return Err(SlsError::NoSuchGroup(gid));
        }
        let (collapse_mode, ready_at) = {
            let g = sls.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
            (g.opts.collapse_mode, g.pending_durable)
        };
        let full = sls.groups[&gid].epochs.is_empty();
        let registry = sls.registry.clone();
        let retry = sls.config.retry;
        Ok(Self {
            gid,
            registry,
            collapse_mode,
            pids,
            persist,
            full,
            cleaned_pages: Vec::new(),
            spans: StageSpans::default(),
            t0: 0,
            last: 0,
            stats: CheckpointStats { group: gid.0, ..CheckpointStats::default() },
            snap: None,
            q: None,
            s: None,
            fout: FlushOut::default(),
            sealed: None,
            phase: Phase::Stop,
            ready_at,
            retry,
            budget_left: retry.retry_budget,
            rng: DetRng::seed_from_u64(
                retry.jitter_seed ^ gid.0.wrapping_mul(0x9e3779b97f4a7c15),
            ),
        })
    }

    /// The group this run checkpoints.
    pub fn gid(&self) -> GroupId {
        self.gid
    }

    /// The run's current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True once the run committed or aborted.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Virtual time before which the Stop phase must not start (the
    /// group's previous checkpoint's durability horizon).
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// The finished run's stats. Call only when [`is_done`](Self::is_done).
    pub fn take_stats(self) -> CheckpointStats {
        debug_assert!(self.phase == Phase::Done, "stats taken from an unfinished run");
        self.stats
    }

    /// Closes the current stage at the clock's now.
    fn mark(&mut self, clock: &aurora_sim::Clock, name: &'static str) {
        let now = clock.now();
        self.spans.0.push((name, self.last, now - self.last));
        self.last = now;
    }

    /// Runs the current phase to its boundary and advances. Stage
    /// timings re-anchor at each step so interleaved runs never charge
    /// another group's clock advances to their own stages; within one
    /// step the marks are cumulative off one stopwatch, so they sum
    /// exactly.
    ///
    /// The device-facing phases (Flush, Commit) get
    /// [`RetryPolicy::max_attempts`] tries with exponential backoff for
    /// transient device errors; a
    /// phase that still fails aborts the checkpoint — the group's
    /// uncommitted draft epoch is discarded and the live world rolled
    /// back — and the failure is reported in
    /// [`CheckpointStats::failure`] rather than as an `Err`: the
    /// machine keeps running and the next checkpoint starts clean.
    pub fn step(&mut self, sls: &mut Sls) -> Result<(), SlsError> {
        let clock = sls.kernel.charge.clock().clone();
        match self.phase {
            Phase::Stop => {
                sls.store.lock().stage_for(self.gid.0);
                self.t0 = clock.now();
                self.last = self.t0;
                let q = self.quiesce(sls)?;
                self.mark(&clock, "quiesce");
                self.collapse(sls, &q)?;
                self.mark(&clock, "collapse");
                self.aio_drain(sls, &q)?;
                self.mark(&clock, "aio-drain");
                // Serialize is the first stage that mutates shared state
                // (OID assignment, lineage bindings); snapshot just
                // before it.
                self.snap = Some(self.snapshot(sls)?);
                let s = self.serialize(sls, &q)?;
                self.mark(&clock, "serialize");
                self.shadow(sls, &q, &s)?;
                self.mark(&clock, "shadow");
                self.resume(sls, &q)?;
                self.mark(&clock, "resume");
                self.q = Some(q);
                self.s = Some(s);
                self.phase = Phase::Flush;
            }
            Phase::Flush => {
                sls.store.lock().stage_for(self.gid.0);
                self.last = clock.now();
                let s = self.s.take().expect("serialized in Stop");
                match self.with_retry(sls, |run, sls| run.flush(sls, &s)) {
                    Ok(f) => {
                        self.mark(&clock, "flush");
                        // The flush handed the frozen frames to the
                        // store's page cache by reference — sample the
                        // aliasing while it is visible, before
                        // post-resume writes break it.
                        self.stats.shared_frames = sls.kernel.vm.frame_gauges().shared;
                        self.fout = f;
                        self.s = Some(s);
                        self.phase = Phase::Seal;
                    }
                    Err((attempts, cause)) => {
                        self.mark(&clock, "flush");
                        self.finish_stages(sls);
                        self.abort(sls, "flush", attempts, cause);
                    }
                }
            }
            Phase::Seal => {
                self.last = clock.now();
                let sealed = self.seal(sls)?;
                self.mark(&clock, "seal");
                self.sealed = Some(sealed);
                self.phase = Phase::Commit;
            }
            Phase::Commit => {
                sls.store.lock().stage_for(self.gid.0);
                self.last = clock.now();
                let sealed = self.sealed.take().expect("sealed in Seal");
                match self.with_retry(sls, |run, sls| run.commit(sls, sealed.clone())) {
                    Ok(info) => {
                        self.mark(&clock, "commit");
                        self.stats.epoch = info.epoch;
                        self.stats.full = self.full;
                        self.stats.objects =
                            self.s.as_ref().map(|s| s.buffers.len() as u64).unwrap_or(0);
                        self.stats.pages_flushed = self.fout.pages_flushed;
                        self.stats.bytes_flushed = self.fout.bytes_flushed;
                        self.stats.durable_at = info.durable_at;
                        self.finish_stages(sls);
                        sls.store.lock().stage_for(0);
                        self.phase = Phase::Done;
                    }
                    Err((attempts, cause)) => {
                        self.mark(&clock, "commit");
                        self.finish_stages(sls);
                        self.abort(sls, "commit", attempts, cause);
                    }
                }
            }
            Phase::Done => {}
        }
        Ok(())
    }

    /// Fills the per-stage stats fields from the recorded spans and, when
    /// tracing is on, emits one "pipeline" complete-span per stage plus
    /// the enclosing "checkpoint" parent span.
    fn finish_stages(&mut self, sls: &Sls) {
        let stats = &mut self.stats;
        for &(name, _, dur) in &self.spans.0 {
            match name {
                "quiesce" => stats.quiesce_ns = dur,
                "collapse" => stats.collapse_ns = dur,
                "aio-drain" => stats.aio_ns = dur,
                "serialize" => stats.os_state_ns = dur,
                "shadow" => stats.shadow_ns = dur,
                "resume" => stats.resume_ns = dur,
                "flush" => stats.flush_ns = dur,
                "seal" => stats.seal_ns = dur,
                "commit" => stats.commit_ns = dur,
                _ => unreachable!("unknown stage {name}"),
            }
        }
        stats.stop_time_ns = stats.quiesce_ns
            + stats.collapse_ns
            + stats.aio_ns
            + stats.os_state_ns
            + stats.shadow_ns
            + stats.resume_ns;
        let trace = sls.kernel.charge.trace();
        if trace.is_enabled() {
            let end = self.spans.0.last().map(|&(_, s, d)| s + d).unwrap_or(self.t0);
            trace.complete(
                "pipeline",
                "checkpoint",
                self.t0,
                end - self.t0,
                &[
                    ("group", self.gid.0),
                    ("epoch", stats.epoch),
                    ("full", stats.full as u64),
                ],
            );
            for &(name, start, dur) in &self.spans.0 {
                trace.complete(
                    "pipeline",
                    name,
                    start,
                    dur,
                    &[("group", self.gid.0), ("epoch", stats.epoch)],
                );
                trace.hist(&format!("stage.{name}"), dur);
            }
        }
    }

    /// Captures the live-world state the later stages mutate.
    fn snapshot(&self, sls: &Sls) -> Result<Snapshot, SlsError> {
        let g = sls.groups.get(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        Ok(Snapshot {
            oidmap: g.oidmap.clone(),
            vnode_hash: g.vnode_hash.clone(),
            lineages: sls.lineage_oids.lock().clone(),
        })
    }

    /// Runs `op` up to [`RetryPolicy::max_attempts`] times, retrying
    /// only transient device errors, with deterministic (optionally
    /// jittered) exponential backoff charged to the virtual clock. A
    /// retry also consumes one unit of the run's shared
    /// [`RetryPolicy::retry_budget`]; once the budget is spent every
    /// further transient error is final. Returns the final error with
    /// the attempt count once retries are exhausted (or immediately for
    /// permanent errors).
    fn with_retry<T>(
        &mut self,
        sls: &mut Sls,
        mut op: impl FnMut(&mut Self, &mut Sls) -> Result<T, SlsError>,
    ) -> Result<T, (u32, SlsError)> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op(self, sls) {
                Ok(v) => return Ok(v),
                Err(e)
                    if e.is_transient()
                        && attempts < self.retry.max_attempts
                        && self.budget_left > 0 =>
                {
                    self.stats.retries += 1;
                    self.budget_left -= 1;
                    let mut backoff = self.retry.backoff_base_ns << (attempts - 1);
                    if self.retry.jitter_frac > 0.0 {
                        let scale = 1.0 + self.retry.jitter_frac * (2.0 * self.rng.gen_f64() - 1.0);
                        backoff = (backoff as f64 * scale) as u64;
                    }
                    let trace = sls.kernel.charge.trace();
                    if trace.is_enabled() {
                        trace.instant(
                            "pipeline",
                            "pipeline.retry",
                            &[
                                ("group", self.gid.0),
                                ("attempt", attempts as u64),
                                ("backoff_ns", backoff),
                            ],
                        );
                    }
                    sls.kernel.charge.raw(backoff);
                }
                Err(e) => return Err((attempts, e)),
            }
        }
    }

    /// Rolls the live world back after a stage exhausted its retries:
    /// the group's uncommitted draft epoch is discarded (its staged
    /// blocks freed), the group's OID map and vnode fingerprints and
    /// the pager's lineage bindings revert to their pre-serialize
    /// snapshot, and every page a flush attempt marked clean is dirtied
    /// again. Other groups' in-flight drafts are untouched. The failed
    /// checkpoint is reported via [`CheckpointStats::failure`]; nothing
    /// of it remains visible.
    fn abort(&mut self, sls: &mut Sls, stage: &'static str, attempts: u32, cause: SlsError) {
        let trace = sls.kernel.charge.trace();
        if trace.is_enabled() {
            trace.instant(
                "pipeline",
                "pipeline.abort",
                &[("group", self.gid.0), ("attempts", attempts as u64)],
            );
        }
        {
            let mut store = sls.store.lock();
            store.abort_epoch_for(self.gid.0);
            store.stage_for(0);
        }
        if let Some(snap) = self.snap.take() {
            if let Some(g) = sls.groups.get_mut(&self.gid) {
                g.oidmap = snap.oidmap;
                g.vnode_hash = snap.vnode_hash;
            }
            *sls.lineage_oids.lock() = snap.lineages;
        }
        for (obj, pi) in std::mem::take(&mut self.cleaned_pages) {
            // The page may have been shadowed since it was flushed; a
            // non-resident slot has nothing to re-dirty (the dirty copy
            // lives elsewhere in the chain).
            let _ = sls.kernel.vm.mark_dirty(obj, pi);
        }
        self.stats.failure = Some(StageFailure { stage, group: self.gid.0, attempts, cause });
        self.phase = Phase::Done;
    }

    /// Stage 1 — Quiesce: every member (ephemeral included) stops at
    /// the kernel boundary. Only this group stops; the rest of the
    /// machine — including other groups' in-flight flushes — keeps
    /// going.
    fn quiesce(&mut self, sls: &mut Sls) -> Result<Quiesced, SlsError> {
        sls.kernel.quiesce_group(&self.pids, self.gid.0)?;
        sls.kernel.charge.raw(sls.kernel.charge.model().checkpoint_barrier_ns);
        let spaces: Vec<SpaceId> = self
            .persist
            .iter()
            .map(|&p| sls.kernel.proc(p).map(|pr| pr.space))
            .collect::<Result<_, _>>()?;
        Ok(Quiesced {
            pids: self.pids.clone(),
            persist: self.persist.clone(),
            spaces,
            full: self.full,
        })
    }

    /// Stage 2 — Collapse: fold the shadows retired by the previous
    /// checkpoint; their flush is durable thanks to the backpressure
    /// wait.
    fn collapse(&mut self, sls: &mut Sls, q: &Quiesced) -> Result<(), SlsError> {
        if q.full {
            return Ok(());
        }
        let mut tops = BTreeSet::new();
        for &space in &q.spaces {
            for e in sls.kernel.vm.entries(space)? {
                tops.insert(e.object);
            }
        }
        for top in tops {
            // Refusals (short chains, fork shadows in the middle) are
            // expected; corruption is not.
            let _ = sls.kernel.vm.collapse_under(top, self.collapse_mode);
        }
        Ok(())
    }

    /// Stage 3 — AioDrain: in-flight writes must be incorporated before
    /// the checkpoint counts as complete — wait them out now; reads stay
    /// pending and are recorded for reissue at restore (§5.3).
    fn aio_drain(&mut self, sls: &mut Sls, q: &Quiesced) -> Result<(), SlsError> {
        let member: HashSet<u32> = q.persist.iter().map(|p| p.0).collect();
        let pending_writes: Vec<u64> = sls
            .kernel
            .aio
            .in_flight()
            .filter(|op| member.contains(&op.pid) && op.kind == aurora_posix::aio::AioKind::Write)
            .map(|op| op.id)
            .collect();
        for id in pending_writes {
            // Device-side completion wait, then fold into the image.
            sls.kernel.charge.raw(12_000);
            sls.kernel.aio.complete(id, false);
        }
        Ok(())
    }

    /// Stage 4 — Serialize: walk the object graph once, assign OIDs, and
    /// encode every reachable object into a memory buffer — all through
    /// the registry; no per-kind logic lives here.
    fn serialize(&mut self, sls: &mut Sls, q: &Quiesced) -> Result<Serialized, SlsError> {
        let reach = Reach::collect(&sls.kernel, &q.persist)?;
        let plan: Vec<(KObjKind, Vec<u64>)> = self
            .registry
            .iter()
            .map(|s| Ok((s.kind(), s.collect(&sls.kernel, &reach)?)))
            .collect::<Result<_, SlsError>>()?;
        {
            let g = sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
            let mut store = sls.store.lock();
            let mut lineages = sls.lineage_oids.lock();
            let mut ctx = AssignCtx {
                kernel: &sls.kernel,
                store: &mut store,
                oids: &mut g.oidmap,
                lineages: &mut lineages,
            };
            for (kind, ids) in &plan {
                let ser = self.registry.get(*kind)?;
                for &id in ids {
                    ser.assign_oid(&mut ctx, id)?;
                }
            }
        }
        let mut buffers: Vec<(Oid, Vec<u8>)> = Vec::new();
        {
            let g = sls.groups.get(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
            let k = &sls.kernel;
            for (kind, ids) in &plan {
                let ser = self.registry.get(*kind)?;
                for &id in ids {
                    let key = ser.key_of(k, id)?;
                    let oid =
                        g.oidmap.get(key).ok_or(SlsError::BadImage("object skipped assignment"))?;
                    buffers.push((oid, ser.encode(k, id, &g.oidmap)?));
                }
            }
        }
        Ok(Serialized { reach, buffers })
    }

    /// Stage 5 — Shadow: one system shadow per writable object across
    /// the whole group; COW-mark the frozen pages; TLB shootdown (§6).
    /// The frozen page count is attributed to the group in the frame
    /// arena's per-group shadow gauges.
    fn shadow(&mut self, sls: &mut Sls, q: &Quiesced, s: &Serialized) -> Result<(), SlsError> {
        let stats_before = sls.kernel.vm.stats;
        let pairs = sls.kernel.vm.system_shadow(&q.spaces)?;
        for pair in &pairs {
            sls.kernel.shm_backmap(pair.old_top, pair.new_top);
        }
        let delta = sls.kernel.vm.stats - stats_before;
        let model = sls.kernel.charge.model().clone();
        sls.kernel.charge.raw(delta.pte_downgrades * model.pte_cow_ns);
        sls.kernel.charge.raw(model.shootdown_ns(s.reach.threads.len() as u64));
        sls.store.lock().arena().note_group_shadow(self.gid.0, delta.pte_downgrades);
        Ok(())
    }

    /// Stage 6 — Resume: the application runs again; stop time ends.
    fn resume(&mut self, sls: &mut Sls, q: &Quiesced) -> Result<(), SlsError> {
        Ok(sls.kernel.resume(&q.pids)?)
    }

    /// Stage 7 — Flush, concurrent with execution: records as one
    /// charged metadata batch, then each kind's bulk data through its
    /// serializer's flush hook, then the group manifest.
    fn flush(&mut self, sls: &mut Sls, s: &Serialized) -> Result<FlushOut, SlsError> {
        let g = sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        let mut store = sls.store.lock();
        let mut out = FlushOut::default();

        store.set_meta_batch(&s.buffers)?;
        out.bytes_flushed += s.buffers.iter().map(|(_, b)| b.len() as u64).sum::<u64>();

        let mut ctx = FlushCtx {
            kernel: &mut sls.kernel,
            store: &mut store,
            oids: &g.oidmap,
            reach: &s.reach,
            vnode_hash: &mut g.vnode_hash,
            pages_flushed: 0,
            bytes_flushed: 0,
            cleaned: Vec::new(),
            redo_delta_max: match sls.config.checkpoint_mode {
                crate::CheckpointMode::FullPage => None,
                crate::CheckpointMode::Delta => Some(sls.config.redo_delta_max),
            },
            lineages: sls.lineage_oids.lock().clone(),
            redo_records: 0,
        };
        // No `?` inside the hook loop: pages a partial flush marked
        // clean must reach `cleaned_pages` even when a later hook fails,
        // or an abort could not re-dirty them.
        let mut hook_res = Ok(());
        for ser in self.registry.iter() {
            hook_res = ser.flush(&mut ctx);
            if hook_res.is_err() {
                break;
            }
        }
        out.pages_flushed += ctx.pages_flushed;
        out.bytes_flushed += ctx.bytes_flushed;
        let cleaned = ctx.cleaned;
        self.cleaned_pages.extend(cleaned);
        hook_res?;

        // The manifest, every checkpoint (the tree may have changed).
        let manifest = serial::ManifestRecord {
            period_ns: g.opts.period_ns,
            extsync: g.opts.external_synchrony,
            procs: s
                .reach
                .procs
                .iter()
                .map(|&p| {
                    let pr = sls.kernel.proc(p).expect("member");
                    (
                        g.oidmap.get(crate::oidmap::KObj::Proc(p.0)).expect("assigned"),
                        pr.local_pid.0,
                        g.roots.contains(&p),
                    )
                })
                .collect(),
            fs_vnodes: s
                .reach
                .vnodes
                .iter()
                .map(|&v| g.oidmap.get(crate::oidmap::KObj::Vnode(v)).expect("assigned"))
                .collect(),
        };
        store.create_object(
            g.manifest,
            aurora_objstore::ObjectKind::Posix(crate::oidmap::tag::MANIFEST),
        )?;
        store.set_meta(g.manifest, &serial::encode_manifest(&manifest))?;
        Ok(out)
    }

    /// Stage 8 — Seal outbound messages under this checkpoint (external
    /// synchrony, §3).
    fn seal(&mut self, sls: &mut Sls) -> Result<HashMap<u64, usize>, SlsError> {
        sls.seal_group_sockets(self.gid)
    }

    /// Stage 9 — Commit: one compact metadata record for this group's
    /// draft; durable once the data completions *this draft* is ordered
    /// behind land — other groups' slower flushes do not extend the
    /// barrier.
    fn commit(&mut self, sls: &mut Sls, sealed_counts: HashMap<u64, usize>) -> Result<CommitInfo, SlsError> {
        let info = {
            let mut store = sls.store.lock();
            store.commit_for(self.gid.0)?
        };
        let now = sls.kernel.charge.clock().now();
        let g = sls.groups.get_mut(&self.gid).ok_or(SlsError::NoSuchGroup(self.gid))?;
        g.epochs.push(info.epoch);
        g.pending_durable = info.durable_at;
        g.last_checkpoint_ns = now;
        if g.opts.external_synchrony {
            let trace = sls.kernel.charge.trace();
            if trace.is_enabled() {
                trace.instant(
                    "extsync",
                    "extsync.seal",
                    &[
                        ("epoch", info.epoch),
                        ("group", self.gid.0),
                        ("durable_at", info.durable_at),
                        ("sockets", sealed_counts.len() as u64),
                    ],
                );
            }
            let g = sls.groups.get_mut(&self.gid).expect("checked above");
            g.sealed.push_back(SealedBatch {
                epoch: info.epoch,
                durable_at: info.durable_at,
                sealed_at: now,
                counts: sealed_counts,
            });
            sls.extsync_sealed += 1;
        }
        Ok(info)
    }
}

/// One checkpoint driven to completion, the single-group path: applies
/// the backpressure wait immediately and steps the [`GroupRun`] through
/// all four phases back-to-back.
pub struct CheckpointPipeline<'a> {
    sls: &'a mut Sls,
    run: GroupRun,
}

impl<'a> CheckpointPipeline<'a> {
    /// Prepares a checkpoint of `gid` and waits out the group's previous
    /// checkpoint's durability (§7's backpressure).
    pub fn new(sls: &'a mut Sls, gid: GroupId) -> Result<Self, SlsError> {
        let run = GroupRun::new(sls, gid)?;
        sls.kernel.charge.clock().advance_to(run.ready_at());
        Ok(Self { sls, run })
    }

    /// Runs every phase in order and assembles the stats.
    pub fn run(mut self) -> Result<CheckpointStats, SlsError> {
        while !self.run.is_done() {
            self.run.step(self.sls)?;
        }
        Ok(self.run.take_stats())
    }
}
