//! The per-object serializer registry (§5.2).
//!
//! Every [`KObj`] kind has exactly one [`Serializer`]: a trait object
//! bundling the hooks the checkpoint/restore machinery needs — discovery
//! (`collect`), OID assignment (`assign_oid`), record serialization
//! (`encode`), bulk-data flushing (`flush`), and rebuilding the kernel
//! object (`restore` / `post_restore`). The POSIX and VM subsystems
//! register their serializers into a [`SerializerRegistry`];
//! `checkpoint_now`, `restore_image`, `sls send`/`recv`, the coredump
//! exporter, and the CRIU baseline all dispatch through it instead of
//! hard-coding per-type loops.
//!
//! Adding a new POSIX object type means writing one `Serializer` impl
//! and registering it — no checkpoint or restore code changes.

use crate::checkpoint::Reach;
use crate::error::SlsError;
use crate::oidmap::{KObj, OidMap};
use crate::restore::RestoreMode;
use crate::{LineageBinding, Sls};
use aurora_objstore::{ObjectStore, Oid};
use aurora_posix::ids::PidNamespace;
use aurora_posix::{Kernel, Pid, VnodeId};
use std::collections::HashMap;

/// The kinds of kernel objects the single level store persists, in
/// serialization order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KObjKind {
    /// Process.
    Proc,
    /// Thread.
    Thread,
    /// Open-file description.
    File,
    /// Vnode.
    Vnode,
    /// Pipe.
    Pipe,
    /// Socket.
    Socket,
    /// Kqueue.
    Kqueue,
    /// Pseudoterminal pair.
    Pty,
    /// POSIX shared memory object.
    ShmPosix,
    /// SysV shared memory segment.
    ShmSysv,
    /// Memory (VM) object, keyed by lineage.
    Mem,
}

impl KObjKind {
    /// Builds the [`OidMap`] key for a kernel id of this kind. For `Mem`
    /// the id must already be a *lineage* (see [`Serializer::key_of`]).
    pub fn key(self, id: u64) -> KObj {
        match self {
            KObjKind::Proc => KObj::Proc(id as u32),
            KObjKind::Thread => KObj::Thread(id as u32),
            KObjKind::File => KObj::File(id),
            KObjKind::Vnode => KObj::Vnode(id),
            KObjKind::Pipe => KObj::Pipe(id),
            KObjKind::Socket => KObj::Socket(id),
            KObjKind::Kqueue => KObj::Kqueue(id),
            KObjKind::Pty => KObj::Pty(id),
            KObjKind::ShmPosix => KObj::ShmPosix(id),
            KObjKind::ShmSysv => KObj::ShmSysv(id),
            KObjKind::Mem => KObj::Mem(id),
        }
    }
}

/// State handed to [`Serializer::assign_oid`].
pub struct AssignCtx<'a> {
    /// The kernel being checkpointed.
    pub kernel: &'a Kernel,
    /// The object store (for OID allocation).
    pub store: &'a mut ObjectStore,
    /// The group's kernel-object → OID mapping.
    pub oids: &'a mut OidMap,
    /// The pager's lineage → binding map.
    pub lineages: &'a mut HashMap<u64, LineageBinding>,
}

/// State handed to [`Serializer::flush`] during the pipeline's Flush
/// stage (after the application has resumed).
pub struct FlushCtx<'a> {
    /// The kernel (mutable: flushing marks pages clean).
    pub kernel: &'a mut Kernel,
    /// The object store.
    pub store: &'a mut ObjectStore,
    /// The group's OID mapping (read-only; assignment already happened).
    pub oids: &'a OidMap,
    /// The reachability scan this checkpoint serialized.
    pub reach: &'a Reach,
    /// Content fingerprints of flushed vnodes (flush only what changed).
    pub vnode_hash: &'a mut HashMap<VnodeId, u64>,
    /// Running count of pages flushed (updated by hooks).
    pub pages_flushed: u64,
    /// Running count of data bytes flushed (updated by hooks).
    pub bytes_flushed: u64,
    /// Every (object, page) a hook marked clean. The pipeline keeps this
    /// across retries so an aborted checkpoint can re-dirty the pages —
    /// their "durable" copies die with the rolled-back epoch.
    pub cleaned: Vec<(aurora_vm::ObjId, u64)>,
    /// Delta-checkpoint policy: `None` flushes full page images; `Some`
    /// emits sub-page redo records with the contained payload cap (see
    /// [`CheckpointConfig::redo_delta_max`](crate::CheckpointConfig)).
    pub redo_delta_max: Option<usize>,
    /// Lineage bindings at flush time: a restored branch's floor/resume
    /// pin its redo chains to branch-visible versions.
    pub lineages: HashMap<u64, crate::LineageBinding>,
    /// Redo records appended by this flush (delta path only).
    pub redo_records: u64,
}

/// Transient state while rebuilding one image: restored kernel ids per
/// (kind, OID), plus the cross-cutting restore bookkeeping.
#[derive(Default)]
pub struct Rebuild {
    ids: HashMap<KObjKind, HashMap<Oid, u64>>,
    /// Pages read from the store during the restore.
    pub pages_read: u64,
    /// The pid namespace under construction (local → global).
    pub(crate) pid_ns: PidNamespace,
    /// The kernel namespace id the restored processes live in.
    pub(crate) kernel_ns: u32,
    /// New global pids, manifest order (roots first).
    pub(crate) new_pids: Vec<Pid>,
}

impl Rebuild {
    /// The restored kernel id for `oid`, if it was restored.
    pub fn get(&self, kind: KObjKind, oid: Oid) -> Option<u64> {
        self.ids.get(&kind)?.get(&oid).copied()
    }

    /// Like [`get`](Rebuild::get), but a missing entry is a corrupt
    /// image.
    pub fn require(&self, kind: KObjKind, oid: Oid) -> Result<u64, SlsError> {
        self.get(kind, oid).ok_or(SlsError::BadImage("dangling object reference"))
    }

    /// Records that `oid` was restored as kernel id `id`.
    pub fn insert(&mut self, kind: KObjKind, oid: Oid, id: u64) {
        self.ids.entry(kind).or_default().insert(oid, id);
    }

    /// Every restored (kind, oid, kernel id) triple.
    pub fn entries(&self) -> Vec<(KObjKind, Oid, u64)> {
        let mut out: Vec<(KObjKind, Oid, u64)> = self
            .ids
            .iter()
            .flat_map(|(&k, m)| m.iter().map(move |(&o, &i)| (k, o, i)))
            .collect();
        out.sort();
        out
    }
}

/// One kind's serialization strategy. Registered by the POSIX and VM
/// subsystems (see [`crate::serializers`]); dispatched by the pipeline.
pub trait Serializer {
    /// The kind this serializer handles.
    fn kind(&self) -> KObjKind;

    /// Kernel ids of this kind found by the shared reachability walk, in
    /// serialization order.
    fn collect(&self, k: &Kernel, reach: &Reach) -> Result<Vec<u64>, SlsError>;

    /// The [`OidMap`] key for kernel id `id`. Most kinds key by the id
    /// itself; memory objects key by their lineage so a shadow chain
    /// reuses its object across checkpoints.
    fn key_of(&self, k: &Kernel, id: u64) -> Result<KObj, SlsError> {
        let _ = k;
        Ok(self.kind().key(id))
    }

    /// Ensures `id` has an OID, creating the store object on first
    /// sight. Overridden by kinds with assignment side effects (memory
    /// objects publish their lineage binding to the pager).
    fn assign_oid(&self, ctx: &mut AssignCtx<'_>, id: u64) -> Result<Oid, SlsError> {
        let key = self.key_of(ctx.kernel, id)?;
        Ok(ctx.oids.get_or_create(ctx.store, key)?)
    }

    /// Serializes object `id` into record bytes, charging the kernel
    /// the real serialization costs (Table 4).
    fn encode(&self, k: &Kernel, id: u64, oids: &OidMap) -> Result<Vec<u8>, SlsError>;

    /// Flushes this kind's bulk data (pages, file contents) during the
    /// concurrent Flush stage. Default: records only, nothing extra.
    fn flush(&self, ctx: &mut FlushCtx<'_>) -> Result<(), SlsError> {
        let _ = ctx;
        Ok(())
    }

    /// Rebuilds the object stored at `oid` into the kernel, recording
    /// the new kernel id in `rb`. Must be idempotent (return early when
    /// `rb` already has the oid) — restores recurse through references.
    fn restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError>;

    /// Second restore pass, run after every discovered object exists —
    /// for cross-object links that need the full population (in-flight
    /// descriptors inside socket buffers).
    fn post_restore(
        &self,
        sls: &mut Sls,
        reg: &SerializerRegistry,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        let _ = (sls, reg, oid, epoch, mode, rb);
        Ok(())
    }

    /// The OidMap rebind id for restored kernel id `id` (identity for
    /// most kinds; memory objects rebind by lineage).
    fn rebind_key(&self, sls: &Sls, id: u64) -> Result<u64, SlsError> {
        let _ = sls;
        Ok(id)
    }
}

/// The registry: one serializer per kind, in registration order (which
/// is the serialization order).
#[derive(Default)]
pub struct SerializerRegistry {
    order: Vec<Box<dyn Serializer + Send + Sync>>,
    by_kind: HashMap<KObjKind, usize>,
}

impl SerializerRegistry {
    /// Registers a serializer. Panics on a duplicate kind — that is a
    /// wiring bug, not a runtime condition.
    pub fn register(&mut self, s: Box<dyn Serializer + Send + Sync>) {
        let kind = s.kind();
        assert!(
            self.by_kind.insert(kind, self.order.len()).is_none(),
            "duplicate serializer for {kind:?}"
        );
        self.order.push(s);
    }

    /// The serializer for `kind`.
    pub fn get(&self, kind: KObjKind) -> Result<&dyn Serializer, SlsError> {
        self.by_kind
            .get(&kind)
            .map(|&i| &*self.order[i])
            .map(|s| s as &dyn Serializer)
            .ok_or(SlsError::BadImage("no serializer registered for kind"))
    }

    /// All serializers, registration (= serialization) order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Serializer> {
        self.order.iter().map(|b| &**b as &dyn Serializer)
    }

    /// Number of registered serializers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Dispatches a restore of the object at `oid` by kind.
    pub fn restore_one(
        &self,
        kind: KObjKind,
        sls: &mut Sls,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        self.get(kind)?.restore(sls, self, oid, epoch, mode, rb)
    }

    /// Runs every serializer's `post_restore` over all restored objects
    /// to a fixpoint (a post hook may restore further objects — e.g. a
    /// descriptor in flight inside a socket buffer — which then need
    /// their own post pass).
    pub fn post_restore_all(
        &self,
        sls: &mut Sls,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        let mut done: std::collections::HashSet<(KObjKind, Oid)> = Default::default();
        loop {
            let pending: Vec<(KObjKind, Oid)> = rb
                .entries()
                .into_iter()
                .map(|(k, o, _)| (k, o))
                .filter(|p| !done.contains(p))
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            for (kind, oid) in pending {
                done.insert((kind, oid));
                self.get(kind)?.post_restore(sls, self, oid, epoch, mode, rb)?;
            }
        }
    }
}

/// The registry every [`Sls`] instance starts with: the POSIX
/// subsystem's ten object kinds plus the VM subsystem's memory objects.
pub fn default_registry() -> SerializerRegistry {
    let mut r = SerializerRegistry::default();
    crate::serializers::posix::register(&mut r);
    crate::serializers::vm::register(&mut r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_covers_every_kind_in_order() {
        let r = default_registry();
        let kinds: Vec<KObjKind> = r.iter().map(|s| s.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                KObjKind::Proc,
                KObjKind::Thread,
                KObjKind::File,
                KObjKind::Vnode,
                KObjKind::Pipe,
                KObjKind::Socket,
                KObjKind::Kqueue,
                KObjKind::Pty,
                KObjKind::ShmPosix,
                KObjKind::ShmSysv,
                KObjKind::Mem,
            ]
        );
        for k in kinds {
            assert!(r.get(k).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate serializer")]
    fn duplicate_registration_panics() {
        let mut r = SerializerRegistry::default();
        crate::serializers::posix::register(&mut r);
        crate::serializers::posix::register(&mut r);
    }
}
