//! Restore (§4, §5.3): rebuild a consistency group from a checkpoint,
//! full or lazy. The restore is recursion-driven through the
//! [`crate::registry::SerializerRegistry`]: the manifest names the
//! file-system namespace and the processes; each serializer's `restore`
//! hook pulls in the objects it references (a file restores its target,
//! a memory object its backer, a socket its peer), so sharing is
//! re-linked by construction and no per-type logic lives here.

use crate::oidmap::tag;
use crate::registry::{KObjKind, Rebuild};
use crate::serial;
use crate::{Group, GroupId, Sls, SlsError, SlsOptions};
use aurora_objstore::{ObjectKind, Oid};
use aurora_posix::Pid;
use aurora_vm::Inherit;
use std::collections::{HashMap, VecDeque};

/// How to bring memory back (§6, "lazy restores").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreMode {
    /// Read every page from the store during the restore.
    Full,
    /// Mark pages swapped; the application faults them in on demand.
    Lazy,
}

/// What a restore produced.
#[derive(Clone, Debug)]
pub struct RestoreReport {
    /// The new consistency group.
    pub group: GroupId,
    /// New (global) pids, manifest order (roots first).
    pub pids: Vec<Pid>,
    /// Pages read during the restore (0 for lazy).
    pub pages_read: u64,
    /// Restore wall time on the virtual clock, ns.
    pub elapsed_ns: u64,
}

impl Sls {
    /// Lists the group manifests present at `epoch` — how `sls restore`
    /// finds what existed before a crash.
    pub fn manifests_at(&self, epoch: u64) -> Result<Vec<Oid>, SlsError> {
        let store = self.store.lock();
        let mut out = Vec::new();
        for oid in store.objects_at(epoch)? {
            if store.kind(oid)? == ObjectKind::Posix(tag::MANIFEST) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Restores the group image identified by `manifest` as of `epoch`,
    /// creating fresh processes. Global pids/tids are newly allocated
    /// (reserving the checkpoint-time value when free); the application
    /// sees its checkpoint-time ids (§5.3).
    pub fn restore_image(
        &mut self,
        manifest: Oid,
        epoch: u64,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        self.restore_inner(manifest, epoch, mode, None)
    }

    /// Point-in-time restore (§15): rebuilds the group at any committed
    /// *record* boundary, not just an epoch boundary. The base image is
    /// the newest committed epoch entirely at or below `lsn`
    /// ([`epoch_for_lsn`]); every page that changed after it is then
    /// overlaid with its content as of the target LSN (chain replay via
    /// [`read_page_at_lsn`]) and left dirty, so the branch's next
    /// checkpoint re-commits the overlay. The object namespace (and
    /// object sizes) resolve at base-epoch granularity; page *content*
    /// resolves at record granularity.
    ///
    /// [`epoch_for_lsn`]: aurora_objstore::ObjectStore::epoch_for_lsn
    /// [`read_page_at_lsn`]: aurora_objstore::ObjectStore::read_page_at_lsn
    pub fn restore_at(
        &mut self,
        manifest: Oid,
        lsn: u64,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        let base = self
            .store
            .lock()
            .epoch_for_lsn(lsn)
            .ok_or(SlsError::BadImage("restore_at target below the history floor"))?;
        self.restore_inner(manifest, base, mode, Some(lsn))
    }

    /// Group-level convenience for [`restore_at`](Sls::restore_at):
    /// resolves the group's manifest and restores at `lsn`.
    pub fn sls_restore_at(
        &mut self,
        gid: GroupId,
        lsn: u64,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        let manifest = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?.manifest;
        self.restore_at(manifest, lsn, mode)
    }

    fn restore_inner(
        &mut self,
        manifest: Oid,
        epoch: u64,
        mode: RestoreMode,
        overlay: Option<u64>,
    ) -> Result<RestoreReport, SlsError> {
        let clock = self.kernel.charge.clock().clone();
        let t0 = clock.now();

        let man = {
            let store = self.store.lock();
            serial::decode_manifest(store.meta_at(manifest, epoch)?)?
        };
        let registry = self.registry.clone();
        let mut rb = Rebuild::default();
        rb.kernel_ns = self.kernel.alloc_ns();

        // The file-system namespace first: every vnode in the image.
        for voi in &man.fs_vnodes {
            registry.restore_one(KObjKind::Vnode, self, *voi, epoch, mode, &mut rb)?;
        }
        // Processes, parents before children (manifest order); each one
        // recursively restores everything it references.
        for (poid, _local, _root) in &man.procs {
            registry.restore_one(KObjKind::Proc, self, *poid, epoch, mode, &mut rb)?;
        }
        // Cross-object links that need the full population (in-flight
        // descriptors inside socket buffers), run to a fixpoint.
        registry.post_restore_all(self, epoch, mode, &mut rb)?;

        // Point-in-time roll-forward: overlay every restored page that
        // changed after the base epoch with its content as of the target
        // LSN (chain replay in the store), left dirty so the branch's
        // next checkpoint re-commits it.
        if let Some(lsn) = overlay {
            let changed = self.store.lock().modified_since(epoch);
            let mut overlaid = 0u64;
            for (kind, oid, id) in rb.entries() {
                if kind != KObjKind::Mem {
                    continue;
                }
                let obj = aurora_vm::ObjId(id);
                let size_pages = self.kernel.vm.object(obj)?.size_pages;
                for &(_, pi) in changed.iter().filter(|&&(o, _)| o == oid) {
                    if pi >= size_pages {
                        continue; // grew after the base epoch; size is epoch-granular
                    }
                    if let Some(p) = self.store.lock().read_page_at_lsn(oid, pi, lsn)? {
                        self.kernel.vm.install_page(obj, pi, p, true)?;
                        rb.pages_read += 1;
                        overlaid += 1;
                    }
                }
            }
            let trace = self.kernel.charge.trace();
            if trace.is_enabled() {
                trace.instant(
                    "core",
                    "restore.at",
                    &[("lsn", lsn), ("base_epoch", epoch), ("overlaid", overlaid)],
                );
            }
        }

        // Register the restored group so subsequent checkpoints continue
        // the same on-disk objects.
        let gid = GroupId(self.next_group_id());
        let mut group = Group {
            id: gid,
            roots: man
                .procs
                .iter()
                .filter(|(_, _, root)| *root)
                .map(|(_, local, _)| Pid(rb.pid_ns.global_of(*local)))
                .collect(),
            opts: SlsOptions {
                period_ns: man.period_ns,
                external_synchrony: man.extsync,
                ..SlsOptions::default()
            },
            oidmap: Default::default(),
            manifest,
            epochs: vec![epoch],
            pending_durable: 0,
            last_checkpoint_ns: clock.now(),
            sealed: VecDeque::new(),
            vnode_hash: HashMap::new(),
            named: HashMap::new(),
        };
        // Re-bind the oid map so the exactly-once scan recognizes the
        // restored objects — one generic loop; each serializer supplies
        // its rebind key (identity except memory, which keys by lineage).
        for (kind, oid, id) in rb.entries() {
            let ser = registry.get(kind)?;
            group.oidmap.bind(kind.key(ser.rebind_key(self, id)?), oid);
        }
        self.groups.insert(gid, group);

        Ok(RestoreReport {
            group: gid,
            pids: rb.new_pids.clone(),
            pages_read: rb.pages_read,
            elapsed_ns: clock.now() - t0,
        })
    }

    pub(crate) fn next_file_id(&mut self) -> u64 {
        // Delegate to the kernel's allocator by probing insert_file's
        // monotone counter: allocate a fresh id above everything seen.
        let max = self.kernel.files.keys().map(|f| f.0).max().unwrap_or(0);
        max + 1
    }

    pub(crate) fn next_group_id(&mut self) -> u64 {
        self.groups.keys().map(|g| g.0).max().unwrap_or(0) + 1
    }
}

pub(crate) fn decode_inherit(b: u8) -> Result<Inherit, SlsError> {
    Ok(match b {
        0 => Inherit::Share,
        1 => Inherit::Copy,
        2 => Inherit::None,
        _ => return Err(SlsError::BadImage("inherit")),
    })
}
