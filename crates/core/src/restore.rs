//! Restore (§4, §5.3): rebuild a consistency group from a checkpoint,
//! full or lazy, relinking every shared object and virtualizing ids.

use crate::oidmap::{tag, KObj};
use crate::serial::{self, FileTarget};
use crate::{Group, GroupId, Sls, SlsError, SlsOptions};
use aurora_objstore::{ObjectKind, Oid};
use aurora_posix::fd::{Fd, FdTable};
use aurora_posix::file::{FileId, FileKind, OpenFile, PipeEnd, PtySide};
use aurora_posix::ids::PidNamespace;
use aurora_posix::kqueue::Kqueue;
use aurora_posix::pipe::Pipe;
use aurora_posix::process::{sig, Process, Thread, ThreadState};
use aurora_posix::pty::{Pty, Termios};
use aurora_posix::shm::{PosixShm, SysvShm};
use aurora_posix::socket::{Domain, InetAddr, Message, SockType, Socket, TcpState};
use aurora_posix::vfs::{Vnode, VnodeKind};
use aurora_posix::{Pid, Tid, VnodeId};
use aurora_vm::{Inherit, ObjId, ObjKind, Prot, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};

/// How to bring memory back (§6, "lazy restores").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreMode {
    /// Read every page from the store during the restore.
    Full,
    /// Mark pages swapped; the application faults them in on demand.
    Lazy,
}

/// What a restore produced.
#[derive(Clone, Debug)]
pub struct RestoreReport {
    /// The new consistency group.
    pub group: GroupId,
    /// New (global) pids, manifest order (roots first).
    pub pids: Vec<Pid>,
    /// Pages read during the restore (0 for lazy).
    pub pages_read: u64,
    /// Restore wall time on the virtual clock, ns.
    pub elapsed_ns: u64,
}

/// Transient state while rebuilding one image.
#[derive(Default)]
struct Rebuild {
    mem: HashMap<Oid, ObjId>,
    vnodes: HashMap<Oid, VnodeId>,
    pipes: HashMap<Oid, u64>,
    sockets: HashMap<Oid, u64>,
    kqueues: HashMap<Oid, u64>,
    ptys: HashMap<Oid, u64>,
    shm_posix: HashMap<Oid, u64>,
    files: HashMap<Oid, FileId>,
    pages_read: u64,
}

impl Sls {
    /// Lists the group manifests present at `epoch` — how `sls restore`
    /// finds what existed before a crash.
    pub fn manifests_at(&self, epoch: u64) -> Result<Vec<Oid>, SlsError> {
        let store = self.store.lock();
        let mut out = Vec::new();
        for oid in store.objects_at(epoch)? {
            if store.kind(oid)? == ObjectKind::Posix(tag::MANIFEST) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Restores the group image identified by `manifest` as of `epoch`,
    /// creating fresh processes. Global pids/tids are newly allocated
    /// (reserving the checkpoint-time value when free); the application
    /// sees its checkpoint-time ids (§5.3).
    pub fn restore_image(
        &mut self,
        manifest: Oid,
        epoch: u64,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        let clock = self.kernel.charge.clock().clone();
        let t0 = clock.now();

        let man = {
            let store = self.store.lock();
            serial::decode_manifest(store.meta_at(manifest, epoch)?)?
        };

        // Read all process records first; everything else is discovered
        // through them.
        let mut proc_recs: Vec<(Oid, serial::ProcRecord)> = Vec::new();
        for (poid, _local, _root) in &man.procs {
            let bytes = {
                let store = self.store.lock();
                store.meta_at(*poid, epoch)?.to_vec()
            };
            proc_recs.push((*poid, serial::decode_proc(&bytes)?));
        }

        let mut rb = Rebuild::default();

        // The file-system namespace first: every vnode in the image.
        for voi in &man.fs_vnodes {
            self.restore_vnode(*voi, epoch, &mut rb)?;
        }

        // Object discovery: files (transitively through sockets), then
        // targets.
        let mut file_queue: VecDeque<Oid> = VecDeque::new();
        for (_, rec) in &proc_recs {
            for (_, foid) in &rec.fds {
                if !rb.files.contains_key(foid) {
                    rb.files.insert(*foid, FileId(0)); // placeholder
                    file_queue.push_back(*foid);
                }
            }
        }
        let mut file_recs: HashMap<Oid, serial::FileRecord> = HashMap::new();
        let mut socket_recs: HashMap<Oid, serial::SocketRecord> = HashMap::new();
        while let Some(foid) = file_queue.pop_front() {
            let bytes = {
                let store = self.store.lock();
                store.meta_at(foid, epoch)?.to_vec()
            };
            let rec = serial::decode_file(&bytes)?;
            if let FileTarget::Socket(soid) = rec.target {
                if !socket_recs.contains_key(&soid) {
                    let sbytes = {
                        let store = self.store.lock();
                        store.meta_at(soid, epoch)?.to_vec()
                    };
                    let srec = serial::decode_socket(&sbytes)?;
                    for (_, fds) in srec.recv_buf.iter().chain(srec.send_buf.iter()) {
                        for f in fds {
                            if !rb.files.contains_key(f) {
                                rb.files.insert(*f, FileId(0));
                                file_queue.push_back(*f);
                            }
                        }
                    }
                    socket_recs.insert(soid, srec);
                }
            }
            file_recs.insert(foid, rec);
        }

        // Rebuild targets.
        for rec in file_recs.values() {
            match rec.target {
                FileTarget::Vnode(v) => {
                    self.restore_vnode(v, epoch, &mut rb)?;
                }
                FileTarget::Pipe(p, _) => {
                    self.restore_pipe(p, epoch, &mut rb)?;
                }
                FileTarget::Kqueue(q) => {
                    self.restore_kqueue(q, epoch, &mut rb)?;
                }
                FileTarget::Pty(p, _) => {
                    self.restore_pty(p, epoch, &mut rb)?;
                }
                FileTarget::ShmPosix(s) => {
                    self.restore_shm_posix(s, epoch, mode, &mut rb)?;
                }
                FileTarget::Socket(_) | FileTarget::Device(_) => {}
            }
        }
        // Sockets (records already loaded).
        let socket_oids: Vec<Oid> = socket_recs.keys().copied().collect();
        for soid in socket_oids {
            self.restore_socket(soid, &socket_recs, &mut rb)?;
        }

        // Memory objects referenced by map entries (bottom-up through
        // backers).
        for (_, rec) in &proc_recs {
            for e in &rec.entries {
                self.restore_mem(e.mem, epoch, mode, &mut rb)?;
            }
        }

        // File descriptions now that targets exist.
        let file_oids: Vec<Oid> = file_recs.keys().copied().collect();
        for foid in &file_oids {
            let rec = &file_recs[foid];
            let kind = match rec.target {
                FileTarget::Vnode(v) => {
                    let ino = rb.vnodes[&v];
                    self.kernel.vfs.open_ref(ino)?;
                    FileKind::Vnode(ino)
                }
                FileTarget::Pipe(p, read) => FileKind::Pipe {
                    pipe: rb.pipes[&p],
                    end: if read { PipeEnd::Read } else { PipeEnd::Write },
                },
                FileTarget::Socket(s) => FileKind::Socket(rb.sockets[&s]),
                FileTarget::Kqueue(q) => FileKind::Kqueue(rb.kqueues[&q]),
                FileTarget::Pty(p, master) => FileKind::Pty {
                    pty: rb.ptys[&p],
                    side: if master { PtySide::Master } else { PtySide::Slave },
                },
                FileTarget::ShmPosix(s) => FileKind::ShmPosix(rb.shm_posix[&s]),
                FileTarget::Device(d) => FileKind::Device(d),
            };
            let fid = FileId(self.next_file_id());
            self.kernel.insert_file(OpenFile {
                id: fid,
                kind,
                offset: rec.offset,
                flags: serial::flags_from(rec.flags),
                refs: 0, // counted as slots/in-flight references install
                extsync_disabled: rec.extsync_disabled,
            });
            self.kernel.charge.allocs(1);
            rb.files.insert(*foid, fid);
        }
        // In-flight fds inside restored socket buffers.
        for (soid, srec) in &socket_recs {
            let sid = rb.sockets[soid];
            let sock = self.kernel.sockets.get_mut(&sid).expect("restored");
            for (i, (_, fds)) in srec.recv_buf.iter().enumerate() {
                sock.recv_buf[i].fds = fds.iter().map(|f| rb.files[f]).collect();
            }
            for (i, (_, fds)) in srec.send_buf.iter().enumerate() {
                sock.send_buf[i].fds = fds.iter().map(|f| rb.files[f]).collect();
            }
            let inflight: Vec<FileId> = srec
                .recv_buf
                .iter()
                .chain(srec.send_buf.iter())
                .flat_map(|(_, fds)| fds.iter().map(|f| rb.files[f]))
                .collect();
            for fid in inflight {
                self.kernel.files.get_mut(&fid).expect("restored").refs += 1;
            }
        }

        // Processes, parents before children (manifest order).
        let kernel_ns = self.kernel.alloc_ns();
        let mut ns = PidNamespace::new();
        let mut new_pids: Vec<Pid> = Vec::new();
        let mut thread_count = 0u64;
        for (_, rec) in &proc_recs {
            let global = if self.kernel.pid_alloc.reserve(rec.local_pid).is_ok() {
                Pid(rec.local_pid)
            } else {
                Pid(self.kernel.pid_alloc.alloc())
            };
            ns.insert(rec.local_pid, global.0);
            let space = self.kernel.vm.create_space();
            // Map entries.
            for e in &rec.entries {
                let obj = rb.mem[&e.mem];
                self.kernel.vm.ref_object(obj)?;
                let pages = (e.end - e.start) / PAGE_SIZE as u64;
                self.kernel.vm.map(
                    space,
                    Some(e.start),
                    pages,
                    Prot(e.prot),
                    obj,
                    e.offset_pages,
                    decode_inherit(e.inherit)?,
                )?;
                if e.sls_exclude {
                    self.kernel.vm.set_sls_exclude(space, e.start, true)?;
                }
            }
            // Threads.
            let mut tids = Vec::with_capacity(rec.threads.len());
            for toid in &rec.threads {
                let bytes = {
                    let store = self.store.lock();
                    store.meta_at(*toid, epoch)?.to_vec()
                };
                let trec = serial::decode_thread(&bytes)?;
                let gtid = if self.kernel.tid_alloc.reserve(trec.local_tid).is_ok() {
                    Tid(trec.local_tid)
                } else {
                    Tid(self.kernel.tid_alloc.alloc())
                };
                self.kernel.threads.insert(
                    gtid,
                    Thread {
                        tid: gtid,
                        local_tid: Tid(trec.local_tid),
                        pid: global,
                        state: ThreadState::User,
                        sigmask: trec.sigmask,
                        sigpending: trec.sigpending,
                        priority: trec.priority,
                        regs: trec.regs,
                        restarts: 0,
                    },
                );
                self.kernel.charge.allocs(2);
                tids.push(gtid);
                thread_count += 1;
            }
            // Descriptor table.
            let mut fdtable = FdTable::new();
            for (fdno, foid) in &rec.fds {
                let fid = rb.files[foid];
                fdtable.install_at(Fd(*fdno), fid);
                self.kernel.files.get_mut(&fid).expect("restored").refs += 1;
            }
            let parent_global = rec.parent_local.map(|l| Pid(ns.global_of(l)));
            self.kernel.procs.insert(
                global,
                Process {
                    pid: global,
                    local_pid: Pid(rec.local_pid),
                    ppid: parent_global,
                    pgid: Pid(rec.pgid),
                    sid: Pid(rec.sid),
                    name: rec.name.clone(),
                    space,
                    fdtable,
                    threads: tids,
                    children: Vec::new(),
                    ns: kernel_ns,
                    sigpending: if rec.had_ephemeral_children {
                        // The ephemeral child "exited" from the parent's
                        // point of view (§3).
                        sig::bit(sig::SIGCHLD)
                    } else {
                        0
                    },
                    ephemeral: false,
                    dead: false,
                },
            );
            if let Some(pp) = parent_global {
                if let Ok(parent) = self.kernel.proc_mut(pp) {
                    parent.children.push(global);
                }
            }
            // Reissue recorded asynchronous reads (§5.3).
            for (foid, off, len) in &rec.aio_reads {
                let fid = rb.files[foid];
                self.kernel.aio.issue(
                    global.0,
                    fid,
                    *off,
                    *len,
                    aurora_posix::aio::AioKind::Read,
                );
            }
            self.kernel.charge.allocs(3);
            self.kernel.charge.locks(2);
            new_pids.push(global);
            let _ = thread_count;
        }

        // Register the restored group so subsequent checkpoints continue
        // the same on-disk objects.
        let gid = GroupId(self.next_group_id());
        let mut group = Group {
            id: gid,
            roots: man
                .procs
                .iter()
                .filter(|(_, _, root)| *root)
                .map(|(_, local, _)| Pid(ns.global_of(*local)))
                .collect(),
            opts: SlsOptions {
                period_ns: man.period_ns,
                external_synchrony: man.extsync,
                ..SlsOptions::default()
            },
            oidmap: Default::default(),
            manifest,
            epochs: vec![epoch],
            pending_durable: 0,
            last_checkpoint_ns: clock.now(),
            sealed: VecDeque::new(),
            vnode_hash: HashMap::new(),
            named: HashMap::new(),
        };
        // Re-bind the oid map so the exactly-once scan recognizes the
        // restored objects.
        for ((poid, _, _), pid) in man.procs.iter().zip(new_pids.iter()) {
            group.oidmap.bind(KObj::Proc(pid.0), *poid);
        }
        for (oid, fid) in &rb.files {
            group.oidmap.bind(KObj::File(fid.0), *oid);
        }
        for (oid, v) in &rb.vnodes {
            group.oidmap.bind(KObj::Vnode(v.0), *oid);
        }
        for (oid, p) in &rb.pipes {
            group.oidmap.bind(KObj::Pipe(*p), *oid);
        }
        for (oid, s) in &rb.sockets {
            group.oidmap.bind(KObj::Socket(*s), *oid);
        }
        for (oid, q) in &rb.kqueues {
            group.oidmap.bind(KObj::Kqueue(*q), *oid);
        }
        for (oid, p) in &rb.ptys {
            group.oidmap.bind(KObj::Pty(*p), *oid);
        }
        for (oid, s) in &rb.shm_posix {
            group.oidmap.bind(KObj::ShmPosix(*s), *oid);
        }
        for (oid, obj) in &rb.mem {
            let lineage = self.kernel.vm.object(*obj)?.lineage.0;
            group.oidmap.bind(KObj::Mem(lineage), *oid);
            // (the pinned binding was installed by restore_mem)
        }
        self.groups.insert(gid, group);

        Ok(RestoreReport {
            group: gid,
            pids: new_pids,
            pages_read: rb.pages_read,
            elapsed_ns: clock.now() - t0,
        })
    }

    fn next_file_id(&mut self) -> u64 {
        // Delegate to the kernel's allocator by probing insert_file's
        // monotone counter: allocate a fresh id above everything seen.
        let max = self.kernel.files.keys().map(|f| f.0).max().unwrap_or(0);
        max + 1
    }

    fn next_group_id(&mut self) -> u64 {
        self.groups.keys().map(|g| g.0).max().unwrap_or(0) + 1
    }

    fn restore_vnode(&mut self, oid: Oid, epoch: u64, rb: &mut Rebuild) -> Result<(), SlsError> {
        if rb.vnodes.contains_key(&oid) {
            return Ok(());
        }
        let (rec, content) = {
            let mut store = self.store.lock();
            let rec = serial::decode_vnode(store.meta_at(oid, epoch)?)?;
            let mut content = Vec::new();
            if !rec.is_dir && rec.size > 0 {
                let pages: Vec<u64> = (0..rec.size.div_ceil(PAGE_SIZE as u64)).collect();
                for (_, page) in store.read_pages_bulk(oid, epoch, &pages)? {
                    content.extend_from_slice(&page);
                    rb.pages_read += 1;
                }
                content.truncate(rec.size as usize);
            }
            (rec, content)
        };
        let kind = if rec.is_dir {
            VnodeKind::Directory {
                entries: rec
                    .dirents
                    .iter()
                    .map(|(n, ino)| (n.clone(), VnodeId(*ino)))
                    .collect(),
            }
        } else {
            VnodeKind::Regular { data: content }
        };
        self.kernel.charge.allocs(2);
        self.kernel.charge.locks(1);
        self.kernel.vfs.insert_vnode(Vnode {
            id: VnodeId(rec.ino),
            kind,
            nlink: rec.nlink,
            open_refs: 0, // re-counted as descriptions reference it
        });
        rb.vnodes.insert(oid, VnodeId(rec.ino));
        Ok(())
    }

    fn restore_pipe(&mut self, oid: Oid, epoch: u64, rb: &mut Rebuild) -> Result<(), SlsError> {
        if rb.pipes.contains_key(&oid) {
            return Ok(());
        }
        let rec = {
            let store = self.store.lock();
            serial::decode_pipe(store.meta_at(oid, epoch)?)?
        };
        self.kernel.charge.allocs(2);
        self.kernel.charge.locks(1);
        self.kernel.charge.misses(10);
        let id = self.kernel.pipes.keys().max().copied().unwrap_or(0) + 1;
        let mut pipe = Pipe::new(id);
        pipe.capacity = rec.capacity as usize;
        pipe.reader_open = rec.reader_open;
        pipe.writer_open = rec.writer_open;
        pipe.buffer.extend(rec.buffer.iter().copied());
        self.kernel.pipes.insert(id, pipe);
        rb.pipes.insert(oid, id);
        Ok(())
    }

    fn restore_kqueue(&mut self, oid: Oid, epoch: u64, rb: &mut Rebuild) -> Result<(), SlsError> {
        if rb.kqueues.contains_key(&oid) {
            return Ok(());
        }
        let rec = {
            let store = self.store.lock();
            serial::decode_kqueue(store.meta_at(oid, epoch)?)?
        };
        // Restore is a bulk insert — cheap compared to the per-knote
        // locking at checkpoint time (Table 4's asymmetry).
        self.kernel.charge.allocs(1);
        self.kernel.charge.locks(1);
        self.kernel.charge.misses(8);
        let id = self.kernel.kqueues.keys().max().copied().unwrap_or(0) + 1;
        let mut kq = Kqueue::new(id);
        kq.events = serial::kevents_from(&rec)?;
        self.kernel.kqueues.insert(id, kq);
        rb.kqueues.insert(oid, id);
        Ok(())
    }

    fn restore_pty(&mut self, oid: Oid, epoch: u64, rb: &mut Rebuild) -> Result<(), SlsError> {
        if rb.ptys.contains_key(&oid) {
            return Ok(());
        }
        let rec = {
            let store = self.store.lock();
            serial::decode_pty(store.meta_at(oid, epoch)?)?
        };
        // Recreating the device node takes the devfs locks — the slow
        // restore row of Table 4.
        self.kernel.charge.raw(self.kernel.charge.model().devfs_create_ns);
        self.kernel.charge.allocs(2);
        let id = self.kernel.ptys.keys().max().copied().unwrap_or(0) + 1;
        let mut pty = Pty::new(id);
        pty.termios = Termios { canonical: rec.term.0, echo: rec.term.1, baud: rec.baud };
        pty.input.extend(rec.input.iter().copied());
        pty.output.extend(rec.output.iter().copied());
        pty.fg_pgid = rec.fg_pgid;
        self.kernel.ptys.insert(id, pty);
        rb.ptys.insert(oid, id);
        Ok(())
    }

    fn restore_shm_posix(
        &mut self,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.shm_posix.contains_key(&oid) {
            return Ok(());
        }
        let rec = {
            let store = self.store.lock();
            serial::decode_shm_posix(store.meta_at(oid, epoch)?)?
        };
        self.restore_mem(rec.mem, epoch, mode, rb)?;
        self.kernel.charge.allocs(1);
        self.kernel.charge.locks(2);
        let id = self.kernel.shm.next_id();
        self.kernel.shm.posix.insert(
            id,
            PosixShm { id, name: rec.name.clone(), object: rb.mem[&rec.mem], pages: rec.pages },
        );
        rb.shm_posix.insert(oid, id);
        Ok(())
    }

    /// Restores a SysV segment discovered through a memory object.
    fn restore_shm_sysv_for(
        &mut self,
        oid: Oid,
        epoch: u64,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        let rec = {
            let store = self.store.lock();
            serial::decode_shm_sysv(store.meta_at(oid, epoch)?)?
        };
        self.kernel.charge.allocs(1);
        self.kernel.charge.locks(2);
        let id = self.kernel.shm.next_id();
        self.kernel.shm.sysv.insert(
            id,
            SysvShm {
                id,
                key: rec.key,
                object: rb.mem[&rec.mem],
                pages: rec.pages,
                nattch: rec.nattch,
            },
        );
        Ok(())
    }

    fn restore_socket(
        &mut self,
        oid: Oid,
        recs: &HashMap<Oid, serial::SocketRecord>,
        rb: &mut Rebuild,
    ) -> Result<(), SlsError> {
        if rb.sockets.contains_key(&oid) {
            return Ok(());
        }
        let rec = &recs[&oid];
        self.kernel.charge.allocs(2);
        self.kernel.charge.locks(2);
        self.kernel.charge.misses(14);
        let id = self.kernel.sockets.keys().max().copied().unwrap_or(0) + 1;
        let mut s = Socket::new(
            id,
            if rec.domain == 0 { Domain::Unix } else { Domain::Inet },
            if rec.stype == 0 { SockType::Stream } else { SockType::Dgram },
        );
        s.opts.nodelay = rec.opts.0;
        s.opts.reuseaddr = rec.opts.1;
        s.opts.keepalive = rec.opts.2;
        s.unix_path = rec.unix_path.clone();
        s.inet = (
            InetAddr { ip: rec.local.0, port: rec.local.1 },
            InetAddr { ip: rec.remote.0, port: rec.remote.1 },
        );
        s.tcp_state = match rec.tcp_state {
            1 => TcpState::Listen,
            2 => TcpState::Established,
            _ => TcpState::Closed,
        };
        s.snd_seq = rec.snd_seq;
        s.rcv_seq = rec.rcv_seq;
        // Buffers (fds re-linked after file descriptions exist).
        for (data, _) in &rec.recv_buf {
            s.recv_buf.push_back(Message { data: data.clone(), fds: Vec::new() });
        }
        for (data, _) in &rec.send_buf {
            s.send_buf.push_back(Message { data: data.clone(), fds: Vec::new() });
            s.sent_count += 1;
        }
        self.kernel.sockets.insert(id, s);
        rb.sockets.insert(oid, id);
        // Link the peer if it is part of the image.
        if let Some(peer_oid) = rec.peer {
            if recs.contains_key(&peer_oid) {
                self.restore_socket(peer_oid, recs, rb)?;
                let peer_id = rb.sockets[&peer_oid];
                self.kernel.sockets.get_mut(&id).expect("restored").peer = Some(peer_id);
                self.kernel.sockets.get_mut(&peer_id).expect("restored").peer = Some(id);
            }
        }
        Ok(())
    }

    fn restore_mem(
        &mut self,
        oid: Oid,
        epoch: u64,
        mode: RestoreMode,
        rb: &mut Rebuild,
    ) -> Result<ObjId, SlsError> {
        if let Some(&obj) = rb.mem.get(&oid) {
            return Ok(obj);
        }
        let rec = {
            let store = self.store.lock();
            serial::decode_mem(store.meta_at(oid, epoch)?)?
        };
        // Bottom-up: the backer first.
        let backer = match rec.backer {
            Some(b) => Some(self.restore_mem(b, epoch, mode, rb)?),
            None => None,
        };
        let kind = match rec.kind {
            1 => {
                // Vnode-backed: ensure the vnode exists.
                if let Some(voi) = rec.vnode {
                    self.restore_vnode(voi, epoch, rb)?;
                    ObjKind::Vnode { vnode: rb.vnodes[&voi].0 }
                } else {
                    ObjKind::Anonymous
                }
            }
            2 => ObjKind::Device { dev: 1 }, // re-injected device page (§5.3)
            _ => ObjKind::Anonymous,
        };
        self.kernel.charge.allocs(1);
        self.kernel.charge.locks(1);
        let obj = self.kernel.vm.create_object(kind, rec.size_pages);
        if let Some(b) = backer {
            self.kernel.vm.set_backer(obj, b)?;
        }
        // Populate pages.
        if rec.kind != 2 {
            let pages = {
                let store = self.store.lock();
                store.pages_at(oid, epoch).unwrap_or_default()
            };
            match mode {
                RestoreMode::Full => {
                    let loaded = {
                        let mut store = self.store.lock();
                        store.read_pages_bulk(oid, epoch, &pages)?
                    };
                    for (pi, data) in loaded {
                        self.kernel.vm.install_page(obj, pi, Box::new(data), false)?;
                        rb.pages_read += 1;
                    }
                }
                RestoreMode::Lazy => {
                    for pi in pages {
                        self.kernel.vm.mark_swapped(obj, pi)?;
                    }
                }
            }
        }
        // Bind the fresh lineage immediately so lazy faults can page in
        // — pinned to this restore's branch: history ≤ epoch plus
        // whatever this instance commits from now on.
        let lineage = self.kernel.vm.object(obj)?.lineage.0;
        let resume = self.store.lock().current_epoch();
        self.lineage_oids
            .lock()
            .insert(lineage, crate::LineageBinding { oid, floor: epoch, resume });
        // Creation gave us one reference the map entries will take over;
        // release it after the last map() call — handled by callers
        // holding refs. For simplicity the creation ref is retained by
        // the rebuild table and dropped when the kernel tears down.
        rb.mem.insert(oid, obj);
        // SysV segments attached to this object.
        let sysv_oids: Vec<Oid> = {
            let store = self.store.lock();
            store
                .objects_at(epoch)?
                .into_iter()
                .filter(|o| store.kind(*o) == Ok(ObjectKind::Posix(tag::SHM_SYSV)))
                .collect()
        };
        for so in sysv_oids {
            let srec = {
                let store = self.store.lock();
                serial::decode_shm_sysv(store.meta_at(so, epoch)?)?
            };
            if srec.mem == oid && !self.kernel.shm.sysv.values().any(|s| s.key == srec.key) {
                self.restore_shm_sysv_for(so, epoch, rb)?;
            }
        }
        Ok(obj)
    }
}

fn decode_inherit(b: u8) -> Result<Inherit, SlsError> {
    Ok(match b {
        0 => Inherit::Share,
        1 => Inherit::Copy,
        2 => Inherit::None,
        _ => return Err(SlsError::BadImage("inherit")),
    })
}
