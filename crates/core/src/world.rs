//! A pre-wired machine for examples and quickstarts: kernel + testbed
//! store + SLS on one virtual clock.

use crate::{Sls, SlsError};
use aurora_objstore::ObjectStore;
use aurora_posix::{Kernel, Pid};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::faulty::{FaultHandle, FaultPlan};
use aurora_storage::raid1::MirrorHandle;
use aurora_storage::{
    faulty_testbed_array, mirrored_testbed_array, nand_testbed_array, testbed_array,
};
use aurora_vm::{Prot, PAGE_SIZE};

/// A simulated machine running the Aurora single level store.
pub struct World {
    /// The SLS (owns the kernel; applications run against
    /// `world.sls.kernel`).
    pub sls: Sls,
    /// The shared virtual clock.
    pub clock: Clock,
}

impl World {
    /// Boots the paper's testbed: 4× Optane-like devices striped at
    /// 64 KiB (2 GiB each), default cost calibration.
    pub fn quickstart() -> Self {
        Self::with_store_bytes(2 << 30)
    }

    /// Boots with `bytes` per store device.
    pub fn with_store_bytes(bytes: u64) -> Self {
        Self::with_store_bytes_on(Clock::new(), bytes)
    }

    /// Boots with `bytes` per store device on an existing virtual
    /// clock — how `aurora-cluster` puts N machines in one discrete-event
    /// timeline: every node's kernel, store, and device stack charge the
    /// same clock, so cross-node message timings compose with local I/O.
    pub fn with_store_bytes_on(clock: Clock, bytes: u64) -> Self {
        let model = CostModel::default();
        let kernel = Kernel::new(clock.clone(), model.clone());
        let dev = testbed_array(&clock, bytes);
        let store = ObjectStore::format(dev, Charge::new(clock.clone(), model), 64 * 1024)
            .expect("format fresh store");
        Self { sls: Sls::new(kernel, store), clock }
    }

    /// Boots with `bytes` per TLC-NAND store device
    /// ([`aurora_storage::nand_testbed_array`]): the latency-bound
    /// storage profile the checkpoint scheduler benchmarks run against.
    pub fn with_nand_store_bytes(bytes: u64) -> Self {
        let clock = Clock::new();
        let model = CostModel::default();
        let kernel = Kernel::new(clock.clone(), model.clone());
        let dev = nand_testbed_array(&clock, bytes);
        let store = ObjectStore::format(dev, Charge::new(clock.clone(), model), 64 * 1024)
            .expect("format fresh store");
        Self { sls: Sls::new(kernel, store), clock }
    }

    /// Boots with `bytes` per store device behind a fault-injecting
    /// device wrapper, returning the handle that arms and inspects the
    /// fault plan (crash-recovery and degraded-mode tests).
    pub fn with_faulty_store(bytes: u64, plan: FaultPlan) -> (Self, FaultHandle) {
        let clock = Clock::new();
        let model = CostModel::default();
        let kernel = Kernel::new(clock.clone(), model.clone());
        let (dev, handle) = faulty_testbed_array(&clock, bytes, plan);
        let store = ObjectStore::format(dev, Charge::new(clock.clone(), model), 64 * 1024)
            .expect("format fresh store");
        (Self { sls: Sls::new(kernel, store), clock }, handle)
    }

    /// Boots the degraded-mode testbed: a two-way mirror whose members
    /// are each a fault-injectable two-way stripe, `bytes` per leaf
    /// device (logical capacity `2 * bytes`). Returns the machine, the
    /// mirror control handle (fail/revive/rebuild/scrub), and one fault
    /// handle per mirror for storm injection.
    pub fn with_mirrored_store(bytes: u64) -> (Self, MirrorHandle, Vec<FaultHandle>) {
        let clock = Clock::new();
        let model = CostModel::default();
        let kernel = Kernel::new(clock.clone(), model.clone());
        let (dev, mirror, faults) = mirrored_testbed_array(&clock, bytes);
        let store = ObjectStore::format(dev, Charge::new(clock.clone(), model), 64 * 1024)
            .expect("format fresh store");
        (Self { sls: Sls::new(kernel, store), clock }, mirror, faults)
    }

    /// Turns on tracing for the whole machine, stamping every event with
    /// the shared virtual clock. Returns the recording handle; export it
    /// with [`aurora_trace::chrome::export`] or read it back directly.
    pub fn enable_tracing(&mut self) -> aurora_trace::Trace {
        let clock = self.clock.clone();
        let trace = aurora_trace::Trace::recording(move || clock.now());
        self.sls.install_trace(trace.clone());
        trace
    }

    /// Turns on the virtual-time metrics sampler (gauge rows at most
    /// once per `period_ns`). Returns the series handle for exporters
    /// ([`aurora_trace::Sampler::series_json`] /
    /// [`prometheus_text`](aurora_trace::Sampler::prometheus_text)).
    pub fn enable_sampling(&mut self, period_ns: u64) -> aurora_trace::Sampler {
        self.sls.install_sampler(period_ns)
    }

    /// Spawns a toy application: one process with a 16-page counter
    /// region at a known address. Returns its pid.
    pub fn spawn_counter_app(&mut self) -> Pid {
        let pid = self.sls.kernel.spawn("counter");
        let addr = self
            .sls
            .kernel
            .mmap_anon(pid, 16, Prot::RW)
            .expect("map counter region");
        self.sls.kernel.mem_write(pid, addr, &0u64.to_le_bytes()).expect("init counter");
        pid
    }

    /// Increments the counter app's counter (first mapping, first bytes).
    pub fn bump_counter(&mut self, pid: Pid) -> Result<u64, SlsError> {
        let space = self.sls.kernel.proc(pid)?.space;
        let addr = self.sls.kernel.vm.entries(space)?[0].start;
        let mut buf = [0u8; 8];
        self.sls.kernel.mem_read(pid, addr, &mut buf)?;
        let v = u64::from_le_bytes(buf) + 1;
        self.sls.kernel.mem_write(pid, addr, &v.to_le_bytes())?;
        Ok(v)
    }

    /// Reads the counter app's counter.
    pub fn read_counter(&mut self, pid: Pid) -> Result<u64, SlsError> {
        let space = self.sls.kernel.proc(pid)?.space;
        let addr = self.sls.kernel.vm.entries(space)?[0].start;
        let mut buf = [0u8; 8];
        self.sls.kernel.mem_read(pid, addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Dirty a contiguous region of a process (benchmark helper).
    pub fn dirty_region(&mut self, pid: Pid, pages: u64) -> Result<u64, SlsError> {
        let addr = self.sls.kernel.mmap_anon(pid, pages, Prot::RW)?;
        self.sls.kernel.mem_touch(pid, addr, pages * PAGE_SIZE as u64)?;
        Ok(addr)
    }
}
