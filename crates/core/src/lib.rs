//! The Aurora single level store (the paper's contribution).
//!
//! [`Sls`] is the SLS orchestrator of §4: it owns the simulated kernel
//! and the object store, and implements:
//!
//! * **Consistency groups** (§3): sets of process trees checkpointed
//!   atomically, with external synchrony on communication leaving the
//!   group.
//! * **The POSIX object model** (§5.2): every kernel object reachable
//!   from the group — processes, threads, open-file descriptions, vnodes,
//!   pipes, sockets (with in-flight fds), kqueues, pseudoterminals, POSIX
//!   and SysV shared memory, and the VM object hierarchy — is persisted
//!   as its own on-disk object, exactly once, with sharing restored by
//!   re-linking OIDs rather than inferred.
//! * **The checkpoint pipeline** (§4–6): quiesce at the kernel boundary →
//!   serialize small objects into buffers → system-shadow the memory →
//!   resume → flush concurrently → commit; retired shadows are collapsed
//!   (reversed by default) at the next checkpoint.
//! * **Restore** (§5.3): full or lazy, with PID/TID virtualization,
//!   SIGCHLD for ephemeral children, and relinked sharing.
//! * **The Aurora API** (Table 3): `sls_checkpoint`, `sls_restore`,
//!   `sls_memckpt`, `sls_journal`, `sls_barrier`, `sls_mctl`,
//!   `sls_fdctl`.
//! * **Swap integration** (§6): clean pages evict without IO; faults page
//!   in from the latest checkpoint; lazy restores defer memory loading.

pub mod api;
pub mod checkpoint;
pub mod dump;
pub mod error;
pub mod extsync;
pub mod oidmap;
pub mod pipeline;
pub mod registry;
pub mod restore;
pub mod scheduler;
pub mod sendrecv;
pub mod serial;
pub mod serializers;
pub mod swap;
pub mod world;

pub use api::AuroraApi;
pub use checkpoint::{CheckpointStats, Reach, StageFailure};
pub use error::SlsError;
pub use pipeline::{CheckpointPipeline, GroupRun, Phase, RetryPolicy};
pub use registry::{default_registry, KObjKind, Serializer, SerializerRegistry};
pub use restore::RestoreMode;
pub use scheduler::{CheckpointScheduler, SchedulerPolicy};
pub use sendrecv::{ApplyReport, DeltaStats};

pub use aurora_frames::{FrameArena, FrameGauges, PageRef};

use aurora_objstore::{ObjectStore, Oid};
use aurora_posix::{Kernel, Pid, VnodeId};
use aurora_sim::units::MS;
use aurora_vm::CollapseMode;
use oidmap::OidMap;
use aurora_sim::sync::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A shareable object store handle (shared with the kernel's pager).
pub type SharedStore = Arc<Mutex<ObjectStore>>;

/// How a VM lineage maps to its on-disk object, with branch visibility
/// for the pager: versions ≤ `floor` or ≥ `resume` are visible. Live
/// lineages see everything (`floor = u64::MAX`); lineages restored at an
/// old epoch see only their own past and their own new future.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineageBinding {
    /// On-disk object.
    pub oid: Oid,
    /// Highest historical epoch visible.
    pub floor: u64,
    /// First post-restore epoch visible.
    pub resume: u64,
}

impl LineageBinding {
    /// A live (unrestored) binding: every committed version visible.
    pub fn live(oid: Oid) -> Self {
        Self { oid, floor: u64::MAX, resume: 0 }
    }
}

/// Identifier of a consistency group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

/// Per-group configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlsOptions {
    /// Checkpoint period for [`Sls::tick`] (default 10 ms — 100×/s, §3).
    pub period_ns: u64,
    /// Buffer outbound messages until the covering checkpoint is durable
    /// (§3). Per-descriptor opt-out via `sls_fdctl`.
    pub external_synchrony: bool,
    /// Collapse direction for retired system shadows (§6; `Forward` only
    /// for the ablation).
    pub collapse_mode: CollapseMode,
}

impl Default for SlsOptions {
    fn default() -> Self {
        Self {
            period_ns: 10 * MS,
            external_synchrony: true,
            collapse_mode: CollapseMode::Reversed,
        }
    }
}

/// World-level checkpoint engine configuration: retry/backoff policy
/// for the device-facing stages, the per-group circuit breaker, and how
/// hard degraded-mode stretches the checkpoint cadence. Defaults
/// reproduce the engine's historical behavior exactly (fixed retry
/// constants, no breaker, 4× cadence stretch under a degraded device).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointConfig {
    /// Retry/backoff policy applied by every checkpoint run.
    pub retry: RetryPolicy,
    /// Consecutive failed checkpoints of one group before its circuit
    /// breaker trips open, skipping that group's checkpoints (each skip
    /// reported as a `StageFailure` with stage `"breaker"`) for
    /// [`breaker_cooldown_ns`](CheckpointConfig::breaker_cooldown_ns).
    /// `0` (the default) disables the breaker.
    pub breaker_trip_failures: u32,
    /// How long a tripped breaker stays open, in virtual ns.
    pub breaker_cooldown_ns: u64,
    /// Checkpoint write mode: sub-page redo records (the default) or
    /// full page images per dirty page.
    pub checkpoint_mode: CheckpointMode,
    /// Largest contiguous changed span, in bytes, logged as a sub-page
    /// redo delta; a wider diff (or a page with no resident parent-
    /// shadow copy to diff against) falls back to a full-image record.
    pub redo_delta_max: usize,
    /// Multiplier applied to every group's checkpoint period by
    /// [`Sls::tick`] while the device stack reports `Degraded` or worse:
    /// fewer, wider epochs give a limping device room to drain. `1`
    /// disables the stretch.
    pub degraded_period_factor: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            breaker_trip_failures: 0,
            breaker_cooldown_ns: 50 * MS,
            checkpoint_mode: CheckpointMode::Delta,
            redo_delta_max: 2048,
            degraded_period_factor: 4,
        }
    }
}

/// How the checkpoint flush stage writes dirty pages (§15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointMode {
    /// One full 4 KiB image per dirty page (the pre-redo behavior;
    /// still used as the fallback for un-diffable pages).
    FullPage,
    /// Diff each dirty page against its parent COW shadow and log the
    /// changed span as a redo record — "the log is the database".
    #[default]
    Delta,
}

/// Per-group circuit-breaker state.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Breaker {
    /// Failed checkpoints since the last success.
    consecutive_failures: u32,
    /// Virtual time until which the breaker is open (0 = closed).
    open_until: u64,
    /// Times this group's breaker has tripped.
    trips: u64,
}

/// One sealed batch of outbound messages awaiting its checkpoint.
#[derive(Clone, Debug)]
pub(crate) struct SealedBatch {
    /// Store epoch of the covering checkpoint.
    pub epoch: u64,
    /// Release when the clock reaches this (the commit's durability).
    pub durable_at: u64,
    /// Virtual time the batch was sealed (commit time) — the zero point
    /// of the `release_latency` histogram.
    pub sealed_at: u64,
    /// Messages sealed per socket id.
    pub counts: HashMap<u64, usize>,
}

/// One consistency group.
#[derive(Debug)]
pub(crate) struct Group {
    pub id: GroupId,
    /// Root pids; membership is the live tree closure under the roots.
    pub roots: Vec<Pid>,
    pub opts: SlsOptions,
    pub oidmap: OidMap,
    /// The group's manifest object in the store.
    pub manifest: Oid,
    /// Store epochs holding this group's checkpoints, ascending.
    pub epochs: Vec<u64>,
    /// Durability horizon of the latest commit.
    pub pending_durable: u64,
    /// Virtual time of the last checkpoint (for `tick`).
    pub last_checkpoint_ns: u64,
    /// External-synchrony batches awaiting durability.
    pub sealed: VecDeque<SealedBatch>,
    /// Content fingerprints of flushed vnodes (flush only what changed).
    pub vnode_hash: HashMap<VnodeId, u64>,
    /// Named (user-visible) checkpoints: name → store epoch.
    pub named: HashMap<String, u64>,
}

/// The single level store orchestrator.
pub struct Sls {
    /// The kernel under the SLS (applications run against this).
    pub kernel: Kernel,
    pub(crate) store: SharedStore,
    pub(crate) groups: HashMap<GroupId, Group>,
    /// lineage → binding map shared with the kernel's pager.
    pub(crate) lineage_oids: Arc<Mutex<HashMap<u64, LineageBinding>>>,
    /// The per-object-kind serializer registry (§5.2) every checkpoint,
    /// restore, and migration dispatches through.
    pub(crate) registry: Arc<registry::SerializerRegistry>,
    /// The installed trace recorder (disabled by default), kept here so
    /// a crash/reboot can re-arm the fresh kernel with it.
    trace: aurora_trace::Trace,
    /// The installed metrics sampler (absent by default). Polled at
    /// checkpoint and tick boundaries; never advances the clock.
    sampler: Option<aurora_trace::Sampler>,
    /// Stage timings of the most recent checkpoint (gauge source).
    pub(crate) last_stats: Option<CheckpointStats>,
    /// Stage timings of each group's most recent checkpoint, keyed by
    /// group id (per-group gauge source).
    pub(crate) last_stats_by_group: HashMap<u64, CheckpointStats>,
    /// Checkpoints committed since boot, across groups.
    pub(crate) checkpoints_taken: u64,
    /// External-synchrony batches sealed / released since boot.
    pub(crate) extsync_sealed: u64,
    pub(crate) extsync_released: u64,
    /// Checkpoint engine configuration (retry policy, breaker, degraded
    /// cadence). Mutate via [`Sls::set_checkpoint_config`] before
    /// checkpoints run; runs in flight keep the policy they started
    /// with.
    pub config: CheckpointConfig,
    /// Per-group circuit breakers (empty until a failure is noted).
    pub(crate) breakers: HashMap<u64, Breaker>,
    /// Retries spent by all checkpoint runs since boot (gauge source).
    pub(crate) retries_spent_total: u64,
    /// Cluster release gate: when set, external synchrony holds sealed
    /// batches whose epoch exceeds this watermark even once locally
    /// durable — the quorum durable watermark layered onto seal/release
    /// (set by `aurora-cluster` as follower acks arrive).
    pub(crate) release_gate: Option<u64>,
    /// `cluster.*` gauges pushed down by the cluster layer (quorum lag,
    /// replication queue depth, migration progress). A standalone node
    /// reports the defaults — a cluster of one, zero lag.
    pub(crate) cluster_gauges: HashMap<String, u64>,
    /// This node's identity in a cluster (0 standalone / leader). Rides
    /// in the v2 delta-stream header so a receiver can attribute the
    /// frame to its origin in the cross-node causal graph.
    pub(crate) node_id: u64,
    /// The installed flight recorder, if any: `crash_and_reboot` (and,
    /// via `InvariantChecker::on_violation`, the online checker) dumps
    /// the causal graphs of the last few epochs through this handle.
    flight: Option<aurora_trace::FlightRecorder>,
    next_group: u64,
}

impl Sls {
    /// Creates an SLS over a kernel and a formatted store, wiring the
    /// kernel's pager to the store.
    pub fn new(mut kernel: Kernel, store: ObjectStore) -> Self {
        let store: SharedStore = Arc::new(Mutex::new(store));
        let lineage_oids = Arc::new(Mutex::new(HashMap::new()));
        // One frame arena from VM to store: pages flushed, cached, and
        // restored are the same refcounted frames, so the gauges see
        // every layer.
        kernel.vm.set_arena(store.lock().arena().clone());
        kernel.set_pager(Box::new(swap::StorePager {
            store: store.clone(),
            lineage_oids: lineage_oids.clone(),
        }));
        Self {
            kernel,
            store,
            groups: HashMap::new(),
            lineage_oids,
            registry: Arc::new(registry::default_registry()),
            trace: aurora_trace::Trace::disabled(),
            sampler: None,
            last_stats: None,
            last_stats_by_group: HashMap::new(),
            checkpoints_taken: 0,
            extsync_sealed: 0,
            extsync_released: 0,
            config: CheckpointConfig::default(),
            breakers: HashMap::new(),
            retries_spent_total: 0,
            release_gate: None,
            cluster_gauges: HashMap::new(),
            node_id: 0,
            flight: None,
            next_group: 1,
        }
    }

    /// Sets this node's cluster identity (carried in outbound delta
    /// streams and stamped on trace provenance events).
    pub fn set_node_id(&mut self, id: u64) {
        self.node_id = id;
    }

    /// This node's cluster identity (0 standalone / leader).
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// Installs a flight recorder: `crash_and_reboot` will dump the
    /// retained epoch causal graphs through it, and callers can wire the
    /// same handle into `InvariantChecker::on_violation`.
    pub fn install_flight_recorder(&mut self, fr: aurora_trace::FlightRecorder) {
        self.flight = Some(fr);
    }

    /// The installed flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&aurora_trace::FlightRecorder> {
        self.flight.as_ref()
    }

    /// Sets (or clears) the external-synchrony release gate: sealed
    /// batches with an epoch above the watermark stay withheld even once
    /// locally durable. The cluster layer advances this to the quorum
    /// durable watermark as replication acks arrive; `None` restores
    /// single-node behavior (local durability alone releases).
    pub fn set_release_gate(&mut self, watermark: Option<u64>) {
        self.release_gate = watermark;
    }

    /// The current external-synchrony release gate, if any.
    pub fn release_gate(&self) -> Option<u64> {
        self.release_gate
    }

    /// Replaces the `cluster.*` gauges the cluster layer surfaces through
    /// [`Sls::stat_gauges`] and the metrics sampler.
    pub fn set_cluster_gauges(&mut self, gauges: Vec<(String, u64)>) {
        self.cluster_gauges = gauges.into_iter().collect();
    }

    /// Replaces the checkpoint engine configuration. Takes effect for
    /// the next checkpoint run of every group.
    pub fn set_checkpoint_config(&mut self, config: CheckpointConfig) {
        self.config = config;
    }

    /// The device stack's aggregated health report: per-member states
    /// plus failover/rebuild counters for a mirrored array, the default
    /// (no members, healthy) for everything else.
    pub fn device_health(&self) -> aurora_storage::HealthReport {
        self.store.lock().device().lock().health_report()
    }

    /// Whether the device stack currently reports a `Degraded` (or
    /// worse) member — the signal the scheduler and tick cadence
    /// throttle on. `Suspect` alone does not throttle.
    pub fn device_degraded(&self) -> bool {
        self.device_health().is_degraded()
    }

    /// If `gid`'s circuit breaker is open at the current virtual time,
    /// synthesizes the skip's stats (a `StageFailure` with stage
    /// `"breaker"` and a [`SlsError::BreakerOpen`] cause) without
    /// running any pipeline stage. `None` means the breaker is closed
    /// and the checkpoint should run.
    pub(crate) fn breaker_short_circuit(&mut self, gid: GroupId) -> Option<CheckpointStats> {
        let now = self.kernel.charge.clock().now();
        let b = self.breakers.get(&gid.0)?;
        if now >= b.open_until {
            return None;
        }
        let until = b.open_until;
        let trace = self.kernel.charge.trace();
        if trace.is_enabled() {
            trace.instant(
                "pipeline",
                "pipeline.breaker_skip",
                &[("group", gid.0), ("until_ns", until)],
            );
        }
        Some(CheckpointStats {
            group: gid.0,
            failure: Some(StageFailure {
                stage: "breaker",
                group: gid.0,
                attempts: 0,
                cause: SlsError::BreakerOpen { group: gid.0, until_ns: until },
            }),
            ..CheckpointStats::default()
        })
    }

    /// Feeds a finished checkpoint run into the retry accounting and
    /// the group's circuit breaker: failures accumulate toward a trip,
    /// a success (or a cooldown expiry) resets the streak. Synthesized
    /// breaker skips don't feed back — an open breaker must not re-trip
    /// itself.
    pub(crate) fn note_checkpoint_outcome(&mut self, stats: &CheckpointStats) {
        self.retries_spent_total += stats.retries as u64;
        match &stats.failure {
            Some(f) if f.stage == "breaker" => {}
            Some(_) => {
                if self.config.breaker_trip_failures == 0 {
                    return;
                }
                let now = self.kernel.charge.clock().now();
                let cooldown = self.config.breaker_cooldown_ns;
                let trip_at = self.config.breaker_trip_failures;
                let b = self.breakers.entry(stats.group).or_default();
                b.consecutive_failures += 1;
                if b.consecutive_failures >= trip_at {
                    b.consecutive_failures = 0;
                    b.open_until = now + cooldown;
                    b.trips += 1;
                    let trace = self.kernel.charge.trace();
                    if trace.is_enabled() {
                        trace.instant(
                            "pipeline",
                            "pipeline.breaker_trip",
                            &[("group", stats.group), ("until_ns", now + cooldown)],
                        );
                    }
                }
            }
            None => {
                if let Some(b) = self.breakers.get_mut(&stats.group) {
                    b.consecutive_failures = 0;
                    b.open_until = 0;
                }
            }
        }
    }

    /// The serializer registry this instance dispatches through.
    pub fn registry(&self) -> Arc<registry::SerializerRegistry> {
        self.registry.clone()
    }

    /// Installs a trace recorder on every instrumented layer under this
    /// SLS: the kernel's cost accountant (whose charge histograms and
    /// pipeline spans ride on it), the VM, and the object store (which
    /// forwards the handle to its devices).
    pub fn install_trace(&mut self, trace: aurora_trace::Trace) {
        self.kernel.charge.set_trace(trace.clone());
        self.kernel.vm.set_trace(trace.clone());
        self.store.lock().set_trace(trace.clone());
        self.trace = trace;
    }

    /// Installs a virtual-time metrics sampler polling at most once per
    /// `period_ns`. Returns a handle sharing the series (for exporters).
    /// Polls happen at checkpoint/tick boundaries; none of them reads or
    /// advances the clock beyond what the run already does, so sampling
    /// cannot perturb the virtual timeline.
    pub fn install_sampler(&mut self, period_ns: u64) -> aurora_trace::Sampler {
        let s = aurora_trace::Sampler::new(period_ns);
        self.sampler = Some(s.clone());
        s
    }

    /// The installed sampler, if any.
    pub fn sampler(&self) -> Option<&aurora_trace::Sampler> {
        self.sampler.as_ref()
    }

    /// Every subsystem gauge under this SLS, flattened to `name → value`
    /// and sorted by name: the frame arena, the store and its device
    /// stack, the kernel's quiesce accounting, the checkpoint pipeline's
    /// latest stage timings, and external synchrony. Pure read.
    pub fn stat_gauges(&self) -> Vec<(String, u64)> {
        let fg = self.kernel.vm.frame_gauges();
        let (sg, dq, dev_bytes, group_shadow, health) = {
            let store = self.store.lock();
            let sg = store.gauges();
            let shadow = store.arena().group_shadow_snapshot();
            let dev = store.device().lock();
            (sg, dev.queue_stats(), dev.bytes_written(), shadow, dev.health_report())
        };
        let pending: u64 = self.groups.values().map(|g| g.sealed.len() as u64).sum();
        let mut v: Vec<(String, u64)> = vec![
            ("frames.resident".into(), fg.resident),
            ("frames.shared".into(), fg.shared),
            ("frames.copies_broken".into(), fg.copies_broken),
            ("store.cache_pages".into(), sg.cache_pages),
            ("store.cache_hits".into(), sg.cache_hits),
            ("store.cache_misses".into(), sg.cache_misses),
            ("store.epochs".into(), sg.epochs),
            ("store.current_epoch".into(), sg.current_epoch),
            ("store.floor".into(), sg.floor),
            ("store.objects".into(), sg.objects),
            ("store.open_drafts".into(), sg.open_drafts),
            ("redo.appended".into(), sg.redo_appended),
            ("redo.chain_len.p95".into(), sg.redo_chain_len_p95),
            ("redo.materializations".into(), sg.redo_materializations),
            ("redo.bytes_saved".into(), sg.redo_bytes_saved),
            ("redo.vcl".into(), sg.redo_vcl),
            ("redo.vdl".into(), sg.redo_vdl),
            ("dev.queue_depth".into(), dq.depth),
            ("dev.bytes_in_flight".into(), dq.bytes_in_flight),
            ("dev.bytes_written".into(), dev_bytes),
            ("quiesce.windows".into(), self.kernel.quiesce_windows),
            ("quiesce.last_width_ns".into(), self.kernel.last_quiesce_width_ns),
            ("pipeline.checkpoints".into(), self.checkpoints_taken),
            ("extsync.sealed_total".into(), self.extsync_sealed),
            ("extsync.released_total".into(), self.extsync_released),
            ("extsync.pending_batches".into(), pending),
            ("trace.dropped_records".into(), self.trace.dropped_records()),
            ("trace.capacity".into(), self.trace.capacity() as u64),
            ("trace.cap_invalid".into(), self.trace.cap_override_invalid() as u64),
            ("device.health.degraded_members".into(), health.degraded_members()),
            ("device.health.worst".into(), health.worst_code()),
            ("device.health.read_fallbacks".into(), health.read_fallbacks),
            ("device.health.remapped_blocks".into(), health.bad_blocks_remapped),
            ("raid.rebuild.pending_blocks".into(), health.rebuild_pending_blocks),
            ("raid.rebuild.copied_blocks".into(), health.rebuild_copied_blocks),
            ("raid.rebuild.completed".into(), health.rebuilds_completed),
            ("retry.budget.spent_total".into(), self.retries_spent_total),
        ];
        // Cluster view: defaults describe a standalone node (a cluster
        // of one — no lag, nothing queued); the cluster layer overrides
        // them via `set_cluster_gauges` as replication progresses.
        for key in
            ["cluster.quorum_lag", "cluster.repl_queue_depth", "cluster.migration_round", "cluster.migration_dirty_pages"]
        {
            v.push((key.into(), self.cluster_gauges.get(key).copied().unwrap_or(0)));
        }
        for (k, val) in &self.cluster_gauges {
            if !matches!(
                k.as_str(),
                "cluster.quorum_lag"
                    | "cluster.repl_queue_depth"
                    | "cluster.migration_round"
                    | "cluster.migration_dirty_pages"
            ) {
                v.push((k.clone(), *val));
            }
        }
        for (i, state) in health.member_states.iter().enumerate() {
            v.push((format!("device.health.m{i}"), state.code()));
        }
        {
            let now = self.kernel.charge.clock().now();
            let open = self.breakers.values().filter(|b| b.open_until > now).count() as u64;
            let trips: u64 = self.breakers.values().map(|b| b.trips).sum();
            v.push(("pipeline.breaker.open".into(), open));
            v.push(("pipeline.breaker.trips".into(), trips));
        }
        if let Some(s) = &self.last_stats {
            v.push(("retry.budget.last_run".into(), s.retries as u64));
            v.push(("pipeline.last_stop_ns".into(), s.stop_time_ns));
            v.push(("pipeline.last_quiesce_ns".into(), s.quiesce_ns));
            v.push(("pipeline.last_shadow_ns".into(), s.shadow_ns));
            v.push(("pipeline.last_flush_ns".into(), s.flush_ns));
            v.push(("pipeline.last_commit_ns".into(), s.commit_ns));
            v.push(("pipeline.last_pages_flushed".into(), s.pages_flushed));
        }
        // Per-group stage latency: one gauge block per consistency group
        // that has checkpointed, so overlapping pipelines stay
        // individually observable.
        for (g, s) in &self.last_stats_by_group {
            v.push((format!("pipeline.g{g}.last_stop_ns"), s.stop_time_ns));
            v.push((format!("pipeline.g{g}.last_flush_ns"), s.flush_ns));
            v.push((format!("pipeline.g{g}.last_commit_ns"), s.commit_ns));
            v.push((format!("pipeline.g{g}.last_pages_flushed"), s.pages_flushed));
        }
        for (&g, &w) in &self.kernel.quiesce_width_by_group {
            v.push((format!("quiesce.g{g}.last_width_ns"), w));
        }
        for (g, pages) in group_shadow {
            v.push((format!("frames.g{g}.shadow_pages"), pages));
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Polls the installed sampler: records a gauge row if the sampling
    /// period has elapsed. Returns whether a row was recorded. Safe (and
    /// a no-op) without a sampler.
    pub fn sample_metrics(&mut self) -> bool {
        let Some(sampler) = self.sampler.clone() else {
            return false;
        };
        let now = self.kernel.charge.clock().now();
        if !sampler.due(now) {
            return false;
        }
        let gauges = self.stat_gauges();
        sampler.record(now, gauges)
    }

    /// Attaches a process tree to the SLS as a new consistency group
    /// (`sls attach`). The first checkpoint is full.
    pub fn attach(&mut self, root: Pid, opts: SlsOptions) -> Result<GroupId, SlsError> {
        self.kernel.proc(root)?;
        let id = GroupId(self.next_group);
        self.next_group += 1;
        let manifest = self.store.lock().alloc_oid();
        self.groups.insert(
            id,
            Group {
                id,
                roots: vec![root],
                opts,
                oidmap: OidMap::default(),
                manifest,
                epochs: Vec::new(),
                pending_durable: 0,
                last_checkpoint_ns: 0,
                sealed: VecDeque::new(),
                vnode_hash: HashMap::new(),
                named: HashMap::new(),
            },
        );
        Ok(id)
    }

    /// Marks a process ephemeral (`sls detach`): still quiesced with its
    /// group, never persisted; the parent sees SIGCHLD after a restore.
    pub fn detach(&mut self, pid: Pid) -> Result<(), SlsError> {
        self.kernel.proc_mut(pid)?.ephemeral = true;
        Ok(())
    }

    /// Live member pids of a group: the tree closure under its roots,
    /// in parent-before-child order.
    pub fn group_pids(&self, gid: GroupId) -> Result<Vec<Pid>, SlsError> {
        let g = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
        let mut out = Vec::new();
        let mut queue: VecDeque<Pid> = g.roots.iter().copied().collect();
        while let Some(pid) = queue.pop_front() {
            let Ok(p) = self.kernel.proc(pid) else { continue };
            if p.dead {
                continue;
            }
            out.push(pid);
            queue.extend(p.children.iter().copied());
        }
        Ok(out)
    }

    /// The groups currently attached (`sls ps`).
    pub fn groups(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self.groups.keys().copied().collect();
        v.sort();
        v
    }

    /// Store epochs belonging to a group's history.
    pub fn history(&self, gid: GroupId) -> Result<&[u64], SlsError> {
        Ok(&self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?.epochs)
    }

    /// Names the group's latest checkpoint (`sls checkpoint <name>`).
    pub fn name_checkpoint(&mut self, gid: GroupId, name: &str) -> Result<u64, SlsError> {
        let g = self.groups.get_mut(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
        let epoch = *g.epochs.last().ok_or(SlsError::NoCheckpoint(gid))?;
        g.named.insert(name.to_string(), epoch);
        Ok(epoch)
    }

    /// Looks up a named checkpoint.
    pub fn named_checkpoint(&self, gid: GroupId, name: &str) -> Result<u64, SlsError> {
        self.groups
            .get(&gid)
            .ok_or(SlsError::NoSuchGroup(gid))?
            .named
            .get(name)
            .copied()
            .ok_or(SlsError::NoCheckpoint(gid))
    }

    /// Periodic driver: checkpoints every group whose period has elapsed.
    /// When more than one group is due, their pipelines run through the
    /// [`scheduler::CheckpointScheduler`] so the stop windows stagger
    /// against each other's flushes instead of serializing. Returns the
    /// stats of the checkpoints taken.
    pub fn tick(&mut self) -> Result<Vec<CheckpointStats>, SlsError> {
        let now = self.kernel.charge.clock().now();
        // Degraded-mode cadence stretch: while the device stack reports
        // a degraded member, every group's effective period widens so
        // the limping device sees fewer, wider epochs. Recovery restores
        // the configured cadence on the very next tick.
        let factor = if self.config.degraded_period_factor > 1 && self.device_degraded() {
            self.config.degraded_period_factor
        } else {
            1
        };
        let mut due: Vec<GroupId> = self
            .groups
            .values()
            .filter(|g| {
                now.saturating_sub(g.last_checkpoint_ns)
                    >= g.opts.period_ns.saturating_mul(factor)
            })
            .map(|g| g.id)
            .collect();
        due.sort();
        let out = if due.len() > 1 {
            self.checkpoint_all(&due)?
        } else {
            let mut out = Vec::with_capacity(due.len());
            for gid in due {
                out.push(self.checkpoint_now(gid)?);
            }
            out
        };
        self.pump_external_synchrony();
        self.sample_metrics();
        Ok(out)
    }

    /// Checkpoints every group in `gids` with their pipelines overlapped
    /// by the [`scheduler::CheckpointScheduler`] (default policy): group
    /// B quiesces and serializes while group A's flush is in flight, and
    /// each group's epoch commits against its own draft's durability
    /// barrier. Returns one [`CheckpointStats`] per group, `gids` order.
    pub fn checkpoint_all(&mut self, gids: &[GroupId]) -> Result<Vec<CheckpointStats>, SlsError> {
        // Open breakers short-circuit before the scheduler sees the
        // group; the skipped groups still get (failed) stats entries.
        let mut skipped: HashMap<u64, CheckpointStats> = HashMap::new();
        let mut runnable: Vec<GroupId> = Vec::with_capacity(gids.len());
        for &gid in gids {
            match self.breaker_short_circuit(gid) {
                Some(stats) => {
                    skipped.insert(gid.0, stats);
                }
                None => runnable.push(gid),
            }
        }
        let ran = if runnable.is_empty() {
            Vec::new()
        } else {
            scheduler::CheckpointScheduler::default().run(self, &runnable)?
        };
        for stats in &ran {
            self.note_checkpoint_outcome(stats);
        }
        let mut by_group: HashMap<u64, CheckpointStats> =
            ran.into_iter().map(|s| (s.group, s)).collect();
        let mut all = Vec::with_capacity(gids.len());
        for &gid in gids {
            let Some(stats) = skipped.remove(&gid.0).or_else(|| by_group.remove(&gid.0)) else {
                continue;
            };
            if stats.failure.as_ref().map(|f| f.stage) != Some("breaker") {
                self.checkpoints_taken += 1;
            }
            self.last_stats_by_group.insert(stats.group, stats.clone());
            self.last_stats = Some(stats.clone());
            all.push(stats);
        }
        self.sample_metrics();
        Ok(all)
    }

    /// The store handle (benchmarks and tools).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Frame-arena gauges for the one arena shared by the VM and the
    /// store: resident frames, shared frames, and COW copies broken.
    pub fn frame_gauges(&self) -> aurora_frames::FrameGauges {
        self.kernel.vm.frame_gauges()
    }

    /// Looks up a kernel object's OID in a group's mapping (tools and
    /// tests).
    pub fn oidmap_lookup(&self, gid: GroupId, kobj: oidmap::KObj) -> Option<Oid> {
        self.groups.get(&gid)?.oidmap.get(kobj)
    }

    /// Bounds a group's retained history to its `n` most recent
    /// checkpoints, reclaiming superseded blocks from the store
    /// (§7: "Users can use the history… only limited by the available
    /// storage" — and reclaim it when they don't).
    pub fn retain_last(&mut self, gid: GroupId, n: usize) -> Result<u64, SlsError> {
        let mut reclaimed = 0;
        loop {
            let g = self.groups.get_mut(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
            if g.epochs.len() <= n.max(1) {
                break;
            }
            let dropped = g.epochs.remove(0);
            g.named.retain(|_, &mut e| e != dropped);
            let mut store = self.store.lock();
            // The group's epochs are the store's epochs in this
            // single-tenant configuration; drop the oldest store
            // checkpoint until the group's floor is reached.
            while store.epochs().first().copied() == Some(dropped)
                || store.epochs().first().map(|&e| e < dropped).unwrap_or(false)
            {
                store.drop_oldest_checkpoint()?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// Simulates a machine crash + reboot: in-flight device writes are
    /// lost, the store recovers to its last complete checkpoint, and the
    /// kernel restarts empty (all processes die). Groups are forgotten —
    /// rediscover them with [`Sls::manifests_at`] and restore.
    pub fn crash_and_reboot(&mut self) -> Result<(), SlsError> {
        // Dump the black box first: the causal graphs of the last few
        // epochs, frozen at the instant of the crash.
        if let Some(fr) = &self.flight {
            fr.trigger("crash_and_reboot", self.kernel.charge.clock().now());
        }
        self.store.lock().crash_and_reopen_in_place()?;
        let clock = self.kernel.charge.clock().clone();
        let model = self.kernel.charge.model().clone();
        let mut kernel = Kernel::new(clock, model);
        self.lineage_oids.lock().clear();
        // The fresh kernel rejoins the store's (surviving) frame arena so
        // the gauges stay continuous across the reboot.
        kernel.vm.set_arena(self.store.lock().arena().clone());
        kernel.set_pager(Box::new(swap::StorePager {
            store: self.store.clone(),
            lineage_oids: self.lineage_oids.clone(),
        }));
        self.kernel = kernel;
        // The reboot replaced the kernel; re-arm its charge accountant
        // and VM with the installed trace (a reboot is an event worth
        // seeing in the timeline, not a reason to stop recording).
        if self.trace.is_enabled() {
            self.kernel.charge.set_trace(self.trace.clone());
            self.kernel.vm.set_trace(self.trace.clone());
            self.trace.instant("core", "machine.reboot", &[]);
        }
        // The sampler survives the reboot too; the discontinuity is
        // recorded as a mark, never smoothed into the gauge rows.
        if let Some(s) = &self.sampler {
            s.mark(self.kernel.charge.clock().now(), "machine.reboot");
        }
        self.groups.clear();
        self.last_stats = None;
        self.last_stats_by_group.clear();
        Ok(())
    }
}
