//! The Aurora application API (Table 3).
//!
//! Custom applications use these calls to control and optimize
//! persistence: manual checkpoints and restores, atomic single-region
//! checkpoints (`sls_memckpt`), synchronous journaling (`sls_journal`),
//! durability barriers, memory-region exclusion, and per-descriptor
//! external-synchrony control.

use crate::checkpoint::CheckpointStats;
use crate::restore::{RestoreMode, RestoreReport};
use crate::{GroupId, Sls, SlsError};
use aurora_objstore::Oid;
use aurora_posix::{Fd, Pid};
use aurora_sim::clock::Stopwatch;

/// Result of an atomic region checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemckptStats {
    /// Store epoch of the region checkpoint.
    pub epoch: u64,
    /// Application stop time, ns (no OS-wide barrier — just the shadow).
    pub stop_time_ns: u64,
    /// Pages flushed.
    pub pages_flushed: u64,
    /// Durable at this virtual time.
    pub durable_at: u64,
}

/// The Table 3 surface. Implemented by [`Sls`]; a trait so applications
/// can be written against the API alone.
pub trait AuroraApi {
    /// `sls_checkpoint()`: create a checkpoint of the group now.
    fn sls_checkpoint(&mut self, gid: GroupId) -> Result<CheckpointStats, SlsError>;

    /// `sls_restore()`: restore the group's image at `epoch` (or the
    /// latest when `None`), creating fresh processes.
    fn sls_restore(
        &mut self,
        gid: GroupId,
        epoch: Option<u64>,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError>;

    /// `sls_memckpt()`: asynchronously checkpoint the single memory
    /// region mapped at `addr` — shadow it, flush it, and integrate it
    /// into the group's history (§7, "atomic region API").
    fn sls_memckpt(&mut self, gid: GroupId, pid: Pid, addr: u64) -> Result<MemckptStats, SlsError>;

    /// `sls_journal()`: synchronous append to a non-COW journal; returns
    /// the record's sequence number.
    fn sls_journal(&mut self, journal: Oid, data: &[u8]) -> Result<u64, SlsError>;

    /// Creates a journal of `blocks` preallocated blocks for
    /// [`sls_journal`](AuroraApi::sls_journal).
    fn sls_journal_create(&mut self, blocks: u64) -> Result<Oid, SlsError>;

    /// Truncates a journal (after its contents were absorbed by a full
    /// checkpoint, the RocksDB pattern of §9.6).
    fn sls_journal_truncate(&mut self, journal: Oid) -> Result<(), SlsError>;

    /// `sls_barrier()`: wait until the group's latest checkpoint is
    /// durable.
    fn sls_barrier(&mut self, gid: GroupId) -> Result<(), SlsError>;

    /// `sls_mctl()`: include/exclude the memory region at `addr` from
    /// checkpoints.
    fn sls_mctl(&mut self, pid: Pid, addr: u64, exclude: bool) -> Result<(), SlsError>;

    /// `sls_fdctl()`: control external synchrony per descriptor.
    fn sls_fdctl(&mut self, pid: Pid, fd: Fd, disable_extsync: bool) -> Result<(), SlsError>;
}

impl AuroraApi for Sls {
    fn sls_checkpoint(&mut self, gid: GroupId) -> Result<CheckpointStats, SlsError> {
        let stats = self.checkpoint_now(gid)?;
        self.pump_external_synchrony();
        Ok(stats)
    }

    fn sls_restore(
        &mut self,
        gid: GroupId,
        epoch: Option<u64>,
        mode: RestoreMode,
    ) -> Result<RestoreReport, SlsError> {
        let (manifest, epoch) = {
            let g = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?;
            let e = match epoch {
                Some(e) => e,
                None => *g.epochs.last().ok_or(SlsError::NoCheckpoint(gid))?,
            };
            (g.manifest, e)
        };
        self.restore_image(manifest, epoch, mode)
    }

    fn sls_memckpt(&mut self, gid: GroupId, pid: Pid, addr: u64) -> Result<MemckptStats, SlsError> {
        let clock = self.kernel.charge.clock().clone();
        // Backpressure as for full checkpoints.
        let pending = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?.pending_durable;
        clock.advance_to(pending);
        let sw = Stopwatch::start(&clock);
        let model = self.kernel.charge.model().clone();
        self.kernel.charge.raw(model.memckpt_fixed_ns);

        // Shadow just this region's object across the group's spaces.
        let pids = self.group_pids(gid)?;
        let spaces: Vec<aurora_vm::SpaceId> = pids
            .iter()
            .map(|&p| self.kernel.proc(p).map(|pr| pr.space))
            .collect::<Result<_, _>>()?;
        let space = self.kernel.proc(pid)?.space;
        let target = self
            .kernel
            .vm
            .space(space)?
            .entry_at(addr)
            .ok_or(SlsError::Vm(aurora_vm::VmError::BadAddress(addr)))?
            .object;
        // Retire the previous region shadow first (chain cap, §6).
        let _ = self.kernel.vm.collapse_under(target, {
            self.groups.get(&gid).expect("checked").opts.collapse_mode
        });
        let stats_before = self.kernel.vm.stats;
        let pair = self.kernel.vm.shadow_one(target, &spaces)?;
        self.kernel.shm_backmap(pair.old_top, pair.new_top);
        let delta = self.kernel.vm.stats - stats_before;
        self.kernel.charge.raw(delta.pte_downgrades * model.pte_cow_ns);
        self.kernel.charge.raw(model.tlb_shootdown_ns);
        let stop_time_ns = sw.elapsed_ns();

        // Flush asynchronously and commit a region epoch.
        let lineage = pair.lineage.0;
        let oid = {
            let g = self.groups.get_mut(&gid).expect("checked");
            let mut store = self.store.lock();
            let oid = g
                .oidmap
                .get_or_create(&mut store, crate::oidmap::KObj::Mem(lineage))?;
            self.lineage_oids
                .lock()
                .entry(lineage)
                .or_insert_with(|| crate::LineageBinding::live(oid));
            oid
        };
        let mut pages_flushed = 0;
        {
            let mut store = self.store.lock();
            // The region flush is its own draft epoch under the group.
            store.stage_for(gid.0);
            let dirty: Vec<u64> = self
                .kernel
                .vm
                .resident_page_indices(pair.old_top)?
                .into_iter()
                .filter(|&(_, d)| d)
                .map(|(pi, _)| pi)
                .collect();
            let mut batch: Vec<(u64, aurora_objstore::PageRef)> =
                Vec::with_capacity(dirty.len());
            for &pi in &dirty {
                batch.push((pi, self.kernel.vm.page_ref(pair.old_top, pi)?));
            }
            if !batch.is_empty() {
                // The region goes out as one charged bulk write.
                store.write_pages(oid, &batch)?;
            }
            for &pi in &dirty {
                self.kernel.vm.mark_clean(pair.old_top, pi)?;
                pages_flushed += 1;
            }
        }
        let info = {
            let mut store = self.store.lock();
            let info = store.commit_for(gid.0)?;
            store.stage_for(0);
            info
        };
        let g = self.groups.get_mut(&gid).expect("checked");
        g.epochs.push(info.epoch);
        g.pending_durable = info.durable_at;
        Ok(MemckptStats {
            epoch: info.epoch,
            stop_time_ns,
            pages_flushed,
            durable_at: info.durable_at,
        })
    }

    fn sls_journal(&mut self, journal: Oid, data: &[u8]) -> Result<u64, SlsError> {
        Ok(self.store.lock().journal_append(journal, data)?)
    }

    fn sls_journal_create(&mut self, blocks: u64) -> Result<Oid, SlsError> {
        let mut store = self.store.lock();
        let oid = store.alloc_oid();
        store.create_journal(oid, blocks)?;
        let info = store.commit()?;
        store.barrier(info);
        Ok(oid)
    }

    fn sls_journal_truncate(&mut self, journal: Oid) -> Result<(), SlsError> {
        Ok(self.store.lock().journal_truncate(journal)?)
    }

    fn sls_barrier(&mut self, gid: GroupId) -> Result<(), SlsError> {
        let pending = self.groups.get(&gid).ok_or(SlsError::NoSuchGroup(gid))?.pending_durable;
        self.kernel.charge.clock().advance_to(pending);
        self.pump_external_synchrony();
        Ok(())
    }

    fn sls_mctl(&mut self, pid: Pid, addr: u64, exclude: bool) -> Result<(), SlsError> {
        let space = self.kernel.proc(pid)?.space;
        Ok(self.kernel.vm.set_sls_exclude(space, addr, exclude)?)
    }

    fn sls_fdctl(&mut self, pid: Pid, fd: Fd, disable_extsync: bool) -> Result<(), SlsError> {
        let fid = self.kernel.resolve(pid, fd)?;
        self.kernel
            .files
            .get_mut(&fid)
            .ok_or(SlsError::Kernel(aurora_posix::KError::Badf))?
            .extsync_disabled = disable_extsync;
        Ok(())
    }
}
