//! End-to-end checkpoint/restore tests: the correctness claims of §4–5.

use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_posix::file::OpenFlags;
use aurora_posix::process::sig;
use aurora_vm::{Prot, PAGE_SIZE};

#[test]
fn memory_survives_checkpoint_restore() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    for _ in 0..5 {
        w.bump_counter(pid).unwrap();
    }
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.full);
    assert!(cp.stop_time_ns > 0);

    // Diverge after the checkpoint, then restore.
    for _ in 0..10 {
        w.bump_counter(pid).unwrap();
    }
    let report = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let new_pid = report.pids[0];
    assert_eq!(w.read_counter(new_pid).unwrap(), 5, "restored to checkpoint-time value");
    // The original process also still exists with its newer state.
    assert_eq!(w.read_counter(pid).unwrap(), 15);
}

#[test]
fn incremental_history_time_travel() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    let mut epochs = Vec::new();
    for i in 1..=4u64 {
        w.bump_counter(pid).unwrap();
        let cp = w.sls.sls_checkpoint(gid).unwrap();
        epochs.push((i, cp.epoch));
        assert_eq!(cp.full, i == 1);
    }
    // Restore each epoch and verify its counter value.
    for (value, epoch) in epochs {
        let r = w.sls.sls_restore(gid, Some(epoch), RestoreMode::Full).unwrap();
        assert_eq!(
            w.read_counter(r.pids[0]).unwrap(),
            value,
            "epoch {epoch} should hold counter {value}"
        );
    }
}

#[test]
fn incremental_flushes_only_dirty_pages() {
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("app");
    let addr = w.dirty_region(pid, 64).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let full = w.sls.sls_checkpoint(gid).unwrap();
    assert!(full.pages_flushed >= 64);

    // Dirty 3 pages; the next checkpoint flushes roughly that.
    for i in 0..3u64 {
        w.sls.kernel.mem_write(pid, addr + i * PAGE_SIZE as u64, &[9]).unwrap();
    }
    let incr = w.sls.sls_checkpoint(gid).unwrap();
    assert!(!incr.full);
    assert!(
        incr.pages_flushed >= 3 && incr.pages_flushed <= 8,
        "incremental flushed {} pages",
        incr.pages_flushed
    );
    assert!(incr.stop_time_ns < full.stop_time_ns * 2);
}

#[test]
fn restore_preserves_fd_sharing_and_offsets() {
    // The §5.1 example, through a checkpoint: fork-shared descriptions
    // keep a shared offset; independent opens do not.
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let parent = k.spawn("parent");
    let fd = k.open(parent, "/data", OpenFlags::RDWR, true).unwrap();
    k.write(parent, fd, b"0123456789").unwrap();
    k.lseek(parent, fd, 2).unwrap();
    let child = k.fork(parent).unwrap();
    let fd2 = k.open(child, "/data", OpenFlags::RDONLY, false).unwrap();

    let gid = w.sls.attach(parent, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let (rp, rc) = (r.pids[0], r.pids[1]);

    let k = &mut w.sls.kernel;
    // Shared description: parent reads 2 bytes from offset 2, child
    // continues at 4.
    assert_eq!(k.read(rp, fd, 2).unwrap(), b"23");
    assert_eq!(k.read(rc, fd, 2).unwrap(), b"45");
    // Independent description still at its own offset 0.
    assert_eq!(k.read(rc, fd2, 3).unwrap(), b"012");
}

#[test]
fn restore_preserves_shared_memory_and_cow() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let a = k.spawn("a");
    let shm_fd = k.shm_open(a, "/seg", 4).unwrap();
    let addr = k.mmap_shm(a, shm_fd).unwrap();
    k.mem_write(a, addr, b"shared before").unwrap();
    let priv_addr = k.mmap_anon(a, 2, Prot::RW).unwrap();
    k.mem_write(a, priv_addr, b"private").unwrap();
    let b = k.fork(a).unwrap();
    // Child maps the same POSIX shm (sharing is via registry + fork).
    k.mem_write(b, addr, b"shared after ").unwrap();
    // COW divergence in the private region.
    k.mem_write(b, priv_addr, b"childpv").unwrap();

    let gid = w.sls.attach(a, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let (ra, rb) = (r.pids[0], r.pids[1]);
    let k = &mut w.sls.kernel;

    // Shared memory: restored processes still share it.
    let mut buf = [0u8; 13];
    k.mem_read(ra, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"shared after ");
    k.mem_write(ra, addr, b"poke").unwrap();
    let mut buf4 = [0u8; 4];
    k.mem_read(rb, addr, &mut buf4).unwrap();
    assert_eq!(&buf4, b"poke", "restored sharing is live, not a copy");

    // COW privacy: each restored process has its own view.
    let mut pa = [0u8; 7];
    let mut pb = [0u8; 7];
    k.mem_read(ra, priv_addr, &mut pa).unwrap();
    k.mem_read(rb, priv_addr, &mut pb).unwrap();
    assert_eq!(&pa, b"private");
    assert_eq!(&pb, b"childpv");
}

#[test]
fn restore_preserves_pipes_and_inflight_fds() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let p = k.spawn("p");
    let (pr, pw) = k.pipe(p).unwrap();
    k.write(p, pw, b"in the pipe").unwrap();

    // An fd in flight inside a unix socket (SCM_RIGHTS).
    let (sa, sb) = k.socketpair(p).unwrap();
    let file_fd = k.open(p, "/carried", OpenFlags::RDWR, true).unwrap();
    k.write(p, file_fd, b"carried-data").unwrap();
    k.lseek(p, file_fd, 0).unwrap();
    k.sendmsg_fds(p, sa, b"msg", &[file_fd]).unwrap();
    k.deliver_all();

    let gid = w.sls.attach(p, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let rp = r.pids[0];
    let k = &mut w.sls.kernel;

    assert_eq!(k.read(rp, pr, 64).unwrap(), b"in the pipe");
    let (msg, fds) = k.recvmsg(rp, sb).unwrap();
    assert_eq!(msg, b"msg");
    assert_eq!(fds.len(), 1, "in-flight descriptor restored");
    assert_eq!(k.read(rp, fds[0], 12).unwrap(), b"carried-data");
}

#[test]
fn restore_preserves_anonymous_files() {
    // §5.2: an unlinked-but-open file must survive the checkpoint.
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let p = k.spawn("p");
    let fd = k.open(p, "/anon", OpenFlags::RDWR, true).unwrap();
    k.write(p, fd, b"ghost").unwrap();
    k.unlink(p, "/anon").unwrap();
    let gid = w.sls.attach(p, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let k = &mut w.sls.kernel;
    k.lseek(r.pids[0], fd, 0).unwrap();
    assert_eq!(k.read(r.pids[0], fd, 5).unwrap(), b"ghost");
}

#[test]
fn lazy_restore_pages_in_on_demand() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    w.dirty_region(pid, 256).unwrap();
    for _ in 0..7 {
        w.bump_counter(pid).unwrap();
    }
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    // Cold-cache restore (the post-reboot case): with the store's page
    // cache still warm from the flush, a full restore would be free.
    w.sls.store().lock().drop_page_cache();

    let lazy = w.sls.sls_restore(gid, None, RestoreMode::Lazy).unwrap();
    assert_eq!(lazy.pages_read, 0, "lazy restore reads nothing eagerly");
    // Faulting reads the page from the store transparently.
    assert_eq!(w.read_counter(lazy.pids[0]).unwrap(), 7);

    let full = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert!(full.pages_read >= 256, "full restore reads the image");
    assert!(lazy.elapsed_ns < full.elapsed_ns, "lazy restore is faster");
}

#[test]
fn ephemeral_process_not_restored_parent_gets_sigchld() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let parent = k.spawn("parent");
    let worker = k.fork(parent).unwrap();
    let gid = w.sls.attach(parent, SlsOptions::default()).unwrap();
    w.sls.detach(worker).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(r.pids.len(), 1, "ephemeral child is not restored");
    let p = w.sls.kernel.proc(r.pids[0]).unwrap();
    assert!(p.has_pending(sig::SIGCHLD), "parent learns the worker died");
}

#[test]
fn pid_virtualization_resolves_conflicts() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    // The original process still runs, so its pid is taken: the restored
    // process must get a fresh global pid but keep its local pid.
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let restored = w.sls.kernel.proc(r.pids[0]).unwrap();
    assert_ne!(restored.pid, pid, "global pid is fresh");
    assert_eq!(restored.local_pid, pid, "application-visible pid preserved");
}

#[test]
fn crash_recovers_last_complete_checkpoint() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.bump_counter(pid).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap(); // checkpoint 1 durable
    let durable_epoch = *w.sls.history(gid).unwrap().last().unwrap();

    w.bump_counter(pid).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    // Crash before the second checkpoint is durable: the machine dies,
    // the store recovers, the kernel reboots empty.
    w.sls.crash_and_reboot().unwrap();
    assert!(w.sls.kernel.proc(pid).is_err(), "processes died in the crash");

    let last = w.sls.store().lock().last_epoch().unwrap();
    assert_eq!(last, durable_epoch, "recovery finds the last complete checkpoint");
    let manifests = w.sls.manifests_at(last).unwrap();
    assert_eq!(manifests.len(), 1);
    let r = w.sls.restore_image(manifests[0], last, RestoreMode::Full).unwrap();
    // Counter was 1 at the durable checkpoint.
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 1);
}

#[test]
fn external_synchrony_holds_messages_until_durable() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let server = k.spawn("server");
    let client = k.spawn("client");
    let (s_srv, s_cli) = k.socketpair(server).unwrap();
    // Move the client end to the client process.
    let fid = k.resolve(server, s_cli).unwrap();
    k.proc_mut(server).unwrap().fdtable.remove(s_cli).unwrap();
    let s_cli = k.proc_mut(client).unwrap().fdtable.install(fid);

    let gid = w.sls.attach(server, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    // The server "responds" — but the response must be withheld until
    // the covering checkpoint is durable.
    w.sls.kernel.send(server, s_srv, b"response").unwrap();
    w.sls.pump_external_synchrony();
    assert!(
        w.sls.kernel.recvmsg(client, s_cli).is_err(),
        "message released before its checkpoint"
    );

    // Checkpoint + wait for durability: now it flows.
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    let (msg, _) = w.sls.kernel.recvmsg(client, s_cli).unwrap();
    assert_eq!(msg, b"response");
}

#[test]
fn fdctl_opts_out_of_external_synchrony() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let server = k.spawn("server");
    let client = k.spawn("client");
    let (s_srv, s_cli) = k.socketpair(server).unwrap();
    let fid = k.resolve(server, s_cli).unwrap();
    k.proc_mut(server).unwrap().fdtable.remove(s_cli).unwrap();
    let s_cli = k.proc_mut(client).unwrap().fdtable.install(fid);

    let gid = w.sls.attach(server, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    // Read-only connections don't need synchrony (§3).
    w.sls.sls_fdctl(server, s_srv, true).unwrap();
    w.sls.sls_fdctl(client, s_cli, true).unwrap();
    w.sls.kernel.send(server, s_srv, b"fast-path").unwrap();
    w.sls.pump_external_synchrony();
    let (msg, _) = w.sls.kernel.recvmsg(client, s_cli).unwrap();
    assert_eq!(msg, b"fast-path");
}

#[test]
fn memckpt_and_journal_apis() {
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("db");
    let addr = w.dirty_region(pid, 64).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();

    // Atomic region checkpoint: cheaper than a full one.
    w.sls.kernel.mem_write(pid, addr, b"region dirty").unwrap();
    let m = w.sls.sls_memckpt(gid, pid, addr).unwrap();
    assert!(m.pages_flushed >= 1);
    let full = w.sls.sls_checkpoint(gid).unwrap();
    assert!(m.stop_time_ns < full.stop_time_ns, "memckpt avoids the OS-wide barrier");

    // Journal: synchronous, sequenced.
    let j = w.sls.sls_journal_create(64).unwrap();
    assert_eq!(w.sls.sls_journal(j, b"put k1 v1").unwrap(), 0);
    assert_eq!(w.sls.sls_journal(j, b"put k2 v2").unwrap(), 1);
    w.sls.sls_journal_truncate(j).unwrap();
    assert_eq!(w.sls.sls_journal(j, b"put k3 v3").unwrap(), 2);
}

#[test]
fn migration_between_machines() {
    let mut src = World::quickstart();
    let pid = src.spawn_counter_app();
    for _ in 0..3 {
        src.bump_counter(pid).unwrap();
    }
    let gid = src.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = src.sls.sls_checkpoint(gid).unwrap();
    src.sls.sls_barrier(gid).unwrap();

    let mut dst = World::quickstart();
    let r = src.sls.migrate_to(&mut dst.sls, cp.epoch, RestoreMode::Full).unwrap();
    assert_eq!(dst.read_counter(r.pids[0]).unwrap(), 3, "state moved machines");
}

#[test]
fn coredump_is_valid_elf() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let dump = w.sls.coredump(pid).unwrap();
    assert_eq!(&dump[0..4], b"\x7fELF");
    assert_eq!(dump[4], 2, "ELF64");
    assert_eq!(u16::from_le_bytes([dump[16], dump[17]]), 4, "ET_CORE");
    assert!(dump.len() > 16 * PAGE_SIZE, "contains the memory image");
}

#[test]
fn swap_evicts_clean_pages_without_io_and_faults_back() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    let before = w.sls.kernel.vm.resident_frames();
    let bytes_before = {
        let store = w.sls.store().lock();
        let dev = store.device().clone();
        let n = dev.lock().bytes_written();
        n
    };
    let evicted = w.sls.evict_clean_pages(gid, 1000).unwrap();
    assert!(evicted > 0);
    assert!(w.sls.kernel.vm.resident_frames() < before);
    let bytes_after = {
        let store = w.sls.store().lock();
        let dev = store.device().clone();
        let n = dev.lock().bytes_written();
        n
    };
    assert_eq!(bytes_before, bytes_after, "clean eviction does no IO (§6)");

    // Touching the counter faults the page back from the store.
    assert_eq!(w.read_counter(pid).unwrap(), 1);
}

#[test]
fn checkpoint_dedups_shared_objects_exactly_once() {
    // Two processes sharing a description and a vnode: the image contains
    // one of each, not copies.
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let a = k.spawn("a");
    let fd = k.open(a, "/shared", OpenFlags::RDWR, true).unwrap();
    let _b = k.fork(a).unwrap();
    let _fd_dup = k.dup(a, fd).unwrap();
    let gid = w.sls.attach(a, SlsOptions::default()).unwrap();
    let cp1 = w.sls.sls_checkpoint(gid).unwrap();
    // Objects: 2 procs + 2 threads + 1 file + vnodes(root dir + file) +
    // mem objects. Run again: no growth (stable mapping).
    let cp2 = w.sls.sls_checkpoint(gid).unwrap();
    assert_eq!(cp1.objects, cp2.objects, "exactly-once scan is stable");
}

#[test]
fn lazy_historical_restore_is_branch_consistent() {
    // Regression: a lazy restore of an OLD epoch must fault in that
    // epoch's pages, never pages written by the abandoned future — and a
    // further checkpoint on the restored branch must stay self-consistent.
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let mut epochs = Vec::new();
    for _ in 0..4 {
        w.bump_counter(pid).unwrap();
        epochs.push(w.sls.sls_checkpoint(gid).unwrap().epoch);
    }
    w.sls.sls_barrier(gid).unwrap();

    // Lazily restore epoch 2 (counter == 2); the fault must not see the
    // epoch-4 value.
    let r = w.sls.sls_restore(gid, Some(epochs[1]), RestoreMode::Lazy).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 2, "branch must see its own past");

    // The branch continues: bump and checkpoint, then lazily restore the
    // branch's own new checkpoint.
    w.bump_counter(r.pids[0]).unwrap();
    let branch_epoch = w.sls.sls_checkpoint(r.group).unwrap().epoch;
    w.sls.sls_barrier(r.group).unwrap();
    let r2 = w.sls.sls_restore(r.group, Some(branch_epoch), RestoreMode::Lazy).unwrap();
    assert_eq!(w.read_counter(r2.pids[0]).unwrap(), 3, "branch future visible on branch");
}

#[test]
fn history_retention_reclaims_but_keeps_recent_epochs() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    for _ in 0..6 {
        w.bump_counter(pid).unwrap();
        w.sls.sls_checkpoint(gid).unwrap();
    }
    w.sls.sls_barrier(gid).unwrap();
    let all: Vec<u64> = w.sls.history(gid).unwrap().to_vec();
    assert_eq!(all.len(), 6);

    w.sls.retain_last(gid, 2).unwrap();
    let kept: Vec<u64> = w.sls.history(gid).unwrap().to_vec();
    assert_eq!(kept, all[4..].to_vec());
    // Old epochs are gone; recent ones restore fine.
    assert!(w.sls.sls_restore(gid, Some(all[0]), RestoreMode::Full).is_err());
    let r = w.sls.sls_restore(gid, Some(kept[1]), RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 6);
}

#[test]
fn memory_overcommit_keeps_residency_bounded() {
    // §6 "Memory Overcommitment": the app's data exceeds a residency
    // target; the pageout daemon keeps evicting clean pages while the
    // workload keeps running correctly.
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("big-app");
    let addr = w.dirty_region(pid, 2_048).unwrap(); // 8 MiB
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    let target_pages = 512u64;
    for round in 0..6u64 {
        // Touch a sliding window (the working set moves).
        let start = addr + (round * 256) * PAGE_SIZE as u64;
        w.sls.kernel.mem_touch(pid, start, 256 * PAGE_SIZE as u64).unwrap();
        w.sls.kernel.mem_write(pid, start, &round.to_le_bytes()).unwrap();
        w.sls.sls_checkpoint(gid).unwrap();
        w.sls.sls_barrier(gid).unwrap();
        let resident = w.sls.group_resident_pages(gid).unwrap();
        if resident > target_pages {
            w.sls.evict_clean_pages(gid, resident - target_pages).unwrap();
        }
        assert!(
            w.sls.group_resident_pages(gid).unwrap() <= target_pages + 64,
            "round {round}: residency exceeded the target"
        );
    }
    // All the data is still correct, paging back in on demand.
    for round in 0..6u64 {
        let start = addr + (round * 256) * PAGE_SIZE as u64;
        let mut buf = [0u8; 8];
        w.sls.kernel.mem_read(pid, start, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), round, "window {round} data lost");
    }
}

#[test]
fn aio_reads_reissued_writes_folded_in() {
    // §5.3: in-flight asynchronous writes are incorporated into the
    // checkpoint (it completes them); reads are recorded and reissued at
    // restore.
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("aio-app");
    let fd = w.sls.kernel.open(pid, "/data", OpenFlags::RDWR, true).unwrap();
    w.sls.kernel.write(pid, fd, &vec![0u8; 8192]).unwrap();
    w.sls.kernel.aio_issue(pid, fd, 0, 4096, true).unwrap(); // write
    w.sls.kernel.aio_issue(pid, fd, 4096, 4096, false).unwrap(); // read

    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    use aurora_posix::aio::AioKind;
    let writes_pending = w
        .sls
        .kernel
        .aio
        .in_flight()
        .filter(|o| o.kind == AioKind::Write)
        .count();
    assert_eq!(writes_pending, 0, "checkpoint folds in-flight writes");

    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let reissued: Vec<_> = w
        .sls
        .kernel
        .aio
        .in_flight()
        .filter(|o| o.pid == r.pids[0].0)
        .collect();
    assert_eq!(reissued.len(), 1, "the read is reissued for the restored process");
    assert_eq!(reissued[0].kind, AioKind::Read);
    assert_eq!((reissued[0].offset, reissued[0].len), (4096, 4096));
}

#[test]
fn incremental_delta_streams_feed_a_standby() {
    // `sls send` in continuous mode: a full stream, then small deltas;
    // the standby stays restorable at each step (pre-copy HA, §10).
    let mut src = World::quickstart();
    let pid = src.spawn_counter_app();
    src.dirty_region(pid, 64).unwrap(); // bulk state that will NOT change
    let gid = src.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp1 = src.sls.sls_checkpoint(gid).unwrap();
    src.sls.sls_barrier(gid).unwrap();

    let mut dst = World::quickstart();
    let full = src.sls.send_stream(cp1.epoch).unwrap();
    let manifests = dst.sls.recv_stream(&full).unwrap();
    assert_eq!(manifests.len(), 1);

    // Work + an incremental delta.
    for _ in 0..3 {
        src.bump_counter(pid).unwrap();
    }
    let cp2 = src.sls.sls_checkpoint(gid).unwrap();
    src.sls.sls_barrier(gid).unwrap();
    let delta = src.sls.send_delta(cp1.epoch, cp2.epoch).unwrap();
    assert!(
        delta.len() < full.len() / 2,
        "delta ({}) must be much smaller than the full stream ({})",
        delta.len(),
        full.len()
    );
    dst.sls.recv_stream(&delta).unwrap();

    let epoch = dst.sls.store().lock().last_epoch().unwrap();
    let r = dst.sls.restore_image(manifests[0], epoch, RestoreMode::Full).unwrap();
    assert_eq!(dst.read_counter(r.pids[0]).unwrap(), 3, "standby has the delta state");
}

#[test]
fn restored_parent_signals_child_by_remembered_pid() {
    // §5.3 "System Wide Identifiers": the whole point of restoring PIDs —
    // a parent signals its child with the pid it knew before the
    // checkpoint, even though the restored processes run under fresh
    // global pids.
    let mut w = World::quickstart();
    let parent = w.sls.kernel.spawn("parent");
    let child = w.sls.kernel.fork(parent).unwrap();
    let remembered_child_pid = child.0; // what the parent's memory holds
    let gid = w.sls.attach(parent, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();

    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let (rp, rc) = (r.pids[0], r.pids[1]);
    assert_ne!(rc.0, remembered_child_pid, "global pid is fresh (original still runs)");

    // The restored parent signals by the old (local) pid — it must reach
    // the restored child, not the original.
    w.sls.kernel.kill(rp, remembered_child_pid, sig::SIGTERM).unwrap();
    assert!(w.sls.kernel.proc(rc).unwrap().has_pending(sig::SIGTERM));
    assert!(
        !w.sls.kernel.proc(child).unwrap().has_pending(sig::SIGTERM),
        "the original child must not receive the restored parent's signal"
    );

    // Process-group delivery works in the restored namespace too.
    let pgid = w.sls.kernel.proc(rp).unwrap().pgid.0;
    w.sls.kernel.kill_pgrp(rp, pgid, sig::SIGUSR1).unwrap();
    assert!(w.sls.kernel.proc(rp).unwrap().has_pending(sig::SIGUSR1));
    assert!(w.sls.kernel.proc(rc).unwrap().has_pending(sig::SIGUSR1));
}

#[test]
fn vdso_is_reinjected_not_persisted() {
    // §5.3 "Device Files": the vDSO belongs to the running kernel; a
    // restore injects the *current* platform's copy, so applications
    // resume even after software upgrades.
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let vdso_addr = w.sls.kernel.map_vdso(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    assert!(cp.pages_flushed < 16, "no vDSO/device pages in the image");

    // "Upgrade" the kernel, then restore.
    w.sls.kernel.vdso_version += 1;
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let space = w.sls.kernel.proc(r.pids[0]).unwrap().space;
    let entry_obj = w.sls.kernel.vm.space(space).unwrap().entry_at(vdso_addr).unwrap().object;
    let obj = w.sls.kernel.vm.object(entry_obj).unwrap();
    assert!(
        matches!(obj.kind, aurora_vm::ObjKind::Device { .. }),
        "the vDSO mapping is a fresh device injection, not restored pages"
    );
    assert_eq!(obj.resident_pages(), 0, "no stale vDSO content came from the store");
}

#[test]
fn fork_under_system_shadow_flushes_newest_version() {
    // Regression: O ← S1(sys) ← F(fork) ← S2(sys) with the same page
    // dirty in both F and S2 — the store must keep S2's (newer) bytes,
    // regardless of chain-walk order.
    let mut w = World::quickstart();
    let parent = w.sls.kernel.spawn("parent");
    let addr = w.sls.kernel.mmap_anon(parent, 4, Prot::RW).unwrap();
    w.sls.kernel.mem_write(parent, addr, b"v0-original").unwrap();
    let gid = w.sls.attach(parent, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap(); // S1 on O

    // Dirty the page pre-fork (lands in S1's successor — the fork
    // parent's shadow F after the fork splits the chain).
    w.sls.kernel.mem_write(parent, addr, b"v1-prefork!").unwrap();
    let _child = w.sls.kernel.fork(parent).unwrap();
    // Post-fork write in the parent goes to its fork shadow F.
    w.sls.kernel.mem_write(parent, addr, b"v2-postfork").unwrap();
    // Checkpoint: system shadow S2 goes on top of F; both F and the
    // chain below hold dirty versions of page 0.
    w.sls.kernel.mem_write(parent, addr, b"v3-newest!!").unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    let r = w.sls.sls_restore(gid, Some(cp.epoch), RestoreMode::Full).unwrap();
    let mut buf = [0u8; 11];
    w.sls.kernel.mem_read(r.pids[0], addr, &mut buf).unwrap();
    assert_eq!(&buf, b"v3-newest!!", "the newest version must win in the store");
}
