//! Degraded-mode storage end to end: mirror failover mid-checkpoint
//! under live traffic with the online invariant checker armed, rebuild
//! back to byte identity, degraded cadence stretch and flush throttling,
//! durable floors across failover, and the per-group circuit breaker.

use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointConfig, RestoreMode, SlsError, SlsOptions};
use aurora_sim::units::MS;
use aurora_storage::faulty::FaultPlan;
use aurora_storage::HealthState;
use aurora_trace::InvariantChecker;

const LEAF_BYTES: u64 = 1 << 28;

fn gauge(gauges: &[(String, u64)], name: &str) -> u64 {
    gauges
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("gauge {name} missing"))
        .1
}

/// The acceptance soak: live traffic dirties pages and checkpoints on a
/// cadence; one mirror is rigged to die partway through a checkpoint's
/// flush. The epoch still completes on the survivor, the invariant
/// checker stays clean throughout, and reviving + resilvering +
/// scrubbing the dead mirror restores `Healthy` with byte-identical
/// contents on both members.
#[test]
fn mirror_death_mid_checkpoint_under_live_traffic_recovers() {
    let (mut w, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);

    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let mut bumps = 0u64;

    // Warm traffic: both mirrors healthy.
    for round in 0..10 {
        w.bump_counter(pid).unwrap();
        bumps += 1;
        if round % 5 == 4 {
            assert!(w.sls.sls_checkpoint(gid).unwrap().committed());
        }
    }

    // Arm the kill two writes into the *next* checkpoint's flush, then
    // keep the traffic running straight through the storm.
    faults[0].set_plan(FaultPlan {
        die_at_write: Some(faults[0].writes_seen() + 2),
        ..FaultPlan::none()
    });
    let mut epochs_during_storm = 0u64;
    for round in 0..20 {
        w.bump_counter(pid).unwrap();
        bumps += 1;
        if round % 5 == 4 {
            let cp = w.sls.sls_checkpoint(gid).unwrap();
            // Mirror redundancy absorbs the death: every epoch in the
            // storm completes (a clean abort + retry would also be
            // acceptable; the mirror makes it unnecessary).
            assert!(cp.committed(), "epoch survives mirror death: {:?}", cp.failure);
            epochs_during_storm += 1;
        }
    }
    assert_eq!(epochs_during_storm, 4);

    let report = mirror.health_report();
    assert_eq!(report.member_states[0], HealthState::Failed, "mirror 0 died");
    assert!(report.rebuild_pending_blocks > 0, "missed writes tracked for resilver");
    assert!(w.sls.device_degraded());

    // The failed state is visible as structured health through every
    // layer: mirror handle, store, and the SLS gauge surface.
    let store_health = w.sls.store().lock().device_health();
    assert_eq!(store_health.member_states[0], HealthState::Failed);
    let gauges = w.sls.stat_gauges();
    assert_eq!(gauge(&gauges, "device.health.degraded_members"), 1);
    assert_eq!(gauge(&gauges, "device.health.worst"), HealthState::Failed.code());

    // Replace the drive and resilver it incrementally under virtual
    // time, then verify with a full scrub.
    faults[0].revive();
    mirror.revive_mirror(0);
    assert_eq!(mirror.health_report().member_states[0], HealthState::Degraded);
    while mirror.rebuild_pending(0) > 0 {
        assert!(mirror.rebuild_step(0, 64).unwrap() > 0);
    }
    mirror.flush_members();
    assert_eq!(mirror.health_report().member_states[0], HealthState::Healthy);
    assert!(!w.sls.device_degraded());

    let scrub = mirror.scrub().unwrap();
    mirror.flush_members();
    assert_eq!(scrub.mismatched_blocks, 0, "full resilver already restored identity");
    assert!(mirror.mirrors_identical().unwrap(), "mirrors byte-identical after rebuild");
    assert!(mirror.health_report().rebuilds_completed >= 1);

    // Post-recovery epoch writes both mirrors again and restores clean.
    w.bump_counter(pid).unwrap();
    bumps += 1;
    assert!(w.sls.sls_checkpoint(gid).unwrap().committed());
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), bumps);

    // Zero online-invariant violations across the whole storm.
    assert!(checker.checked() > 0, "checker observed events");
    checker.assert_clean();
}

/// While the device stack reports a degraded member, `tick()` stretches
/// every group's effective period by `degraded_period_factor`; recovery
/// restores the configured cadence immediately.
#[test]
fn degraded_device_stretches_checkpoint_cadence() {
    let (mut w, mirror, _faults) = World::with_mirrored_store(LEAF_BYTES);
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions { period_ns: 10 * MS, ..Default::default() }).unwrap();

    w.bump_counter(pid).unwrap();
    w.clock.advance_to(w.clock.now() + 10 * MS);
    assert_eq!(w.sls.tick().unwrap().len(), 1, "healthy: due after one period");

    // Pull a drive: one period is no longer enough.
    mirror.fail_mirror(0);
    assert!(w.sls.device_degraded());
    w.bump_counter(pid).unwrap();
    let t0 = w.clock.now();
    w.clock.advance_to(t0 + 15 * MS);
    assert!(w.sls.tick().unwrap().is_empty(), "degraded: cadence stretched 4x");
    w.clock.advance_to(t0 + 60 * MS);
    let taken = w.sls.tick().unwrap();
    assert_eq!(taken.len(), 1, "stretched period elapses eventually");
    assert!(taken[0].committed(), "degraded checkpoint lands on the survivor");

    // Resilver: cadence snaps back on the next tick.
    mirror.revive_mirror(0);
    while mirror.rebuild_pending(0) > 0 {
        mirror.rebuild_step(0, 64).unwrap();
    }
    assert!(!w.sls.device_degraded());
    w.bump_counter(pid).unwrap();
    w.clock.advance_to(w.clock.now() + 15 * MS);
    assert_eq!(w.sls.tick().unwrap().len(), 1, "recovery restores the cadence");
    assert!(w.sls.sls_restore(gid, None, RestoreMode::Full).is_ok());
}

/// Epochs committed before, during, and after a mirror death all stay
/// restorable: the per-group durable floor tracks what actually reached
/// a healthy mirror, so failover never silently rolls a group back.
#[test]
fn durable_floors_survive_mirror_failover() {
    let (mut w, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    // Epoch A: both mirrors healthy.
    w.bump_counter(pid).unwrap();
    let a = w.sls.sls_checkpoint(gid).unwrap();
    assert!(a.committed());

    // Kill mirror 0, then commit epoch B on the survivor alone.
    faults[0].kill();
    w.bump_counter(pid).unwrap();
    w.bump_counter(pid).unwrap();
    let b = w.sls.sls_checkpoint(gid).unwrap();
    assert!(b.committed(), "failover epoch commits on the survivor");
    assert!(b.epoch > a.epoch);

    // Both floors hold while degraded: the old epoch and the failover
    // epoch restore to their exact counter values.
    let ra = w.sls.sls_restore(gid, Some(a.epoch), RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(ra.pids[0]).unwrap(), 1);
    let rb = w.sls.sls_restore(gid, Some(b.epoch), RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(rb.pids[0]).unwrap(), 3);

    // Resilver mirror 0 and verify the floors again on a whole array.
    faults[0].revive();
    mirror.revive_mirror(0);
    while mirror.rebuild_pending(0) > 0 {
        mirror.rebuild_step(0, 64).unwrap();
    }
    mirror.flush_members();
    assert!(mirror.mirrors_identical().unwrap());
    let r = w.sls.sls_restore(gid, Some(b.epoch), RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 3, "floor intact after resilver");
}

/// With `breaker_trip_failures` configured, consecutive checkpoint
/// failures trip the group's circuit breaker: further attempts
/// short-circuit without touching the device until the cooldown expires,
/// then the next real attempt closes the breaker on success.
#[test]
fn circuit_breaker_trips_and_cools_down() {
    let (mut w, handle) = World::with_faulty_store(1 << 28, FaultPlan::none());
    w.sls.set_checkpoint_config(CheckpointConfig {
        breaker_trip_failures: 2,
        breaker_cooldown_ns: 20 * MS,
        ..Default::default()
    });
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.bump_counter(pid).unwrap();
    assert!(w.sls.sls_checkpoint(gid).unwrap().committed());

    // Two consecutive wedged-device failures trip the breaker.
    for _ in 0..2 {
        w.bump_counter(pid).unwrap();
        handle.set_plan(FaultPlan {
            fail_writes_from: Some(handle.writes_seen()),
            ..FaultPlan::none()
        });
        let cp = w.sls.sls_checkpoint(gid).unwrap();
        assert!(!cp.committed());
        assert_eq!(cp.failure.as_ref().unwrap().stage, "flush");
    }
    handle.clear_faults();

    // Open: the next attempt is refused without any device traffic.
    let writes_before = handle.writes_seen();
    let skipped = w.sls.sls_checkpoint(gid).unwrap();
    let f = skipped.failure.expect("breaker-open reports a structured failure");
    assert_eq!(f.stage, "breaker");
    assert_eq!(f.attempts, 0);
    assert!(matches!(f.cause, SlsError::BreakerOpen { group, .. } if group == gid.0), "{}", f.cause);
    assert_eq!(handle.writes_seen(), writes_before, "no device traffic while open");

    let gauges = w.sls.stat_gauges();
    assert_eq!(gauge(&gauges, "pipeline.breaker.open"), 1);
    assert_eq!(gauge(&gauges, "pipeline.breaker.trips"), 1);

    // Cooldown expires: the device is healthy again, so the next real
    // attempt succeeds and closes the breaker.
    w.clock.advance_to(w.clock.now() + 20 * MS);
    w.bump_counter(pid).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.committed(), "post-cooldown checkpoint succeeds: {:?}", cp.failure);
    let gauges = w.sls.stat_gauges();
    assert_eq!(gauge(&gauges, "pipeline.breaker.open"), 0, "success closes the breaker");
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 4);
}

/// The degraded-mode gauge surface: health, rebuild, and retry-budget
/// gauges move with the array's state so `sls stat`/`watch` can show a
/// storm as it happens.
#[test]
fn degraded_and_rebuild_gauges_track_the_array() {
    let (mut w, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.bump_counter(pid).unwrap();
    assert!(w.sls.sls_checkpoint(gid).unwrap().committed());

    let healthy = w.sls.stat_gauges();
    assert_eq!(gauge(&healthy, "device.health.degraded_members"), 0);
    assert_eq!(gauge(&healthy, "device.health.worst"), HealthState::Healthy.code());
    assert_eq!(gauge(&healthy, "raid.rebuild.pending_blocks"), 0);
    assert_eq!(gauge(&healthy, "device.health.m0"), HealthState::Healthy.code());
    assert_eq!(gauge(&healthy, "device.health.m1"), HealthState::Healthy.code());

    faults[0].kill();
    w.bump_counter(pid).unwrap();
    assert!(w.sls.sls_checkpoint(gid).unwrap().committed());
    let degraded = w.sls.stat_gauges();
    assert_eq!(gauge(&degraded, "device.health.degraded_members"), 1);
    assert_eq!(gauge(&degraded, "device.health.m0"), HealthState::Failed.code());
    assert!(gauge(&degraded, "raid.rebuild.pending_blocks") > 0);

    faults[0].revive();
    mirror.revive_mirror(0);
    while mirror.rebuild_pending(0) > 0 {
        mirror.rebuild_step(0, 64).unwrap();
    }
    let rebuilt = w.sls.stat_gauges();
    assert_eq!(gauge(&rebuilt, "raid.rebuild.pending_blocks"), 0);
    assert!(gauge(&rebuilt, "raid.rebuild.copied_blocks") > 0);
    assert!(gauge(&rebuilt, "raid.rebuild.completed") >= 1);
    assert_eq!(gauge(&rebuilt, "device.health.m0"), HealthState::Healthy.code());
}
