//! Serializer record tests: every POSIX object type round-trips through
//! its on-disk record bit-exactly, and checkpoint images decode to
//! records matching the live kernel state.

use aurora_core::oidmap::KObj;
use aurora_core::serial;
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_posix::file::OpenFlags;
use aurora_posix::kqueue::{Filter, Kevent};
use aurora_posix::process::Regs;
use aurora_posix::socket::TcpState;
use aurora_posix::ThreadState;

/// Builds one of everything, checkpoints, and returns (world, gid, pid).
fn checkpointed_world() -> (World, aurora_core::GroupId, aurora_posix::Pid) {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let pid = k.spawn("everything");
    // Files, pipes, sockets, kqueue, pty, shm.
    let fd = k.open(pid, "/f", OpenFlags::RDWR, true).unwrap();
    k.write(pid, fd, b"record test").unwrap();
    let (_r, wfd) = k.pipe(pid).unwrap();
    k.write(pid, wfd, b"piped bytes").unwrap();
    let (sa, _sb) = k.socketpair(pid).unwrap();
    k.send(pid, sa, b"queued").unwrap();
    let kq = k.kqueue(pid).unwrap();
    k.kevent_register(pid, kq, Kevent { ident: 9, filter: Filter::Write, enabled: true, udata: 77 })
        .unwrap();
    k.openpty(pid).unwrap();
    let shm_fd = k.shm_open(pid, "/rec-seg", 2).unwrap();
    let shm_addr = k.mmap_shm(pid, shm_fd).unwrap();
    k.mem_write(pid, shm_addr, b"shm!").unwrap();
    // Distinctive thread state.
    let tid = k.proc(pid).unwrap().threads[0];
    {
        let t = k.threads.get_mut(&tid).unwrap();
        t.sigmask = 0xDEAD_BEEF;
        t.priority = -7;
        t.regs = Regs { pc: 0x401234, sp: 0x7fff_0000, gp: [11; 8], fpu: [22; 8] };
    }
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    (w, gid, pid)
}

fn stored_record(w: &World, gid: aurora_core::GroupId, kobj: KObj) -> Vec<u8> {
    let oid = w.sls.oidmap_lookup(gid, kobj).expect("object was checkpointed");
    let store = w.sls.store().lock();
    let epoch = store.last_epoch().unwrap();
    store.meta_at(oid, epoch).unwrap().to_vec()
}

#[test]
fn thread_record_captures_cpu_state_exactly() {
    let (w, gid, pid) = checkpointed_world();
    let tid = w.sls.kernel.proc(pid).unwrap().threads[0];
    let rec = serial::decode_thread(&stored_record(&w, gid, KObj::Thread(tid.0))).unwrap();
    assert_eq!(rec.local_tid, tid.0);
    assert_eq!(rec.sigmask, 0xDEAD_BEEF);
    assert_eq!(rec.priority, -7);
    assert_eq!(rec.regs, Regs { pc: 0x401234, sp: 0x7fff_0000, gp: [11; 8], fpu: [22; 8] });
}

#[test]
fn proc_record_lists_fds_and_entries() {
    let (w, gid, pid) = checkpointed_world();
    let p = w.sls.kernel.proc(pid).unwrap();
    let rec = serial::decode_proc(&stored_record(&w, gid, KObj::Proc(pid.0))).unwrap();
    assert_eq!(rec.local_pid, p.local_pid.0);
    assert_eq!(rec.fds.len(), p.fdtable.len());
    assert_eq!(
        rec.entries.len(),
        w.sls.kernel.vm.entries(p.space).unwrap().len(),
        "every map entry serialized"
    );
    assert_eq!(rec.name, "everything");
}

#[test]
fn kqueue_record_holds_the_event() {
    let (w, gid, _pid) = checkpointed_world();
    let kq_id = *w.sls.kernel.kqueues.keys().next().unwrap();
    let rec = serial::decode_kqueue(&stored_record(&w, gid, KObj::Kqueue(kq_id))).unwrap();
    assert_eq!(rec.events, vec![(9, 1, true, 77)]);
}

#[test]
fn pipe_record_holds_buffered_bytes() {
    let (w, gid, _pid) = checkpointed_world();
    let pipe_id = *w.sls.kernel.pipes.keys().next().unwrap();
    let rec = serial::decode_pipe(&stored_record(&w, gid, KObj::Pipe(pipe_id))).unwrap();
    assert_eq!(rec.buffer, b"piped bytes");
    assert!(rec.reader_open && rec.writer_open);
}

#[test]
fn socket_record_holds_unsent_message_and_peer() {
    let (w, gid, _pid) = checkpointed_world();
    // The message was in flight at checkpoint time; exactly one record
    // (sender's send buffer — the image is cut before intra-group
    // delivery) holds it, and the pair's records reference each other.
    let mut carried = Vec::new();
    let mut peers = 0;
    for sid in w.sls.kernel.sockets.keys() {
        let rec = serial::decode_socket(&stored_record(&w, gid, KObj::Socket(*sid))).unwrap();
        for (data, _) in rec.send_buf.iter().chain(rec.recv_buf.iter()) {
            carried.push(data.clone());
        }
        if rec.peer.is_some() {
            peers += 1;
        }
        assert_eq!(rec.tcp_state, 0, "unix stream pair is not TCP-established");
    }
    assert_eq!(carried, vec![b"queued".to_vec()], "the in-flight message is in the image once");
    assert_eq!(peers, 2, "both ends reference each other by OID");
}

#[test]
fn vnode_record_has_hidden_link_count() {
    let (w, gid, _pid) = checkpointed_world();
    let ino = w
        .sls
        .kernel
        .vfs
        .vnode_ids()
        .into_iter()
        .find(|v| {
            matches!(
                w.sls.kernel.vfs.vnode(*v).map(|vn| vn.open_refs > 0),
                Ok(true)
            )
        })
        .expect("the open file has open refs");
    let rec = serial::decode_vnode(&stored_record(&w, gid, KObj::Vnode(ino.0))).unwrap();
    assert!(rec.open_refs >= 1, "hidden link count persisted");
    assert_eq!(rec.size, "record test".len() as u64);
}

#[test]
fn shm_record_references_its_memory_object() {
    let (w, gid, _pid) = checkpointed_world();
    let shm_id = *w.sls.kernel.shm.posix.keys().next().unwrap();
    let rec = serial::decode_shm_posix(&stored_record(&w, gid, KObj::ShmPosix(shm_id))).unwrap();
    assert_eq!(rec.name, "/rec-seg");
    assert_eq!(rec.pages, 2);
    // The referenced memory object exists in the same image and holds
    // the written page.
    let store = w.sls.store().lock();
    let epoch = store.last_epoch().unwrap();
    assert!(store.pages_at(rec.mem, epoch).unwrap().contains(&0));
}

#[test]
fn tcp_socket_record_holds_five_tuple_and_seqs() {
    let mut w = World::quickstart();
    let k = &mut w.sls.kernel;
    let srv = k.spawn("server");
    let lfd = k.socket(srv, aurora_posix::socket::Domain::Inet, aurora_posix::socket::SockType::Stream).unwrap();
    k.bind_inet(srv, lfd, aurora_posix::socket::InetAddr { ip: 0x0a000001, port: 6379 }).unwrap();
    k.listen(srv, lfd).unwrap();
    let cli = k.spawn("client");
    let cfd = k.socket(cli, aurora_posix::socket::Domain::Inet, aurora_posix::socket::SockType::Stream).unwrap();
    let afd = k.tcp_connect(cli, cfd, srv, lfd).unwrap();
    let _ = afd;
    let gid = w.sls.attach(srv, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    // The accepted socket's record: established, bound to port 6379.
    let (sid, _) = w
        .sls
        .kernel
        .sockets
        .iter()
        .find(|(_, s)| s.tcp_state == TcpState::Established && s.inet.0.port == 6379)
        .expect("accepted socket");
    let rec = serial::decode_socket(&stored_record(&w, gid, KObj::Socket(*sid))).unwrap();
    assert_eq!(rec.tcp_state, 2);
    assert_eq!(rec.local.1, 6379);
    assert_ne!(rec.remote.1, 0, "remote port captured");
    assert_ne!(rec.snd_seq, 0, "sequence numbers captured");
}

#[test]
fn quiesced_threads_resume_after_checkpoint() {
    let (w, _gid, pid) = checkpointed_world();
    for tid in &w.sls.kernel.proc(pid).unwrap().threads {
        assert_eq!(
            w.sls.kernel.threads[tid].state,
            ThreadState::User,
            "checkpoint must leave threads running"
        );
    }
}
