//! `sls send` / `sls recv` onto a `Raid1`-backed receiver whose mirror
//! loses a member *mid-transfer*: the import completes on the survivor,
//! the online invariant checker stays clean, and the received image is
//! byte-identical to the source — then a resilver restores redundancy.

use aurora_core::world::World;
use aurora_core::{RestoreMode, SlsOptions};
use aurora_storage::faulty::FaultPlan;
use aurora_trace::InvariantChecker;

const LEAF_BYTES: u64 = 1 << 28;

#[test]
fn sendrecv_roundtrip_survives_mirror_death_mid_transfer() {
    // Source: a plain striped store with a counter app and history.
    let mut src = World::with_store_bytes(1 << 28);
    let pid = src.spawn_counter_app();
    let gid = src.sls.attach(pid, SlsOptions::default()).unwrap();
    for _ in 0..40 {
        src.bump_counter(pid).unwrap();
    }
    // A few extra dirty pages so the stream is more than a handful of
    // device writes — the member must die with the transfer still going.
    src.dirty_region(pid, 64).unwrap();
    let cp = src.sls.checkpoint_now(gid).unwrap();
    let stream = src.sls.send_stream(cp.epoch).unwrap();

    // Receiver: a two-way mirror with the invariant checker armed.
    let (mut dst, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let trace = dst.enable_tracing();
    let checker = InvariantChecker::arm(&trace);

    // Rig member 0 to die a couple of writes into the import.
    faults[0].set_plan(FaultPlan {
        die_at_write: Some(faults[0].writes_seen() + 2),
        ..FaultPlan::none()
    });
    let manifests = dst.sls.recv_stream(&stream).unwrap();
    assert!(!manifests.is_empty(), "stream carried the manifest");
    assert!(dst.sls.device_degraded(), "the member died during the transfer");
    assert_eq!(
        mirror.health_report().member_states[0],
        aurora_storage::HealthState::Failed,
        "member 0 died mid-import while member 1 took the rest"
    );

    // Byte-identity: every object/page of the source image reads back
    // identically from the degraded mirror.
    let epoch_dst = dst.sls.store().lock().last_epoch().unwrap();
    let src_store = src.sls.store().clone();
    let dst_store = dst.sls.store().clone();
    let oids = src_store.lock().objects_at(cp.epoch).unwrap();
    let mut pages_compared = 0u64;
    for &oid in &oids {
        let pages = src_store.lock().pages_at(oid, cp.epoch).unwrap();
        for pi in pages {
            let a = src_store.lock().read_page(oid, pi, cp.epoch).unwrap();
            let b = dst_store.lock().read_page(oid, pi, epoch_dst).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "oid {oid:?} page {pi} differs");
            pages_compared += 1;
        }
        let ma = src_store.lock().meta_at(oid, cp.epoch).map(|m| m.to_vec()).ok();
        let mb = dst_store.lock().meta_at(oid, epoch_dst).map(|m| m.to_vec()).ok();
        assert_eq!(ma, mb, "oid {oid:?} metadata differs");
    }
    assert!(pages_compared > 64, "the image actually carried pages");

    // The image is *usable* degraded: restore and read the counter.
    let report = dst
        .sls
        .restore_image(manifests[0], epoch_dst, RestoreMode::Full)
        .unwrap();
    let new_pid = report.pids[0];
    assert_eq!(dst.read_counter(new_pid).unwrap(), 40);

    // Resilver: revive, rebuild, scrub — redundancy restored with both
    // members byte-identical.
    faults[0].revive();
    mirror.revive_mirror(0);
    while mirror.rebuild_pending(0) > 0 {
        assert!(mirror.rebuild_step(0, 256).unwrap() > 0);
    }
    mirror.flush_members();
    assert_eq!(mirror.scrub().unwrap().mismatched_blocks, 0);
    assert!(mirror.mirrors_identical().unwrap(), "mirrors converged after rebuild");

    assert!(checker.checked() > 0, "invariant probes fired during the import");
    checker.assert_clean();
}
