//! End-to-end frame-arena properties: one page identity from the VM to
//! the object store.
//!
//! The unified COW frame arena promises (a) a checkpoint moves pages
//! from the VM into the store *by reference* — the shadow and the flush
//! copy zero page bytes on the host — and (b) a restore hands the new
//! space refs into the store's page cache, so restored memory aliases
//! the store until the first post-restore write breaks COW. The
//! `copies_broken` gauge counts every host-side page copy, which makes
//! both claims directly testable.

use aurora_core::oidmap::KObj;
use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_vm::{Prot, PAGE_SIZE};

const N: u64 = 16;

/// Spawns a process with `N` pages of distinct non-zero content.
fn spawn_patterned(w: &mut World) -> (aurora_posix::Pid, u64) {
    let pid = w.sls.kernel.spawn("frames-app");
    let addr = w.sls.kernel.mmap_anon(pid, N, Prot::RW).unwrap();
    for pi in 0..N {
        let fill = [0x10 + pi as u8; 64];
        w.sls.kernel.mem_write(pid, addr + pi * PAGE_SIZE as u64, &fill).unwrap();
    }
    (pid, addr)
}

/// The acceptance criterion: a system-shadow checkpoint of an N-page
/// dirty set performs ZERO host-side page copies at shadow time and at
/// flush time; copies happen only when the resumed application writes —
/// exactly one per written page.
#[test]
fn checkpoint_copies_no_pages_until_the_app_writes() {
    let mut w = World::quickstart();
    let (pid, addr) = spawn_patterned(&mut w);
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    // Initial faults materialize zero frames; that is allocation, not
    // copying — the gauge must still be zero.
    assert_eq!(w.sls.frame_gauges().copies_broken, 0, "zero-fill is not a copy");

    let before = w.sls.frame_gauges().copies_broken;
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert_eq!(
        w.sls.frame_gauges().copies_broken,
        before,
        "shadow + flush moved {} dirty pages with zero host-side copies",
        cp.pages_flushed
    );
    assert!(cp.pages_flushed >= N, "the dirty set was flushed");
    assert!(
        cp.shared_frames >= N,
        "during the checkpoint the frozen epoch and the store cache share \
         the frames (got {})",
        cp.shared_frames
    );

    // Post-resume writes break COW: exactly one copy per written page,
    // and a second write to the same page is free.
    for pi in 0..N {
        w.sls.kernel.mem_write(pid, addr + pi * PAGE_SIZE as u64, &[0xEE; 8]).unwrap();
    }
    assert_eq!(
        w.sls.frame_gauges().copies_broken,
        before + N,
        "exactly one COW copy per written page"
    );
    for pi in 0..N {
        w.sls.kernel.mem_write(pid, addr + pi * PAGE_SIZE as u64, &[0xEF; 8]).unwrap();
    }
    assert_eq!(
        w.sls.frame_gauges().copies_broken,
        before + N,
        "rewriting an already-broken page copies nothing"
    );
}

/// Satellite: a restored space shares frames with the store's page cache
/// until first write, then diverges — with `copies_broken` incrementing
/// exactly once per written page.
#[test]
fn restore_aliases_the_store_cache_until_first_write() {
    let mut w = World::quickstart();
    let (pid, addr) = spawn_patterned(&mut w);

    // The on-disk object is keyed by the region's lineage.
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let target = w.sls.kernel.vm.space(space).unwrap().entry_at(addr).unwrap().object;
    let lineage = w.sls.kernel.vm.object(target).unwrap().lineage.0;

    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    let oid = w.sls.oidmap_lookup(gid, KObj::Mem(lineage)).unwrap();

    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let rpid = r.pids[0];
    let rspace = w.sls.kernel.proc(rpid).unwrap().space;
    let entry = *w.sls.kernel.vm.space(rspace).unwrap().entry_at(addr).unwrap();
    let robj = entry.object;

    // Every restored page is the SAME frame the store's cache holds:
    // the restore copied no bytes.
    for pi in 0..N {
        let vm_page = w.sls.kernel.vm.page_ref(robj, pi).unwrap();
        let cached = w.sls.store().lock().read_page(oid, pi, cp.epoch).unwrap();
        assert!(
            aurora_core::PageRef::ptr_eq(&vm_page, &cached),
            "restored page {pi} aliases the store's cached frame"
        );
        assert!(vm_page.ref_count() >= 2, "the alias is visible in the refcount");
    }

    // First write to each page diverges it: one copy each, and the
    // store's cache keeps the checkpointed bytes.
    let before = w.sls.frame_gauges().copies_broken;
    for pi in 0..N {
        w.sls.kernel.mem_write(rpid, addr + pi * PAGE_SIZE as u64, &[0xCC; 8]).unwrap();
    }
    assert_eq!(
        w.sls.frame_gauges().copies_broken,
        before + N,
        "exactly one COW break per first write"
    );
    for pi in 0..N {
        let vm_page = w.sls.kernel.vm.page_ref(robj, pi).unwrap();
        let cached = w.sls.store().lock().read_page(oid, pi, cp.epoch).unwrap();
        assert!(
            !aurora_core::PageRef::ptr_eq(&vm_page, &cached),
            "page {pi} diverged from the cache"
        );
        assert_eq!(cached.bytes()[0], 0x10 + pi as u8, "the epoch keeps its bytes");
        assert_eq!(vm_page.bytes()[0], 0xCC, "the space keeps its write");
    }
}
