//! Trace-subsystem integration tests: external-synchrony ordering
//! proven from the recorded event stream, byte-identical exports across
//! identical runs, and the zero-cost-when-disabled contract (tracing
//! never perturbs the virtual timeline).

use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointStats, SlsOptions};
use aurora_trace::{Phase, Trace, TraceEvent};

/// A deterministic workload exercising checkpoint rounds, a crash, and
/// recovery. Returns every committed checkpoint's stats plus the final
/// virtual time.
fn counter_workload(w: &mut World) -> (Vec<CheckpointStats>, u64) {
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let mut all = Vec::new();
    all.push(w.sls.sls_checkpoint(gid).unwrap());
    for _ in 0..4 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        all.extend(w.sls.tick().unwrap());
    }
    w.sls.sls_barrier(gid).unwrap();
    w.sls.crash_and_reboot().unwrap();
    let epoch = w.sls.store().lock().last_epoch().unwrap();
    let manifest = w.sls.manifests_at(epoch).unwrap()[0];
    w.sls.restore_image(manifest, epoch, aurora_core::RestoreMode::Full).unwrap();
    (all, w.clock.now())
}

/// An external-synchrony workload: a server responds over a socketpair,
/// and each response is held until its covering checkpoint is durable.
fn extsync_workload(w: &mut World) {
    let k = &mut w.sls.kernel;
    let server = k.spawn("server");
    let client = k.spawn("client");
    let (s_srv, s_cli) = k.socketpair(server).unwrap();
    let fid = k.resolve(server, s_cli).unwrap();
    k.proc_mut(server).unwrap().fdtable.remove(s_cli).unwrap();
    let s_cli = k.proc_mut(client).unwrap().fdtable.install(fid);

    let gid = w.sls.attach(server, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    for round in 0..3u64 {
        w.sls.kernel.send(server, s_srv, format!("response {round}").as_bytes()).unwrap();
        w.sls.pump_external_synchrony();
        w.sls.sls_checkpoint(gid).unwrap();
        w.sls.sls_barrier(gid).unwrap();
        let (msg, _) = w.sls.kernel.recvmsg(client, s_cli).unwrap();
        assert_eq!(msg, format!("response {round}").as_bytes());
    }
}

fn arg(e: &TraceEvent, key: &str) -> u64 {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("event {} missing arg {key}", e.name))
        .1
}

/// Satellite: prove external synchrony from the event stream itself —
/// no output release may precede the durable commit of the epoch that
/// covers it.
#[test]
fn trace_shows_no_release_before_durable_commit() {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    extsync_workload(&mut w);
    let events = trace.events();

    let releases: Vec<&TraceEvent> =
        events.iter().filter(|e| e.name == "extsync.release").collect();
    assert!(!releases.is_empty(), "workload produced no extsync releases");

    for rel in releases {
        let epoch = arg(rel, "epoch");
        let durable_at = arg(rel, "durable_at");
        // The release itself happens at or after the durability horizon
        // it claims.
        assert!(
            rel.ts >= durable_at,
            "release for epoch {epoch} at t={} precedes durability at {durable_at}",
            rel.ts
        );
        // That claim is backed by the store: the epoch's commit event
        // exists, agrees on the horizon, and precedes the release.
        let commit = events
            .iter()
            .find(|e| e.name == "epoch.commit" && arg(e, "epoch") == epoch)
            .unwrap_or_else(|| panic!("no epoch.commit event for released epoch {epoch}"));
        assert_eq!(
            arg(commit, "durable_at"),
            durable_at,
            "release and commit disagree on the durability horizon of epoch {epoch}"
        );
        assert!(rel.ts >= commit.ts, "release precedes the commit record");
        // And the pipeline sealed the sockets for that epoch before any
        // of it was released.
        let seal = events
            .iter()
            .find(|e| e.name == "extsync.seal" && arg(e, "epoch") == epoch)
            .unwrap_or_else(|| panic!("no extsync.seal event for released epoch {epoch}"));
        assert!(seal.ts <= rel.ts, "seal recorded after its own release");
    }
}

/// Satellite: two identical runs export byte-identical Chrome traces —
/// the recorder is stamped by the virtual clock only.
#[test]
fn identical_runs_export_identical_traces() {
    let run = || {
        let mut w = World::quickstart();
        let trace = w.enable_tracing();
        counter_workload(&mut w);
        aurora_trace::chrome::export(&trace.events())
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical runs diverged in their trace exports");
}

/// Satellite: enabling tracing never perturbs the virtual timeline —
/// every checkpoint's stats and the final clock are bit-identical to a
/// run with the recorder disabled.
#[test]
fn tracing_is_invisible_to_the_virtual_clock() {
    let mut plain = World::quickstart();
    let (stats_plain, end_plain) = counter_workload(&mut plain);

    let mut traced = World::quickstart();
    let trace = traced.enable_tracing();
    let (stats_traced, end_traced) = counter_workload(&mut traced);

    assert!(trace.event_count() > 0, "recording trace captured nothing");
    assert_eq!(stats_plain, stats_traced, "tracing changed checkpoint timings");
    assert_eq!(end_plain, end_traced, "tracing changed the virtual end time");
}

/// The disabled handle records nothing and a recording handle's instants
/// carry the phase they were recorded with.
#[test]
fn disabled_trace_records_nothing() {
    let t = Trace::disabled();
    t.instant("core", "never", &[]);
    t.complete("core", "never", 0, 1, &[]);
    assert_eq!(t.event_count(), 0);

    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    counter_workload(&mut w);
    assert!(trace.events().iter().any(|e| e.ph == Phase::Complete && e.name == "checkpoint"));
}
