//! Sharded checkpoint engine: per-group pipelines overlapping in
//! virtual time, per-group failure isolation, and per-group external
//! synchrony.

use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointScheduler, GroupId, GroupRun, Phase, SlsOptions};
use aurora_posix::Pid;
use aurora_storage::faulty::FaultPlan;
use aurora_trace::InvariantChecker;
use aurora_vm::PAGE_SIZE;

/// Spawns `n` single-process groups, each with a private dirty region,
/// and takes each group's full checkpoint so later runs are incremental.
fn fleet(w: &mut World, n: u64) -> Vec<(GroupId, Pid, u64)> {
    let mut groups = Vec::new();
    for i in 0..n {
        let pid = w.sls.kernel.spawn(&format!("g{i}"));
        let addr = w.dirty_region(pid, 8).unwrap();
        let gid = w
            .sls
            .attach(pid, SlsOptions { external_synchrony: false, ..SlsOptions::default() })
            .unwrap();
        groups.push((gid, pid, addr));
    }
    let gids: Vec<GroupId> = groups.iter().map(|&(g, _, _)| g).collect();
    let warm = w.sls.checkpoint_all(&gids).unwrap();
    let horizon = warm.iter().map(|s| s.durable_at).max().unwrap();
    w.clock.advance_to(horizon);
    groups
}

fn touch(w: &mut World, pid: Pid, addr: u64) {
    w.sls.kernel.mem_touch(pid, addr, 8 * PAGE_SIZE as u64).unwrap();
}

/// The heart of the sharded engine: group B quiesces and flushes while
/// group A's epoch is still in flight on the device — two drafts open
/// at once, and both commit.
#[test]
fn group_pipelines_overlap_in_flight_epochs() {
    let mut w = World::with_nand_store_bytes(2 << 30);
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let groups = fleet(&mut w, 2);
    let (ga, pa, aa) = groups[0];
    let (gb, pb, ab) = groups[1];
    touch(&mut w, pa, aa);
    touch(&mut w, pb, ab);

    // Group A: stop + flush — its epoch now sits in the device queue.
    let mut ra = GroupRun::new(&mut w.sls, ga).unwrap();
    w.clock.advance_to(ra.ready_at());
    ra.step(&mut w.sls).unwrap(); // Stop
    assert_eq!(ra.phase(), Phase::Flush);
    ra.step(&mut w.sls).unwrap(); // Flush
    assert_eq!(ra.phase(), Phase::Seal);
    {
        let store = w.sls.store().lock();
        assert_eq!(store.open_drafts(), 1, "A's draft is open and in flight");
        assert!(store.inflight_drafts(w.clock.now()) >= 1);
    }

    // Group B stops and flushes while A's writes are still in flight:
    // two epochs concurrently open.
    let mut rb = GroupRun::new(&mut w.sls, gb).unwrap();
    rb.step(&mut w.sls).unwrap(); // Stop
    rb.step(&mut w.sls).unwrap(); // Flush
    {
        let store = w.sls.store().lock();
        assert_eq!(store.open_drafts(), 2, "both drafts concurrently open");
        assert!(store.inflight_drafts(w.clock.now()) >= 2, "both epochs in the device queue");
    }

    // Both finish; commit order follows completion order, and each
    // group's stats carry its own identity.
    while !ra.is_done() {
        ra.step(&mut w.sls).unwrap();
    }
    while !rb.is_done() {
        rb.step(&mut w.sls).unwrap();
    }
    let sa = ra.take_stats();
    let sb = rb.take_stats();
    assert!(sa.committed() && sb.committed());
    assert_eq!(sa.group, ga.0);
    assert_eq!(sb.group, gb.0);
    assert_ne!(sa.epoch, sb.epoch);
    {
        let store = w.sls.store().lock();
        assert_eq!(store.open_drafts(), 0);
        assert_eq!(store.group_of_epoch(sa.epoch), ga.0);
        assert_eq!(store.group_of_epoch(sb.epoch), gb.0);
    }
    assert!(checker.checked() > 0);
    checker.assert_clean();
}

/// The scheduler staggers n groups round-robin and every group commits
/// its own epoch, attributed in commit order.
#[test]
fn scheduler_commits_every_group() {
    let mut w = World::with_nand_store_bytes(2 << 30);
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let groups = fleet(&mut w, 4);
    for &(_, pid, addr) in &groups {
        touch(&mut w, pid, addr);
    }
    let gids: Vec<GroupId> = groups.iter().map(|&(g, _, _)| g).collect();
    let stats = CheckpointScheduler::default().run(&mut w.sls, &gids).unwrap();
    assert_eq!(stats.len(), 4);
    let mut epochs: Vec<u64> = stats.iter().map(|s| s.epoch).collect();
    epochs.dedup();
    assert_eq!(epochs.len(), 4, "each group commits its own epoch");
    for (s, &(g, _, _)) in stats.iter().zip(&groups) {
        assert!(s.committed());
        assert_eq!(s.group, g.0, "stats returned in requested group order");
    }
    // Per-group durable floors advance independently.
    let store = w.sls.store().lock();
    for s in &stats {
        assert_eq!(store.durable_floor(s.group), s.durable_at);
    }
    drop(store);
    assert!(checker.checked() > 0);
    checker.assert_clean();
}

/// A device failure during one group's flush aborts only that group's
/// epoch: the failure is tagged with the group, its draft rolls back,
/// and the other group commits unharmed.
#[test]
fn abort_is_isolated_to_the_failing_group() {
    let (mut w, faults) = World::with_faulty_store(2 << 30, FaultPlan::none());
    let groups = fleet(&mut w, 2);
    let (ga, pa, aa) = groups[0];
    let (gb, pb, ab) = groups[1];
    touch(&mut w, pa, aa);
    touch(&mut w, pb, ab);

    // Group A steps into its flush with the device wedged: every write
    // fails until the plan is cleared, exhausting the retry budget.
    let mut ra = GroupRun::new(&mut w.sls, ga).unwrap();
    w.clock.advance_to(ra.ready_at());
    ra.step(&mut w.sls).unwrap(); // Stop
    faults.set_plan(FaultPlan {
        fail_writes_from: Some(faults.writes_seen()),
        ..FaultPlan::none()
    });
    ra.step(&mut w.sls).unwrap(); // Flush -> retries exhausted -> abort
    assert!(ra.is_done());
    let sa = ra.take_stats();
    let failure = sa.failure.expect("group A's flush must fail");
    assert_eq!(failure.group, ga.0, "failure names the aborted group");
    assert_eq!(failure.stage, "flush");

    // The device heals; group B's checkpoint is untouched by A's abort.
    faults.clear_faults();
    let epochs_a_before = w.sls.store().lock().epochs_for(ga.0);
    let sb = w.sls.sls_checkpoint(gb).unwrap();
    assert!(sb.committed());
    assert_eq!(w.sls.store().lock().group_of_epoch(sb.epoch), gb.0);
    assert_eq!(
        w.sls.store().lock().epochs_for(ga.0),
        epochs_a_before,
        "B's commit must not move A's epoch history"
    );
    assert_eq!(w.sls.store().lock().open_drafts(), 0, "A's draft rolled back");

    // And group A recovers on its next attempt.
    touch(&mut w, pa, aa);
    let sa2 = w.sls.sls_checkpoint(ga).unwrap();
    assert!(sa2.committed(), "group A checkpoints cleanly after the abort");
}

/// External synchrony is sealed and released per group: the fast
/// group's response flows as soon as *its* epoch is durable, not the
/// slowest group's.
#[test]
fn extsync_releases_per_group_durability() {
    let mut w = World::with_nand_store_bytes(2 << 30);
    // Two attached servers (their own groups), one unattached client.
    let k = &mut w.sls.kernel;
    let sa = k.spawn("server-a");
    let sb = k.spawn("server-b");
    let client = k.spawn("client");
    let mut ends = Vec::new();
    for s in [sa, sb] {
        let (srv, cli) = k.socketpair(s).unwrap();
        let fid = k.resolve(s, cli).unwrap();
        k.proc_mut(s).unwrap().fdtable.remove(cli).unwrap();
        let cli = k.proc_mut(client).unwrap().fdtable.install(fid);
        ends.push((srv, cli));
    }
    let ga = w.sls.attach(sa, SlsOptions::default()).unwrap();
    let gb = w.sls.attach(sb, SlsOptions::default()).unwrap();
    for (g, s) in [(ga, sa), (gb, sb)] {
        let _ = s;
        w.sls.sls_checkpoint(g).unwrap();
        w.sls.sls_barrier(g).unwrap();
    }

    // Both servers respond; both responses are withheld.
    w.sls.kernel.send(sa, ends[0].0, b"from-a").unwrap();
    w.sls.kernel.send(sb, ends[1].0, b"from-b").unwrap();
    w.sls.pump_external_synchrony();
    assert!(w.sls.kernel.recvmsg(client, ends[0].1).is_err());
    assert!(w.sls.kernel.recvmsg(client, ends[1].1).is_err());

    // One overlapped checkpoint round covers both groups. The staggered
    // pipelines give the groups distinct durability horizons.
    let stats = w.sls.checkpoint_all(&[ga, gb]).unwrap();
    let (da, db) = (stats[0].durable_at, stats[1].durable_at);
    assert_ne!(da, db, "staggered groups reach durability at distinct times");
    let (first, second) = if da < db { (0, 1) } else { (1, 0) };
    let (dfirst, dsecond) = (da.min(db), da.max(db));

    // At the first group's durability point, its response is released
    // while the slower group's is still withheld.
    w.clock.advance_to(dfirst);
    w.sls.pump_external_synchrony();
    let (msg, _) = w.sls.kernel.recvmsg(client, ends[first].1).unwrap();
    assert_eq!(msg, if first == 0 { b"from-a" } else { b"from-b" });
    assert!(
        w.sls.kernel.recvmsg(client, ends[second].1).is_err(),
        "slow group's response must stay withheld past the fast group's release"
    );

    // The slower group's durability releases the rest.
    w.clock.advance_to(dsecond);
    w.sls.pump_external_synchrony();
    let (msg, _) = w.sls.kernel.recvmsg(client, ends[second].1).unwrap();
    assert_eq!(msg, if second == 0 { b"from-a" } else { b"from-b" });
}

/// `sls stat` gauges carry per-group rows after a multi-group round.
#[test]
fn stat_gauges_expose_per_group_rows() {
    let mut w = World::with_nand_store_bytes(2 << 30);
    let groups = fleet(&mut w, 2);
    for &(_, pid, addr) in &groups {
        touch(&mut w, pid, addr);
    }
    let gids: Vec<GroupId> = groups.iter().map(|&(g, _, _)| g).collect();
    w.sls.checkpoint_all(&gids).unwrap();
    let gauges = w.sls.stat_gauges();
    for g in &gids {
        for metric in ["last_stop_ns", "last_flush_ns", "last_commit_ns", "last_pages_flushed"] {
            let key = format!("pipeline.g{}.{metric}", g.0);
            assert!(gauges.iter().any(|(k, _)| *k == key), "missing gauge {key}");
        }
        let qkey = format!("quiesce.g{}.last_width_ns", g.0);
        assert!(gauges.iter().any(|(k, v)| *k == qkey && *v > 0), "missing gauge {qkey}");
    }
}
