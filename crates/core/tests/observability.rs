//! Observability-layer integration tests: the probe engine and the
//! virtual-time metrics sampler survive a machine crash, the reboot
//! discontinuity is marked exactly once, the online invariant checker
//! stays clean over a full checkpoint/crash/restore workload, and the
//! whole layer is invisible — armed or not, the virtual timeline and
//! every checkpoint stat are bit-identical.

use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointStats, SlsOptions};
use aurora_trace::{InvariantChecker, ProbeSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic workload: attach a counter app, four checkpointed
/// work intervals, a barrier, a crash, recovery, restore, and two more
/// intervals. Returns every committed checkpoint's stats.
fn crashy_workload(w: &mut World) -> Vec<CheckpointStats> {
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let mut all = Vec::new();
    all.push(w.sls.sls_checkpoint(gid).unwrap());
    for _ in 0..4 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        all.extend(w.sls.tick().unwrap());
    }
    w.sls.sls_barrier(gid).unwrap();
    w.sls.crash_and_reboot().unwrap();
    let epoch = w.sls.store().lock().last_epoch().unwrap();
    let manifest = w.sls.manifests_at(epoch).unwrap()[0];
    let r = w.sls.restore_image(manifest, epoch, aurora_core::RestoreMode::Full).unwrap();
    let pid = r.pids[0];
    for _ in 0..2 {
        w.bump_counter(pid).unwrap();
        w.clock.advance(10_000_000);
        all.extend(w.sls.tick().unwrap());
    }
    all
}

#[test]
fn probes_and_sampler_survive_crash_and_reboot() {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    let sampler = w.enable_sampling(1_000);
    let commits = Arc::new(AtomicU64::new(0));
    let seen = commits.clone();
    let id = trace.probe(ProbeSpec::any().cat("objstore").name_prefix("epoch.commit"), move |_| {
        seen.fetch_add(1, Ordering::Relaxed);
    });
    crashy_workload(&mut w);

    // The probe fired on commits before *and* after the reboot: the
    // recovery replays at least one pre-crash epoch and the post-restore
    // ticks commit new ones, so hits must exceed the pre-crash count.
    let hits = trace.probe_hits(id);
    assert!(hits >= 7, "probe must see pre- and post-reboot commits, got {hits}");
    assert_eq!(hits, commits.load(Ordering::Relaxed), "hit counter and callback agree");

    // The sampler kept recording across the discontinuity: rows exist on
    // both sides of the reboot mark.
    let marks = sampler.marks();
    assert_eq!(marks.len(), 1);
    let (mark_ts, _) = marks[0];
    let rows = sampler.samples();
    assert!(rows.iter().any(|s| s.ts < mark_ts), "rows before the reboot");
    assert!(rows.iter().any(|s| s.ts > mark_ts), "rows after the reboot");
}

#[test]
fn reboot_discontinuity_marked_exactly_once() {
    let mut w = World::quickstart();
    w.enable_tracing();
    let sampler = w.enable_sampling(1_000);
    crashy_workload(&mut w);
    let marks = sampler.marks();
    assert_eq!(
        marks.iter().filter(|(_, l)| l == "machine.reboot").count(),
        1,
        "exactly one reboot mark, got {marks:?}"
    );
    // The discontinuity is never smoothed into the gauge rows: no sample
    // shares the mark's timestamp.
    let (mark_ts, _) = marks[0];
    assert!(sampler.samples().iter().all(|s| s.ts != mark_ts));
}

#[test]
fn invariant_checker_clean_over_crash_and_restore() {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    crashy_workload(&mut w);
    assert!(checker.checked() > 20, "checker saw {} events", checker.checked());
    checker.assert_clean();
}

#[test]
fn armed_observability_does_not_perturb_timings() {
    // Bare run: no trace, no sampler, no probes.
    let mut bare = World::quickstart();
    let bare_stats = crashy_workload(&mut bare);
    let bare_end = bare.clock.now();

    // Fully armed run: trace + sampler + invariant checker + a probe.
    let mut armed = World::quickstart();
    let trace = armed.enable_tracing();
    let _checker = InvariantChecker::arm(&trace);
    armed.enable_sampling(1_000);
    let _id = trace.probe(ProbeSpec::any(), |_| {});
    let armed_stats = crashy_workload(&mut armed);

    assert_eq!(bare_stats, armed_stats, "checkpoint stats must be bit-identical");
    assert_eq!(bare_end, armed.clock.now(), "virtual end time must be identical");
}

#[test]
fn exports_byte_identical_across_identical_runs() {
    let run = || {
        let mut w = World::quickstart();
        w.enable_tracing();
        let sampler = w.enable_sampling(1_000);
        crashy_workload(&mut w);
        w.sls.sample_metrics();
        (sampler.series_json(), sampler.prometheus_text("aurora"))
    };
    let (json_a, prom_a) = run();
    let (json_b, prom_b) = run();
    assert_eq!(json_a, json_b, "time-series JSON must be byte-identical");
    assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
    aurora_trace::json::validate(&json_a).expect("series JSON parses");
    assert!(
        prom_a.matches("# TYPE").count() >= 10,
        "at least 10 gauges in the exposition"
    );
}

#[test]
fn stat_gauges_are_sorted_and_cover_every_subsystem() {
    let mut w = World::quickstart();
    w.enable_tracing();
    w.enable_sampling(1_000);
    crashy_workload(&mut w);
    let gauges = w.sls.stat_gauges();
    let names: Vec<&str> = gauges.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "gauges sorted by name");
    for prefix in ["frames.", "store.", "dev.", "quiesce.", "pipeline.", "extsync.", "trace."] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no gauge for subsystem {prefix}"
        );
    }
    assert!(gauges.len() >= 20, "got {} gauges", gauges.len());
}
