//! Point-in-time restore property (§15): restoring at any committed
//! record boundary byte-matches a shadow copy of the region the test
//! maintains on the side — including after a crash and reboot.
//!
//! The test drives a single-region app through rounds of small random
//! writes + checkpoints, mirroring every write into a host-side shadow.
//! Because the flush path emits one redo record per dirty page in page
//! order, the LSN→page mapping inside each epoch is a pure function of
//! the dirty set — so the test predicts the exact region image at
//! *every* record boundary, not just at epoch boundaries, and checks
//! `restore_at` against it byte for byte.

use std::collections::BTreeSet;

use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_sim::{DetRng, Rng};
use aurora_trace::InvariantChecker;
use aurora_vm::PAGE_SIZE;

/// Pages of the counter app's region the test exercises.
const PAGES: usize = 6;

/// What the test knows about history: one entry per committed round.
struct Model {
    /// `states[k]` = full region image committed by round `k`'s epoch.
    states: Vec<Vec<u8>>,
    /// `cpls[k]` = that epoch's commit point LSN (its highest record).
    cpls: Vec<u64>,
    /// `recs[k]` = page index of each record of round `k`, in LSN order
    /// (the flush emits dirty pages sorted, one record each).
    recs: Vec<Vec<u64>>,
}

impl Model {
    /// The expected region image at record boundary `lsn`.
    ///
    /// Only defined for `lsn > cpls[0]` (round 0 is the warm-up
    /// checkpoint whose epoch also carries foreign objects' pages).
    fn expect_at(&self, lsn: u64) -> Vec<u8> {
        let k = self.cpls.iter().position(|&c| lsn <= c).expect("lsn within history");
        assert!(k > 0, "expect_at only models rounds after the warm-up");
        // Records of round k with LSN ≤ target are applied; the rest of
        // the region is as of round k-1.
        let applied = (lsn - self.cpls[k - 1]) as usize;
        let mut img = self.states[k - 1].clone();
        for &pi in &self.recs[k][..applied] {
            let (a, b) = (pi as usize * PAGE_SIZE, (pi as usize + 1) * PAGE_SIZE);
            img[a..b].copy_from_slice(&self.states[k][a..b]);
        }
        img
    }
}

/// Reads the first `PAGES` pages of `pid`'s first mapping.
fn read_region(w: &mut World, pid: aurora_posix::Pid) -> Vec<u8> {
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let addr = w.sls.kernel.vm.entries(space).unwrap()[0].start;
    let mut out = vec![0u8; PAGES * PAGE_SIZE];
    w.sls.kernel.mem_read(pid, addr, &mut out).unwrap();
    out
}

/// One round: a few random sub-page writes, mirrored into `mirror`,
/// then a checkpoint. Extends the model with the round's state, CPL,
/// and record order — and cross-checks the record count against the
/// store's LSN advance (a foreign record would break the mapping).
fn round(
    w: &mut World,
    pid: aurora_posix::Pid,
    gid: aurora_core::GroupId,
    rng: &mut DetRng,
    mirror: &mut [u8],
    model: &mut Model,
) {
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let addr = w.sls.kernel.vm.entries(space).unwrap()[0].start;
    let mut written = BTreeSet::new();
    for _ in 0..rng.gen_range(1..4) {
        let pi = rng.gen_range(0..PAGES as u64);
        let off = rng.gen_range(0..(PAGE_SIZE as u64 - 64)) as usize;
        let len = rng.gen_range(1..64) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let base = pi as usize * PAGE_SIZE + off;
        mirror[base..base + len].copy_from_slice(&data);
        w.sls.kernel.mem_write(pid, addr + pi * PAGE_SIZE as u64 + off as u64, &data).unwrap();
        written.insert(pi);
    }
    w.sls.sls_checkpoint(gid).unwrap();
    let epoch = *w.sls.history(gid).unwrap().last().unwrap();
    let cpl = w.sls.store().lock().epoch_cpl(epoch).unwrap();
    let prev = *model.cpls.last().unwrap();
    assert_eq!(
        cpl,
        prev + written.len() as u64,
        "each dirty page logs exactly one record and nothing else does"
    );
    model.states.push(mirror.to_vec());
    model.cpls.push(cpl);
    model.recs.push(written.into_iter().collect());
}

/// Verifies `restore_at` against the model at `n` random record
/// boundaries (plus both history endpoints on the first call).
fn verify_random(
    w: &mut World,
    gid: aurora_core::GroupId,
    rng: &mut DetRng,
    model: &Model,
    n: usize,
) {
    let lo = model.cpls[0];
    let hi = *model.cpls.last().unwrap();
    let mut targets: Vec<u64> = (0..n).map(|_| rng.gen_range(lo + 1..hi + 1)).collect();
    targets.push(lo + 1);
    targets.push(hi);
    for lsn in targets {
        let r = w.sls.sls_restore_at(gid, lsn, RestoreMode::Full).unwrap();
        let got = read_region(w, r.pids[0]);
        assert_eq!(got, model.expect_at(lsn), "restore_at({lsn}) image mismatch");
    }
}

#[test]
fn restore_at_matches_shadow_at_every_record_boundary() {
    let mut w = World::quickstart();
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let mut rng = DetRng::seed_from_u64(0xA17E57);

    let pid = w.spawn_counter_app();
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let addr = w.sls.kernel.vm.entries(space).unwrap()[0].start;

    // Give every page known initial content so the whole region is
    // resident and committed by the warm-up checkpoint.
    let mut mirror = vec![0u8; PAGES * PAGE_SIZE];
    for pi in 0..PAGES {
        let stamp = [pi as u8; 32];
        mirror[pi * PAGE_SIZE..pi * PAGE_SIZE + 32].copy_from_slice(&stamp);
        w.sls.kernel.mem_write(pid, addr + (pi * PAGE_SIZE) as u64, &stamp).unwrap();
    }
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    let epoch0 = *w.sls.history(gid).unwrap().last().unwrap();
    let cpl0 = w.sls.store().lock().epoch_cpl(epoch0).unwrap();
    let mut model =
        Model { states: vec![mirror.clone()], cpls: vec![cpl0], recs: vec![Vec::new()] };

    for _ in 0..8 {
        round(&mut w, pid, gid, &mut rng, &mut mirror, &mut model);
    }
    verify_random(&mut w, gid, &mut rng, &model, 10);

    // More rounds after the restores: the live branch keeps committing
    // and earlier boundaries must still reconstruct exactly.
    for _ in 0..4 {
        round(&mut w, pid, gid, &mut rng, &mut mirror, &mut model);
    }
    verify_random(&mut w, gid, &mut rng, &model, 8);

    // Make everything durable, crash, and reboot: every record survives
    // and point-in-time restore still matches the shadow.
    w.sls.sls_barrier(gid).unwrap();
    let last = *model.cpls.last().unwrap();
    let manifest = {
        let e = w.sls.store().lock().last_epoch().unwrap();
        w.sls.manifests_at(e).unwrap()[0]
    };
    w.sls.crash_and_reboot().unwrap();
    for _ in 0..6 {
        let lsn = rng.gen_range(model.cpls[0] + 1..last + 1);
        let r = w.sls.restore_at(manifest, lsn, RestoreMode::Full).unwrap();
        let got = read_region(&mut w, r.pids[0]);
        assert_eq!(got, model.expect_at(lsn), "post-crash restore_at({lsn}) mismatch");
    }

    assert_eq!(checker.violations(), Vec::<String>::new());
}
