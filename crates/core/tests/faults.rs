//! Checkpoint-pipeline behavior under injected device faults: bounded
//! retry with deterministic backoff for transient errors, and a clean
//! abort — live world rolled back, next checkpoint succeeds — when the
//! retries are exhausted.

use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointConfig, RestoreMode, RetryPolicy, SlsOptions};
use aurora_storage::faulty::FaultPlan;

const STORE_BYTES: u64 = 1 << 28;

/// One transient device error during the Flush stage is absorbed by the
/// retry policy: the checkpoint commits, and the retry shows up in the
/// stats.
#[test]
fn transient_flush_error_is_retried_and_commits() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let pid = w.spawn_counter_app();
    for _ in 0..3 {
        w.bump_counter(pid).unwrap();
    }
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    // Fail the checkpoint's first device write (the dirty-page flush)
    // exactly once.
    let mut plan = FaultPlan::none();
    plan.transient_writes.insert(handle.writes_seen());
    handle.set_plan(plan);

    let before = w.clock.now();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.committed(), "one transient error must not fail the checkpoint");
    assert_eq!(cp.failure, None);
    assert_eq!(cp.retries, 1, "exactly one retry spent");
    assert!(cp.epoch > 0);
    assert!(cp.pages_flushed > 0, "the retried flush still wrote the pages");
    assert!(w.clock.now() > before, "backoff is charged to the virtual clock");

    // The image is intact end to end.
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 3);
}

/// A wedged device (every write fails) exhausts the retry budget in the
/// Flush stage. The checkpoint aborts cleanly: `Ok` with the failure
/// recorded — stage, attempts, and cause — instead of an `Err`, no
/// epoch is consumed, and once the device recovers the next checkpoint
/// commits the same state.
#[test]
fn exhausted_flush_retries_abort_and_next_checkpoint_succeeds() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    handle.set_plan(FaultPlan {
        fail_writes_from: Some(handle.writes_seen()),
        ..FaultPlan::none()
    });
    let failed = w.sls.sls_checkpoint(gid).unwrap();
    let f = failed.failure.as_ref().expect("checkpoint must report its failure");
    assert!(!failed.committed());
    assert_eq!(f.stage, "flush", "dirty pages make flush the failing stage");
    assert_eq!(f.attempts, 4, "first try plus three retries");
    assert_eq!(failed.retries, 3);
    assert!(f.cause.is_transient(), "the recorded cause is the device error");

    // The live world is untouched and still running.
    assert_eq!(w.read_counter(pid).unwrap(), 1);
    w.bump_counter(pid).unwrap();

    // Device recovers; the next checkpoint starts clean and commits.
    handle.clear_faults();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.committed());
    assert!(cp.full, "the aborted checkpoint left no epoch behind");
    assert!(cp.pages_flushed > 0, "rolled-back pages are dirty again and flush now");

    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 2);
}

/// When nothing is dirty the only device write is the commit record, so
/// a wedged device fails the Commit stage. The abort re-dirties the
/// pages cleaned by the (successful) earlier flush of a previous run,
/// rolls back the store's staged epoch, and the epoch number is not
/// consumed: the post-recovery checkpoint gets the very next epoch.
#[test]
fn exhausted_commit_retries_abort_without_consuming_an_epoch() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp1 = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp1.committed());

    // Dirty two pages — the counter, and a marker the application never
    // writes again, so the *only* copy of the marker rides on the pages
    // the failed checkpoint flushes. Let both page writes succeed, then
    // wedge the device: the commit record can never land.
    w.bump_counter(pid).unwrap();
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let addr = w.sls.kernel.vm.entries(space).unwrap()[0].start;
    let marker = 0xfeed_beef_u64.to_le_bytes();
    w.sls.kernel.mem_write(pid, addr + 4096, &marker).unwrap();
    handle.set_plan(FaultPlan {
        fail_writes_from: Some(handle.writes_seen() + 2),
        ..FaultPlan::none()
    });
    let failed = w.sls.sls_checkpoint(gid).unwrap();
    let f = failed.failure.as_ref().expect("commit failure must be recorded");
    assert_eq!(f.stage, "commit");
    assert_eq!(f.attempts, 4);

    handle.clear_faults();
    w.bump_counter(pid).unwrap();
    let cp2 = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp2.committed());
    assert_eq!(cp2.epoch, cp1.epoch + 1, "the aborted epoch number is reused");

    // Both pages flushed before the failed commit were re-dirtied by
    // the abort: the marker — whose blocks died with the aborted epoch —
    // survives into the successful one.
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 3);
    let mut buf = [0u8; 8];
    w.sls.kernel.mem_read(r.pids[0], addr + 4096, &mut buf).unwrap();
    assert_eq!(buf, marker, "re-dirtied page content must reach the next epoch");
}

/// A transient-EIO storm wider than the retry budget produces a clean
/// `StageFailure` abort with rollback — asserted through the trace: the
/// budget's worth of `pipeline.retry` instants followed by one
/// `pipeline.abort`, and the live world untouched.
#[test]
fn storm_wider_than_retry_budget_aborts_cleanly() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let trace = w.enable_tracing();
    w.sls.set_checkpoint_config(CheckpointConfig {
        retry: RetryPolicy { max_attempts: 8, retry_budget: 2, ..RetryPolicy::default() },
        ..CheckpointConfig::default()
    });
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    // A storm wider than the budget: 2 retries allowed, every attempt
    // in a 16-write window fails.
    handle.set_plan(FaultPlan::eio_storm(handle.writes_seen(), 16));
    let failed = w.sls.sls_checkpoint(gid).unwrap();
    let f = failed.failure.as_ref().expect("budget exhaustion must abort");
    assert_eq!(f.stage, "flush");
    assert_eq!(f.attempts, 3, "first try + the 2 budgeted retries");
    assert_eq!(failed.retries, 2, "exactly the budget was spent");

    let evs = trace.events();
    let retries = evs.iter().filter(|e| e.name == "pipeline.retry").count();
    let aborts = evs.iter().filter(|e| e.name == "pipeline.abort").count();
    assert_eq!(retries, 2, "one retry span per budgeted retry");
    assert_eq!(aborts, 1, "one clean abort");

    // Rollback left the live world running; recovery commits the state.
    assert_eq!(w.read_counter(pid).unwrap(), 1);
    handle.clear_faults();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.committed());
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 1);
}

/// The same storm narrower than the budget is absorbed: the checkpoint
/// commits, spending one retry per storm write it hit — visible as
/// `pipeline.retry` instants with no abort.
#[test]
fn storm_narrower_than_retry_budget_is_absorbed() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let trace = w.enable_tracing();
    w.sls.set_checkpoint_config(CheckpointConfig {
        retry: RetryPolicy { max_attempts: 8, retry_budget: 6, ..RetryPolicy::default() },
        ..CheckpointConfig::default()
    });
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();

    // Three consecutive failed writes, well inside the budget of 6.
    handle.set_plan(FaultPlan::eio_storm(handle.writes_seen(), 3));
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp.committed(), "a storm narrower than the budget must not abort");
    assert_eq!(cp.failure, None);
    assert_eq!(cp.retries, 3, "one retry per storm write");

    let evs = trace.events();
    assert_eq!(evs.iter().filter(|e| e.name == "pipeline.retry").count(), 3);
    assert_eq!(evs.iter().filter(|e| e.name == "pipeline.abort").count(), 0);

    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 1);
}

/// Jittered backoff stays deterministic per seed and within the
/// configured envelope: two identical runs charge identical backoffs,
/// and every jittered backoff lands inside `[1-frac, 1+frac]` of its
/// exponential base.
#[test]
fn jittered_backoff_is_deterministic_and_bounded() {
    let run = |seed: u64| {
        let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
        let trace = w.enable_tracing();
        w.sls.set_checkpoint_config(CheckpointConfig {
            retry: RetryPolicy {
                jitter_frac: 0.25,
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
            ..CheckpointConfig::default()
        });
        let pid = w.spawn_counter_app();
        w.bump_counter(pid).unwrap();
        let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
        let mut plan = FaultPlan::none();
        plan.transient_writes.insert(handle.writes_seen());
        plan.transient_writes.insert(handle.writes_seen() + 1);
        handle.set_plan(plan);
        let cp = w.sls.sls_checkpoint(gid).unwrap();
        assert!(cp.committed());
        trace
            .events()
            .iter()
            .filter(|e| e.name == "pipeline.retry")
            .map(|e| {
                let attempt = e.args.iter().find(|(k, _)| *k == "attempt").unwrap().1;
                let backoff = e.args.iter().find(|(k, _)| *k == "backoff_ns").unwrap().1;
                (attempt, backoff)
            })
            .collect::<Vec<_>>()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same jitter seed, same backoffs");
    assert!(!a.is_empty());
    for &(attempt, backoff) in &a {
        let base = 50_000u64 << (attempt - 1);
        let lo = (base as f64 * 0.75) as u64;
        let hi = (base as f64 * 1.25) as u64;
        assert!(
            (lo..=hi).contains(&backoff),
            "backoff {backoff} outside [{lo}, {hi}] for attempt {attempt}"
        );
    }
    let c = run(8);
    assert_ne!(a, c, "different seed, different jitter");
}

/// Back-to-back failed checkpoints don't compound: each aborts cleanly,
/// and the group keeps its committed history.
#[test]
fn repeated_failures_stay_isolated() {
    let (mut w, handle) = World::with_faulty_store(STORE_BYTES, FaultPlan::none());
    let pid = w.spawn_counter_app();
    w.bump_counter(pid).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp1 = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp1.committed());

    for round in 0..3 {
        w.bump_counter(pid).unwrap();
        handle.set_plan(FaultPlan {
            fail_writes_from: Some(handle.writes_seen()),
            ..FaultPlan::none()
        });
        let failed = w.sls.sls_checkpoint(gid).unwrap();
        assert!(failed.failure.is_some(), "round {round}: must abort");
        handle.clear_faults();
    }

    let cp2 = w.sls.sls_checkpoint(gid).unwrap();
    assert!(cp2.committed());
    assert_eq!(cp2.epoch, cp1.epoch + 1, "three aborts consumed no epochs");
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    assert_eq!(w.read_counter(r.pids[0]).unwrap(), 4);
}
