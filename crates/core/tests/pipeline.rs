//! Pipeline-level properties: exact stage accounting, deterministic
//! images, and the bottom-up lineage flush ordering.

use aurora_core::oidmap::KObj;
use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_vm::{Prot, PAGE_SIZE};

#[test]
fn stage_timings_sum_exactly() {
    let mut w = World::quickstart();
    let pid = w.spawn_counter_app();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    for i in 0..3u64 {
        w.bump_counter(pid).unwrap();
        let cp = w.sls.sls_checkpoint(gid).unwrap();
        assert_eq!(cp.full, i == 0);
        let stop_stages =
            cp.quiesce_ns + cp.collapse_ns + cp.aio_ns + cp.os_state_ns + cp.shadow_ns + cp.resume_ns;
        assert_eq!(
            stop_stages, cp.stop_time_ns,
            "the first six stages are the stop time, exactly"
        );
        assert_eq!(
            cp.stage_total_ns(),
            cp.stop_time_ns + cp.flush_ns + cp.seal_ns + cp.commit_ns,
            "all nine stages are stop + flush + seal + commit"
        );
        assert_eq!(cp.stages().iter().map(|(_, ns)| ns).sum::<u64>(), cp.stage_total_ns());
        assert!(cp.stop_time_ns > 0);
    }
}

/// Two identical machines running identical histories must produce
/// byte-identical checkpoint images: the pipeline introduces no hidden
/// nondeterminism (iteration order, timing-dependent content).
#[test]
fn identical_worlds_checkpoint_identically() {
    let run = || {
        let mut w = World::quickstart();
        let pid = w.spawn_counter_app();
        let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
        let mut epoch = 0;
        for _ in 0..3 {
            w.bump_counter(pid).unwrap();
            epoch = w.sls.sls_checkpoint(gid).unwrap().epoch;
        }
        w.sls.sls_barrier(gid).unwrap();
        w.sls.send_stream(epoch).unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "checkpoint images must be deterministic");
}

/// Chains are collected top-down but flushed bottom-up: when two frozen
/// objects of one lineage hold the same page index (here a hand-built
/// shadow whose parent still has an unflushed dirty page — the state a
/// fork shadow pins in place under a system shadow), the newer version
/// must land last and win in the store.
#[test]
fn newest_page_wins_within_a_lineage() {
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("app");
    let addr = w.sls.kernel.mmap_anon(pid, 1, Prot::RW).unwrap();
    let mut old = [0u8; 16];
    old[..11].copy_from_slice(b"old version");
    w.sls.kernel.mem_write(pid, addr, &old).unwrap();

    // Freeze the page under a system shadow by hand; the dirty "old"
    // page stays unflushed in the now-lower chain object.
    let space = w.sls.kernel.proc(pid).unwrap().space;
    let target = w.sls.kernel.vm.space(space).unwrap().entry_at(addr).unwrap().object;
    let pair = w.sls.kernel.vm.shadow_one(target, &[space]).unwrap();

    // The application writes the newer version into the new top.
    let mut new = [0u8; 16];
    new[..11].copy_from_slice(b"new version");
    w.sls.kernel.mem_write(pid, addr, &new).unwrap();

    // One checkpoint flushes both objects to the lineage's single OID.
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();

    // Directly in the store: the page holds the newer content.
    let lineage = w.sls.kernel.vm.object(pair.new_top).unwrap().lineage.0;
    let oid = w.sls.oidmap_lookup(gid, KObj::Mem(lineage)).unwrap();
    let entry = w.sls.kernel.vm.space(space).unwrap().entry_at(addr).unwrap();
    let pindex = entry.offset_pages + (addr - entry.start) / PAGE_SIZE as u64;
    let page = w.sls.store().lock().read_page(oid, pindex, cp.epoch).unwrap();
    assert_eq!(&page[..11], b"new version", "bottom-up flush: newest page wins");

    // And end to end: a restore sees it too.
    let r = w.sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let mut buf = [0u8; 16];
    w.sls.kernel.mem_read(r.pids[0], addr, &mut buf).unwrap();
    assert_eq!(&buf[..11], b"new version");
}
