//! Property tests: the codec round-trips arbitrary value sequences and
//! never panics on arbitrary input bytes.

use aurora_sim::{Decoder, Encoder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Val {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I64(i64),
    Bool(bool),
    Bytes(Vec<u8>),
    Str(String),
    OptU64(Option<u64>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    prop_oneof![
        any::<u8>().prop_map(Val::U8),
        any::<u16>().prop_map(Val::U16),
        any::<u32>().prop_map(Val::U32),
        any::<u64>().prop_map(Val::U64),
        any::<i64>().prop_map(Val::I64),
        any::<bool>().prop_map(Val::Bool),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Val::Bytes),
        "[a-zA-Z0-9 /._-]{0,32}".prop_map(Val::Str),
        any::<Option<u64>>().prop_map(Val::OptU64),
    ]
}

proptest! {
    #[test]
    fn roundtrip_any_sequence(vals in prop::collection::vec(val_strategy(), 0..40)) {
        let mut e = Encoder::new();
        for v in &vals {
            match v {
                Val::U8(x) => e.u8(*x),
                Val::U16(x) => e.u16(*x),
                Val::U32(x) => e.u32(*x),
                Val::U64(x) => e.u64(*x),
                Val::I64(x) => e.i64(*x),
                Val::Bool(x) => e.bool(*x),
                Val::Bytes(x) => e.bytes(x),
                Val::Str(x) => e.str(x),
                Val::OptU64(x) => e.opt_u64(*x),
            }
        }
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        for v in &vals {
            match v {
                Val::U8(x) => prop_assert_eq!(d.u8().unwrap(), *x),
                Val::U16(x) => prop_assert_eq!(d.u16().unwrap(), *x),
                Val::U32(x) => prop_assert_eq!(d.u32().unwrap(), *x),
                Val::U64(x) => prop_assert_eq!(d.u64().unwrap(), *x),
                Val::I64(x) => prop_assert_eq!(d.i64().unwrap(), *x),
                Val::Bool(x) => prop_assert_eq!(d.bool().unwrap(), *x),
                Val::Bytes(x) => prop_assert_eq!(d.bytes().unwrap(), x.as_slice()),
                Val::Str(x) => prop_assert_eq!(d.str().unwrap(), x.as_str()),
                Val::OptU64(x) => prop_assert_eq!(d.opt_u64().unwrap(), *x),
            }
        }
        prop_assert!(d.is_empty());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Every decode either succeeds or errors; it must not panic or
        // read out of bounds.
        let mut d = Decoder::new(&bytes);
        let _ = d.any_record();
        let mut d = Decoder::new(&bytes);
        let _ = d.bytes();
        let _ = d.u64();
        let _ = d.str();
        let _ = d.opt_u64();
    }

    #[test]
    fn records_roundtrip(tag in 0u16..1000, version in 0u16..10,
                         body in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut e = Encoder::new();
        e.record(tag, version, |e| e.raw(&body));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let (t, v, inner) = d.any_record().unwrap();
        prop_assert_eq!((t, v), (tag, version));
        prop_assert_eq!(inner.remaining(), body.len());
    }
}
