//! A small deterministic PRNG.
//!
//! The simulation must be bit-reproducible across machines and builds, so
//! all randomness flows through this in-tree generator instead of an
//! external crate: xoshiro256++ (Blackman & Vigna) seeded via splitmix64.
//! Quality is far beyond what workload generation needs, and the
//! implementation is a dozen lines that never changes underneath us.

/// A source of pseudo-random numbers.
///
/// Distributions in [`crate::dist`] are generic over this trait so tests
/// can substitute counting or constant generators.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[range.start, range.end)`.
    ///
    /// Panics if the range is empty. Uses Lemire's multiply-shift
    /// rejection method, so the result is unbiased.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// The deterministic generator used throughout the reproduction:
/// xoshiro256++ seeded from a single `u64` via splitmix64.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seeds the generator deterministically from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for DetRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/32 collided");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v), "{v}");
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear: {seen:?}");
    }

    #[test]
    fn gen_f64_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
