//! Minimal lock wrappers with non-poisoning ergonomics.
//!
//! The simulation shares its store and devices behind `Arc<Mutex<_>>`
//! handles. `std::sync::Mutex` returns a `Result` on every `lock()` to
//! surface poisoning; a simulation holds no invariants worth preserving
//! past a panicking test, so this wrapper recovers the guard either way
//! and keeps call sites to a single expression.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread. Poisoning is
    /// ignored: the previous holder's panic already failed its test.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_gives_exclusive_access() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock still usable after a panic");
    }

    #[test]
    fn unsized_coercion_works_for_trait_objects() {
        trait Speak {
            fn n(&self) -> u64;
        }
        struct S;
        impl Speak for S {
            fn n(&self) -> u64 {
                3
            }
        }
        let m: Arc<Mutex<dyn Speak + Send>> = Arc::new(Mutex::new(S));
        assert_eq!(m.lock().n(), 3);
    }
}
