//! A small discrete-event simulation engine.
//!
//! The client/server experiments (Memcached under Mutilate load, RocksDB
//! under Prefix_dist) need queueing behaviour — tail latency comes from
//! requests waiting behind checkpoint stop times and external-synchrony
//! release batching. The engine is deliberately minimal: a time-ordered
//! event heap plus FIFO resource helpers.

use crate::clock::Clock;
use aurora_trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq, Eq)]
struct Scheduled<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue over a virtual [`Clock`].
///
/// Events with equal timestamps fire in scheduling order (FIFO), which
/// keeps runs reproducible.
///
/// # Examples
///
/// ```
/// use aurora_sim::des::Engine;
///
/// let mut eng: Engine<&'static str> = Engine::new();
/// eng.schedule_at(20, "second");
/// eng.schedule_at(10, "first");
/// assert_eq!(eng.next(), Some((10, "first")));
/// assert_eq!(eng.next(), Some((20, "second")));
/// assert_eq!(eng.next(), None);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    clock: Clock,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    trace: Trace,
}

impl<E: Eq> Engine<E> {
    /// Creates an engine with a fresh clock.
    pub fn new() -> Self {
        Self::with_clock(Clock::new())
    }

    /// Creates an engine over an existing clock (shared with device models
    /// so IO completions and request events interleave on one timeline).
    pub fn with_clock(clock: Clock) -> Self {
        Self { clock, heap: BinaryHeap::new(), seq: 0, trace: Trace::disabled() }
    }

    /// Installs a trace recorder; each dispatch then emits a `des.dispatch`
    /// instant carrying the queue depth.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The engine's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Schedules `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: u64, event: E) {
        let at = at.max(self.clock.now());
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` `delta` ns from now.
    pub fn schedule_in(&mut self, delta: u64, event: E) {
        self.schedule_at(self.clock.now() + delta, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// (Deliberately not an `Iterator`: popping advances the clock, and
    /// callers interleave schedules between pops.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.clock.advance_to(s.at);
        if self.trace.is_enabled() {
            self.trace
                .instant("sim", "des.dispatch", &[("seq", s.seq), ("pending", self.heap.len() as u64)]);
        }
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

impl<E: Eq> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A single FIFO server (e.g. a NIC serializing packets).
///
/// `serve` returns the interval `[start, done)` during which the work
/// occupies the server.
#[derive(Clone, Debug, Default)]
pub struct Fifo {
    next_free: u64,
}

impl Fifo {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves work arriving at `arrival` taking `service_ns`; returns
    /// `(start, completion)`.
    pub fn serve(&mut self, arrival: u64, service_ns: u64) -> (u64, u64) {
        let start = arrival.max(self.next_free);
        let done = start + service_ns;
        self.next_free = done;
        (start, done)
    }

    /// Time at which the server next becomes idle.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Blocks the server until `until` (e.g. a checkpoint stop pauses all
    /// worker cores).
    pub fn block_until(&mut self, until: u64) {
        self.next_free = self.next_free.max(until);
    }
}

/// A pool of `k` identical FIFO servers (e.g. worker threads on cores):
/// work goes to the earliest-free server.
#[derive(Clone, Debug)]
pub struct ServerPool {
    free_at: BinaryHeap<Reverse<u64>>,
}

impl ServerPool {
    /// Creates a pool of `k` idle servers.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(k);
        for _ in 0..k {
            free_at.push(Reverse(0));
        }
        Self { free_at }
    }

    /// Serves work arriving at `arrival` taking `service_ns` on the
    /// earliest-free server; returns `(start, completion)`.
    pub fn serve(&mut self, arrival: u64, service_ns: u64) -> (u64, u64) {
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = arrival.max(free);
        let done = start + service_ns;
        self.free_at.push(Reverse(done));
        (start, done)
    }

    /// Blocks every server until `until` (a stop-the-world pause).
    pub fn block_all_until(&mut self, until: u64) {
        let k = self.free_at.len();
        let mut v: Vec<u64> = Vec::with_capacity(k);
        while let Some(Reverse(f)) = self.free_at.pop() {
            v.push(f.max(until));
        }
        for f in v {
            self.free_at.push(Reverse(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_queues_back_to_back() {
        let mut f = Fifo::new();
        assert_eq!(f.serve(0, 10), (0, 10));
        assert_eq!(f.serve(5, 10), (10, 20)); // waits for the first
        assert_eq!(f.serve(100, 10), (100, 110)); // idle gap
    }

    #[test]
    fn pool_uses_all_servers() {
        let mut p = ServerPool::new(2);
        assert_eq!(p.serve(0, 10), (0, 10));
        assert_eq!(p.serve(0, 10), (0, 10)); // second server
        assert_eq!(p.serve(0, 10), (10, 20)); // queued
    }

    #[test]
    fn pool_block_all() {
        let mut p = ServerPool::new(2);
        p.block_all_until(50);
        assert_eq!(p.serve(0, 10), (50, 60));
    }

    #[test]
    fn engine_fifo_ties() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(5, 1);
        eng.schedule_at(5, 2);
        assert_eq!(eng.next(), Some((5, 1)));
        assert_eq!(eng.next(), Some((5, 2)));
        assert_eq!(eng.now(), 5);
    }

    #[test]
    fn dispatch_emits_trace_instants() {
        let mut eng: Engine<u32> = Engine::new();
        let clk = eng.clock().clone();
        eng.set_trace(Trace::recording(move || clk.now()));
        eng.schedule_at(5, 1);
        eng.schedule_at(9, 2);
        eng.next();
        eng.next();
        let evs = eng.trace.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "des.dispatch");
        assert_eq!((evs[0].ts, evs[1].ts), (5, 9));
        assert_eq!(evs[0].args, vec![("seq", 0), ("pending", 1)]);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(10, 1);
        assert_eq!(eng.next(), Some((10, 1)));
        eng.schedule_in(5, 2);
        assert_eq!(eng.next(), Some((15, 2)));
    }
}
