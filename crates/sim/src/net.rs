//! A latency/bandwidth/loss-modeled message fabric between simulated
//! nodes, on the shared virtual clock.
//!
//! Each ordered node pair is one full-duplex link: a propagation delay,
//! a serialization rate (the sender's NIC drains one message at a time,
//! FIFO), and an independent per-message loss probability drawn from
//! the deterministic PRNG. The fabric computes *when* a message arrives
//! (or that it never does); the caller owns the event queue that
//! delivers it.

use crate::des::Fifo;
use crate::rng::{DetRng, Rng};
use std::collections::HashMap;

/// Link parameters shared by every node pair in a [`Fabric`].
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// One-way propagation delay, ns (default 50 µs: same-rack RTT of
    /// ~100 µs).
    pub latency_ns: u64,
    /// Serialization cost per KiB on the sending NIC, ns (default
    /// ~25 Gb/s ≈ 320 ns/KiB).
    pub ns_per_kib: u64,
    /// Per-message loss probability in parts per million.
    pub loss_ppm: u32,
    /// PRNG seed for the loss draws (deterministic across runs).
    pub seed: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self { latency_ns: 50_000, ns_per_kib: 320, loss_ppm: 0, seed: 0x004e_4554 }
    }
}

/// Counters the fabric accumulates (gauge sources).
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Messages accepted for transmission.
    pub sent_msgs: u64,
    /// Payload bytes accepted for transmission.
    pub sent_bytes: u64,
    /// Messages the loss model dropped.
    pub dropped_msgs: u64,
}

/// The message fabric: per-directed-link FIFO serialization plus the
/// shared [`LinkModel`].
#[derive(Debug)]
pub struct Fabric {
    model: LinkModel,
    links: HashMap<(u64, u64), Fifo>,
    rng: DetRng,
    stats: FabricStats,
}

impl Fabric {
    /// A fabric with the given link model.
    pub fn new(model: LinkModel) -> Self {
        Self {
            model,
            links: HashMap::new(),
            rng: DetRng::seed_from_u64(model.seed),
            stats: FabricStats::default(),
        }
    }

    /// Transmits `bytes` from `src` to `dst` starting at `now`. Returns
    /// the virtual arrival time, or `None` if the loss model ate the
    /// message (the sender's NIC time is still spent — a lost packet is
    /// serialized before it vanishes).
    pub fn send(&mut self, src: u64, dst: u64, bytes: u64, now: u64) -> Option<u64> {
        let service = (bytes.div_ceil(1024)).max(1) * self.model.ns_per_kib;
        let (_, serialized) = self.links.entry((src, dst)).or_default().serve(now, service);
        self.stats.sent_msgs += 1;
        self.stats.sent_bytes += bytes;
        if self.model.loss_ppm > 0 && (self.rng.next_u64() % 1_000_000) < self.model.loss_ppm as u64 {
            self.stats.dropped_msgs += 1;
            return None;
        }
        Some(serialized + self.model.latency_ns)
    }

    /// The accumulated transmission counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The link model in force.
    pub fn model(&self) -> LinkModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_bandwidth_add() {
        let mut f = Fabric::new(LinkModel { latency_ns: 1000, ns_per_kib: 10, loss_ppm: 0, seed: 1 });
        // 4 KiB message: 40 ns serialization + 1000 ns propagation.
        assert_eq!(f.send(0, 1, 4096, 0), Some(1040));
        // Second message on the same link queues behind the first's
        // serialization, not its propagation.
        assert_eq!(f.send(0, 1, 4096, 0), Some(1080));
        // The reverse direction is an independent link.
        assert_eq!(f.send(1, 0, 4096, 0), Some(1040));
    }

    #[test]
    fn loss_is_deterministic() {
        let model = LinkModel { latency_ns: 10, ns_per_kib: 1, loss_ppm: 500_000, seed: 7 };
        let run = || {
            let mut f = Fabric::new(model);
            (0..64).map(|i| f.send(0, 1, 1024, i).is_some()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same drops");
        let dropped = a.iter().filter(|ok| !**ok).count();
        assert!(dropped > 8 && dropped < 56, "~half dropped, got {dropped}");
    }
}
