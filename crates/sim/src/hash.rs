//! Shared content hashing for on-disk records and page checksums.
//!
//! Every layer that fingerprints bytes (the object store's per-page and
//! per-record checksums, the POSIX serializer's vnode content hashes)
//! goes through one [`ContentHasher`] implementation so swapping the
//! algorithm — e.g. for a blockwise/SIMD-friendly hash — is a one-file
//! change. The current implementation is FNV-1a 64-bit: tiny, allocation
//! free, and bit-stable across builds.

/// A streaming 64-bit content hash. Implementations must be
/// deterministic: the digest depends only on the bytes fed in.
pub trait ContentHasher {
    /// Fresh hasher in its initial state.
    fn reset() -> Self;
    /// Folds `data` into the running digest.
    fn update(&mut self, data: &[u8]);
    /// Returns the digest of everything fed so far.
    fn digest(&self) -> u64;

    /// One-shot convenience: digest of a single buffer.
    fn hash(data: &[u8]) -> u64
    where
        Self: Sized,
    {
        let mut h = Self::reset();
        h.update(data);
        h.digest()
    }
}

/// FNV-1a-style 64-bit hash. The workspace's default [`ContentHasher`].
///
/// Note: this keeps the multiplier the tree has always used
/// (`0x1000_0000_01b3`, one hex digit wider than the standard FNV
/// prime), so checksums in existing store images stay valid.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl ContentHasher for Fnv1a {
    fn reset() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot digest with the workspace's default hasher.
pub fn fnv1a(data: &[u8]) -> u64 {
    Fnv1a::hash(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The empty digest is the offset basis; the rest pin the exact
        // historical values so the hash stays bit-stable across
        // refactors (on-disk checksums depend on it).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 12642967877113212044);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"), "order-sensitive");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv1a::reset();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a(b"foobar"));
    }
}
