//! A hand-written, versioned binary codec.
//!
//! Every on-disk structure in the object store and every serialized POSIX
//! object uses this codec. The format is deliberately simple:
//!
//! * fixed-width little-endian integers,
//! * length-prefixed byte strings,
//! * and *records*: `tag:u16, version:u16, len:u32, body[len]`.
//!
//! Records let a reader skip unknown record types and let decoders accept
//! older versions — a property the paper calls out: checkpoint images must
//! be restorable "after a reboot or on another machine" where the running
//! system may differ (§4).

use std::fmt;

/// Errors produced while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A record tag did not match the expected one.
    BadTag {
        /// Expected record tag.
        expected: u16,
        /// Actual record tag found.
        found: u16,
    },
    /// A record version is newer than this decoder understands.
    BadVersion {
        /// Record tag.
        tag: u16,
        /// Maximum version supported.
        supported: u16,
        /// Version found.
        found: u16,
    },
    /// A value failed validation (e.g. a non-UTF-8 string).
    Invalid {
        /// Description of the invalid value.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated input decoding {what}"),
            CodecError::BadTag { expected, found } => {
                write!(f, "bad record tag: expected {expected:#06x}, found {found:#06x}")
            }
            CodecError::BadVersion { tag, supported, found } => write!(
                f,
                "record {tag:#06x} version {found} is newer than supported {supported}"
            ),
            CodecError::Invalid { what } => write!(f, "invalid value decoding {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type Result<T> = std::result::Result<T, CodecError>;

/// An append-only encoder.
///
/// # Examples
///
/// ```
/// use aurora_sim::{Encoder, Decoder};
///
/// let mut e = Encoder::new();
/// e.u64(42);
/// e.str("vnode");
/// let bytes = e.finish();
///
/// let mut d = Decoder::new(&bytes);
/// assert_eq!(d.u64().unwrap(), 42);
/// assert_eq!(d.str().unwrap(), "vnode");
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little endian, two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends an `Option<u64>` as presence byte + value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends raw bytes with no length prefix (caller frames them).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Encodes a framed record: `tag, version, len, body`.
    ///
    /// The body is produced by `f` into a nested encoder so the length can
    /// be prefixed without a second pass over the caller's logic.
    pub fn record(&mut self, tag: u16, version: u16, f: impl FnOnce(&mut Encoder)) {
        let mut body = Encoder::new();
        f(&mut body);
        self.u16(tag);
        self.u16(version);
        self.u32(body.len() as u32);
        self.buf.extend_from_slice(&body.buf);
    }

    /// Finishes encoding, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes encoding, returning a `Vec<u8>`.
    pub fn finish_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor-based decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated { what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Reads a `bool`; any nonzero byte is `true`.
    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Invalid { what: "utf-8 string" })
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Reads raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n, "raw bytes")
    }

    /// Reads a record header and returns `(tag, version, body decoder)`.
    pub fn any_record(&mut self) -> Result<(u16, u16, Decoder<'a>)> {
        let tag = self.u16()?;
        let version = self.u16()?;
        let len = self.u32()? as usize;
        let body = self.take(len, "record body")?;
        Ok((tag, version, Decoder::new(body)))
    }

    /// Reads a record that must have tag `tag` and version ≤ `max_version`.
    pub fn record(&mut self, tag: u16, max_version: u16) -> Result<(u16, Decoder<'a>)> {
        let (t, v, body) = self.any_record()?;
        if t != tag {
            return Err(CodecError::BadTag { expected: tag, found: t });
        }
        if v > max_version {
            return Err(CodecError::BadVersion { tag, supported: max_version, found: v });
        }
        Ok((v, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u16(2);
        e.u32(3);
        e.u64(4);
        e.i64(-5);
        e.bool(true);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u16().unwrap(), 2);
        assert_eq!(d.u32().unwrap(), 3);
        assert_eq!(d.u64().unwrap(), 4);
        assert_eq!(d.i64().unwrap(), -5);
        assert!(d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn roundtrip_bytes_and_strings() {
        let mut e = Encoder::new();
        e.bytes(b"hello");
        e.str("aurora");
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.str().unwrap(), "aurora");
    }

    #[test]
    fn records_skip_and_verify() {
        let mut e = Encoder::new();
        e.record(0x10, 1, |e| e.u64(7));
        e.record(0x11, 2, |e| e.str("x"));
        let b = e.finish();
        let mut d = Decoder::new(&b);
        let (v, mut body) = d.record(0x10, 3).unwrap();
        assert_eq!(v, 1);
        assert_eq!(body.u64().unwrap(), 7);
        // Unknown records can be skipped with any_record.
        let (tag, v, _) = d.any_record().unwrap();
        assert_eq!((tag, v), (0x11, 2));
    }

    #[test]
    fn record_tag_mismatch_errors() {
        let mut e = Encoder::new();
        e.record(0x22, 1, |e| e.u8(0));
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(
            d.record(0x23, 1).unwrap_err(),
            CodecError::BadTag { expected: 0x23, found: 0x22 }
        );
    }

    #[test]
    fn record_version_gate() {
        let mut e = Encoder::new();
        e.record(0x22, 9, |e| e.u8(0));
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(matches!(d.record(0x22, 1), Err(CodecError::BadVersion { .. })));
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.u64(1);
        let b = e.finish();
        let mut d = Decoder::new(&b[..4]);
        assert!(matches!(d.u64(), Err(CodecError::Truncated { .. })));
    }
}
