//! The virtual clock.
//!
//! Every simulated component charges time to a shared [`Clock`]. The clock
//! is a plain monotonic nanosecond counter: experiments are deterministic
//! and reproducible because no wall-clock time is ever consulted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared virtual clock measured in nanoseconds.
///
/// Cloning a `Clock` yields a handle to the same underlying counter.
///
/// # Examples
///
/// ```
/// use aurora_sim::Clock;
///
/// let clock = Clock::new();
/// clock.advance(1_500);
/// assert_eq!(clock.now(), 1_500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Clock {
    ns: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a new clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ns` nanoseconds and returns the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Advances the clock to `target_ns` if it is in the future.
    ///
    /// Used when waiting for an asynchronous completion (e.g. an in-flight
    /// NVMe write): the waiter sleeps until the completion time.
    pub fn advance_to(&self, target_ns: u64) {
        // A simulation is single-threaded per clock; a CAS loop still keeps
        // the handle safe to share across test threads.
        let mut cur = self.ns.load(Ordering::Relaxed);
        while cur < target_ns {
            match self.ns.compare_exchange_weak(
                cur,
                target_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Resets the clock to zero. Only used by test helpers.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

/// A scoped stopwatch over a [`Clock`], for measuring the virtual duration
/// of an operation (e.g. a checkpoint stop time).
#[derive(Debug)]
pub struct Stopwatch {
    clock: Clock,
    start: u64,
}

impl Stopwatch {
    /// Starts measuring from the clock's current time.
    pub fn start(clock: &Clock) -> Self {
        Self {
            clock: clock.clone(),
            start: clock.now(),
        }
    }

    /// Returns the elapsed virtual nanoseconds since `start`.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        c.advance(10);
        c.advance(32);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = Clock::new();
        c.advance(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        c.advance_to(250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let c = Clock::new();
        let sw = Stopwatch::start(&c);
        c.advance(123);
        assert_eq!(sw.elapsed_ns(), 123);
    }
}
