//! Deterministic workload distributions.
//!
//! The evaluation uses two published workload shapes:
//!
//! * **Mutilate's Facebook "ETC" profile** (Atikoglu et al., SIGMETRICS'12)
//!   for Memcached: log-normal key sizes, generalized-Pareto value sizes,
//!   a 30:1 GET:SET ratio.
//! * **Zipfian key popularity** for the RocksDB `Prefix_dist` workload
//!   (Cao et al., FAST'20): hot key prefixes follow a power law.
//!
//! The container builds with no crates.io mirror, so the samplers
//! (normal via Box–Muller, Pareto via inversion, Zipf via
//! rejection-inversion) draw from the in-tree [`crate::rng`] generator.

use crate::rng::Rng;

/// Samples a standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_f64();
        let u2: f64 = rng.gen_f64();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A log-normal distribution parameterized by the underlying normal's
/// `mu`/`sigma`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given location/scale.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { mu, sigma }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// A generalized Pareto distribution (location `mu`, scale `sigma`,
/// shape `xi`), used by Mutilate for Facebook value sizes.
#[derive(Clone, Copy, Debug)]
pub struct GeneralizedPareto {
    mu: f64,
    sigma: f64,
    xi: f64,
}

impl GeneralizedPareto {
    /// Creates a generalized Pareto distribution.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { mu, sigma, xi }
    }

    /// Draws one sample by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_f64().max(f64::MIN_POSITIVE);
        if self.xi.abs() < 1e-12 {
            self.mu - self.sigma * u.ln()
        } else {
            self.mu + self.sigma * (u.powf(-self.xi) - 1.0) / self.xi
        }
    }
}

/// Zipf distribution over `{0, …, n-1}` with exponent `s`, sampled by
/// Hörmann's rejection-inversion method (constant time, no tables).
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    dividing: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` items with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(s > 0.0, "exponent must be positive");
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let dividing = h(2.5) - 2.0f64.powf(-s);
        Self { n, s, h_x1, h_n, dividing }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.exp() - 1.0
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s)) - 1.0
        }
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let h_k = if (self.s - 1.0).abs() < 1e-12 {
                (k + 0.5).ln()
            } else {
                ((k + 0.5).powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
            };
            if u >= h_k - k.powf(-self.s) || u >= self.dividing {
                return k as u64 - 1;
            }
        }
    }
}

/// The Mutilate Facebook ("ETC") workload profile used in Figures 4–5.
#[derive(Clone, Copy, Debug)]
pub struct FacebookEtc {
    key_size: LogNormal,
    value_size: GeneralizedPareto,
    /// Fraction of operations that are SETs (Mutilate's 30:1 GET:SET).
    pub set_fraction: f64,
}

impl Default for FacebookEtc {
    fn default() -> Self {
        Self {
            // Mutilate's --keysize=fb_key: lognormal-ish around 31 bytes.
            key_size: LogNormal::new(3.43, 0.33),
            // Mutilate's --valuesize=fb_value: GPD(15, 214.476, 0.348).
            value_size: GeneralizedPareto::new(15.0, 214.476, 0.348),
            set_fraction: 1.0 / 31.0,
        }
    }
}

impl FacebookEtc {
    /// Samples a key size in bytes, clamped to Memcached's limits.
    pub fn key_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        (self.key_size.sample(rng).round() as usize).clamp(16, 250)
    }

    /// Samples a value size in bytes (clamped to 1 MiB).
    pub fn value_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        (self.value_size.sample(rng).round() as usize).clamp(1, 1 << 20)
    }

    /// Returns true if the next operation should be a SET.
    pub fn is_set<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_f64() < self.set_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn zipf_first_rank_is_most_popular() {
        let mut rng = DetRng::seed_from_u64(7);
        let z = Zipf::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for n in [1u64, 2, 17, 100_000] {
            let z = Zipf::new(n, 1.2);
            for _ in 0..2000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn etc_sizes_match_published_means() {
        let mut rng = DetRng::seed_from_u64(42);
        let etc = FacebookEtc::default();
        let n = 100_000;
        let key_mean: f64 =
            (0..n).map(|_| etc.key_bytes(&mut rng) as f64).sum::<f64>() / n as f64;
        let val_mean: f64 =
            (0..n).map(|_| etc.value_bytes(&mut rng) as f64).sum::<f64>() / n as f64;
        // Published: keys ~31 B, values a few hundred bytes.
        assert!((25.0..40.0).contains(&key_mean), "key mean {key_mean}");
        assert!((200.0..800.0).contains(&val_mean), "value mean {val_mean}");
    }

    #[test]
    fn set_fraction_is_about_one_in_31() {
        let mut rng = DetRng::seed_from_u64(1);
        let etc = FacebookEtc::default();
        let sets = (0..100_000).filter(|_| etc.is_set(&mut rng)).count();
        assert!((2200..4200).contains(&sets), "sets {sets}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DetRng::seed_from_u64(5);
        let ln = LogNormal::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_exceeds_location() {
        let mut rng = DetRng::seed_from_u64(5);
        let gp = GeneralizedPareto::new(15.0, 214.476, 0.348);
        for _ in 0..1000 {
            assert!(gp.sample(&mut rng) >= 15.0);
        }
    }
}
