//! Simulation substrate for the Aurora single level store reproduction.
//!
//! The paper evaluates Aurora on real hardware (dual Xeon Silver 4116,
//! 4× Intel Optane 900P). This reproduction runs the *same algorithms* in
//! user space and accounts for their cost on a deterministic **virtual
//! clock**. This crate provides:
//!
//! * [`clock::Clock`] — the virtual nanosecond clock shared by every
//!   simulated component.
//! * [`cost::CostModel`] — calibrated per-primitive costs (lock acquire,
//!   cache-missing pointer chase, PTE update, TLB shootdown IPI, page
//!   copy, …) with the paper-derived calibration documented in one place.
//! * [`des`] — a small discrete-event engine used by the client/server
//!   experiment harnesses (Memcached, RocksDB).
//! * [`net`] — the latency/bandwidth/loss message fabric connecting
//!   simulated nodes in multi-node (cluster) experiments.
//! * [`stats`] — streaming histograms and percentile summaries.
//! * [`codec`] — the hand-written, versioned binary codec used for every
//!   on-disk record in the object store and for checkpoint serialization.
//! * [`dist`] — deterministic workload distributions (Zipf, the Facebook
//!   ETC key/value size mixtures).
//! * [`rng`] — the in-tree deterministic PRNG those distributions draw
//!   from (no external dependency, bit-stable across builds).
//! * [`sync`] — lock wrappers with non-poisoning `lock()` ergonomics.

pub mod clock;
pub mod codec;
pub mod cost;
pub mod des;
pub mod dist;
pub mod hash;
pub mod net;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod units;

pub use clock::Clock;
pub use codec::{Decoder, Encoder};
pub use hash::{fnv1a, ContentHasher, Fnv1a};
pub use cost::CostModel;
pub use rng::{DetRng, Rng};
pub use stats::Histogram;
