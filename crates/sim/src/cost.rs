//! The calibrated cost model.
//!
//! Every primitive operation the real Aurora implementation pays for is
//! charged to the virtual clock through a [`CostModel`]. The calibration
//! constants below are derived from the paper's testbed (dual Intel Xeon
//! Silver 4116 @ 2.1 GHz, 96 GiB RAM, 4× Intel Optane 900P striped at
//! 64 KiB) and from the micro-level costs its evaluation implies:
//!
//! * Table 5 shows incremental checkpoint stop time growing by ~22 ns per
//!   dirty page (the linear cost of marking PTEs copy-on-write), over a
//!   fixed ~185 µs quiesce + OS-state + shadowing cost.
//! * Table 4 implies small POSIX objects serialize in 1–2 µs: a couple of
//!   lock acquisitions plus a dozen cache-missing pointer chases.
//! * The journal API writes a 4 KiB page synchronously in 28 µs — an NVMe
//!   write latency plus a small CPU overhead (§7).
//!
//! Keeping every constant in one struct makes the calibration auditable
//! and lets ablation benches perturb individual costs.

use crate::clock::Clock;
use aurora_trace::Trace;

/// Number of bytes in a (small) page.
pub const PAGE_SIZE: usize = 4096;

/// Calibrated per-primitive costs, in nanoseconds unless noted.
///
/// The [`Default`] instance is the paper-testbed calibration; experiments
/// may override fields for ablations.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Acquiring an uncontended kernel mutex/spinlock.
    pub lock_ns: u64,
    /// A cache-missing pointer chase (DRAM access).
    pub cache_miss_ns: u64,
    /// Allocating a small kernel object (zone allocator hit).
    pub alloc_ns: u64,
    /// Entering/leaving the kernel at the syscall boundary.
    pub syscall_ns: u64,
    /// One interprocessor interrupt round trip used to force a core to the
    /// kernel boundary during quiesce (§5.1).
    pub ipi_ns: u64,
    /// Per-core cost of a TLB shootdown (system shadowing invalidates the
    /// TLB, §6).
    pub tlb_shootdown_ns: u64,
    /// Marking one PTE copy-on-write during shadowing (Table 5 slope).
    pub pte_cow_ns: u64,
    /// Installing one PTE on a soft page fault.
    pub pte_install_ns: u64,
    /// A soft page-fault trap (no IO): enter handler, walk chain head.
    pub page_fault_ns: u64,
    /// Copying one 4 KiB page (COW break or checkpoint gather).
    pub page_copy_ns: u64,
    /// CPU cost of encoding one byte into a checkpoint record.
    pub encode_byte_ns_x100: u64,
    /// Scanning one kevent when serializing a kqueue (Table 4: 1024 events
    /// in 35.2 µs ⇒ ~32 ns each).
    pub kevent_ns: u64,
    /// Scanning one entry of the global System V namespace (Table 4: SysV
    /// shm costs ~10 µs more than POSIX shm).
    pub sysv_scan_entry_ns: u64,
    /// Creating a device node in devfs (Table 4: pseudoterminal restore is
    /// dominated by this: ~30 µs).
    pub devfs_create_ns: u64,
    /// Fixed orchestration cost of a full/incremental checkpoint: the
    /// serialization barrier across the OS, per-checkpoint bookkeeping,
    /// and cross-core rendezvous (Table 5's ~185 µs floor).
    pub checkpoint_barrier_ns: u64,
    /// Fixed cost of an atomic single-region checkpoint (`sls_memckpt`):
    /// no OS-wide barrier, just the shadow + flush setup (Table 5's
    /// ~80 µs floor).
    pub memckpt_fixed_ns: u64,
    /// Bulk memory bandwidth for in-kernel copies, bytes/second.
    pub memcpy_bytes_per_sec: u64,
    /// Number of logical cores participating in IPIs/shootdowns.
    pub cores: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            lock_ns: 20,
            cache_miss_ns: 90,
            alloc_ns: 60,
            syscall_ns: 200,
            ipi_ns: 1_200,
            tlb_shootdown_ns: 1_500,
            pte_cow_ns: 22,
            pte_install_ns: 30,
            page_fault_ns: 1_100,
            page_copy_ns: 700,
            encode_byte_ns_x100: 18, // 0.18 ns/byte ≈ 5.5 GB/s encoder
            kevent_ns: 32,
            sysv_scan_entry_ns: 110,
            devfs_create_ns: 27_000,
            checkpoint_barrier_ns: 120_000,
            memckpt_fixed_ns: 60_000,
            memcpy_bytes_per_sec: 6_000_000_000,
            cores: 24, // dual Xeon Silver 4116 with hyperthreading = 48 HT, 24 phys
        }
    }
}

impl CostModel {
    /// Cost of copying `bytes` of memory.
    pub fn memcpy_ns(&self, bytes: u64) -> u64 {
        // Round up so tiny copies are never free.
        (bytes.saturating_mul(1_000_000_000)).div_ceil(self.memcpy_bytes_per_sec)
    }

    /// Cost of encoding `bytes` into a checkpoint record.
    pub fn encode_ns(&self, bytes: u64) -> u64 {
        (bytes * self.encode_byte_ns_x100).div_ceil(100)
    }

    /// Cost of quiescing a consistency group running on `threads` threads:
    /// one IPI per core plus the syscall-boundary drain.
    pub fn quiesce_ns(&self, threads: u64) -> u64 {
        let cores = threads.min(self.cores).max(1);
        cores * self.ipi_ns + threads * self.syscall_ns
    }

    /// Cost of a full TLB shootdown across the cores an address space runs
    /// on.
    pub fn shootdown_ns(&self, threads: u64) -> u64 {
        threads.min(self.cores).max(1) * self.tlb_shootdown_ns
    }
}

/// A cost accountant binding a [`CostModel`] to a [`Clock`].
///
/// Components take a `Charge` handle and call its methods as they execute
/// primitive operations; the handle advances the shared virtual clock.
///
/// The accountant also carries the session [`Trace`]: every subsystem that
/// can charge virtual time can reach the recorder through it, and charges
/// themselves feed per-kind aggregated histograms (`charge.locks`, …) when
/// tracing is enabled. Recording never advances the clock, so enabling the
/// trace cannot perturb a run's virtual timeline.
#[derive(Clone, Debug)]
pub struct Charge {
    clock: Clock,
    model: CostModel,
    trace: Trace,
}

impl Charge {
    /// Creates an accountant charging `model` costs to `clock`, with
    /// tracing disabled.
    pub fn new(clock: Clock, model: CostModel) -> Self {
        Self { clock, model, trace: Trace::disabled() }
    }

    /// The underlying clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The trace recorder this accountant reports to.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Installs a trace recorder (pass [`Trace::disabled`] to detach).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    fn charged(&self, kind: &'static str, ns: u64) {
        self.clock.advance(ns);
        if self.trace.is_enabled() {
            self.trace.hist(kind, ns);
        }
    }

    /// Charges `n` lock acquisitions.
    pub fn locks(&self, n: u64) {
        self.charged("charge.locks", n * self.model.lock_ns);
    }

    /// Charges `n` cache-missing pointer chases.
    pub fn misses(&self, n: u64) {
        self.charged("charge.misses", n * self.model.cache_miss_ns);
    }

    /// Charges `n` small allocations.
    pub fn allocs(&self, n: u64) {
        self.charged("charge.allocs", n * self.model.alloc_ns);
    }

    /// Charges encoding `bytes` of record data.
    pub fn encode(&self, bytes: u64) {
        self.charged("charge.encode", self.model.encode_ns(bytes));
    }

    /// Charges copying `bytes` of memory.
    pub fn memcpy(&self, bytes: u64) {
        self.charged("charge.memcpy", self.model.memcpy_ns(bytes));
    }

    /// Charges an arbitrary raw duration (for model-specific costs).
    pub fn raw(&self, ns: u64) {
        self.charged("charge.raw", ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_rounds_up() {
        let m = CostModel::default();
        assert!(m.memcpy_ns(1) >= 1);
        // 6 GB/s ⇒ 4 KiB in ~683 ns.
        let page = m.memcpy_ns(PAGE_SIZE as u64);
        assert!((600..800).contains(&page), "page copy {page} ns");
    }

    #[test]
    fn table5_slope_matches_paper() {
        // 1 GiB of dirty pages should add ~5.8 ms of PTE COW marking,
        // matching Table 5's 6.1 ms incremental checkpoint.
        let m = CostModel::default();
        let pages = (1u64 << 30) / PAGE_SIZE as u64;
        let ns = pages * m.pte_cow_ns;
        assert!((4_000_000..8_000_000).contains(&ns), "slope {ns} ns");
    }

    #[test]
    fn charge_advances_clock() {
        let clock = Clock::new();
        let charge = Charge::new(clock.clone(), CostModel::default());
        charge.locks(2);
        charge.misses(1);
        assert_eq!(clock.now(), 2 * 20 + 90);
    }

    #[test]
    fn traced_charges_feed_histograms_without_extra_time() {
        let clock = Clock::new();
        let mut charge = Charge::new(clock.clone(), CostModel::default());
        charge.set_trace(Trace::recording({
            let c = clock.clone();
            move || c.now()
        }));
        charge.locks(2);
        charge.memcpy(4096);
        // Same clock advance as the untraced accountant.
        let plain_clock = Clock::new();
        let plain = Charge::new(plain_clock.clone(), CostModel::default());
        plain.locks(2);
        plain.memcpy(4096);
        assert_eq!(clock.now(), plain_clock.now());
        let hists = charge.trace().histograms();
        let names: Vec<&str> = hists.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["charge.locks", "charge.memcpy"]);
        assert_eq!(hists[0].1.count, 1);
    }

    #[test]
    fn quiesce_scales_with_threads_up_to_cores() {
        let m = CostModel::default();
        assert!(m.quiesce_ns(4) < m.quiesce_ns(16));
        // Beyond the core count only the per-thread drain grows.
        let a = m.quiesce_ns(24);
        let b = m.quiesce_ns(48);
        assert_eq!(b - a, 24 * m.syscall_ns);
    }
}
