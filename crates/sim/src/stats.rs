//! Streaming statistics: an HDR-style log-bucketed histogram and run
//! summaries (mean / standard deviation over repeated runs, as the paper's
//! error bars report).

/// Sub-buckets per power of two. 32 gives ~3% relative error, plenty for
/// latency percentiles.
const SUBBUCKETS: usize = 32;
const SUBBUCKET_BITS: u32 = 5;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Values are bucketed with bounded relative error; percentile queries
/// return a representative value for the bucket.
///
/// # Examples
///
/// ```
/// use aurora_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((450..=550).contains(&p50));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUBBUCKET_BITS;
    let sub = ((v >> shift) as usize) & (SUBBUCKETS - 1);
    // Buckets 0..SUBBUCKETS are exact; each further power of two
    // contributes SUBBUCKETS buckets.
    SUBBUCKETS + (msb - SUBBUCKET_BITS) as usize * SUBBUCKETS + sub
}

fn bucket_value(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let rest = index - SUBBUCKETS;
    let exp = (rest / SUBBUCKETS) as u32 + SUBBUCKET_BITS;
    let sub = (rest % SUBBUCKETS) as u64;
    // Midpoint of the bucket.
    (1u64 << exp) + (sub << (exp - SUBBUCKET_BITS)) + (1u64 << (exp - SUBBUCKET_BITS)) / 2
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { min: u64::MAX, ..Self::default() }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0 < p ≤ 100); 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// Mean and sample standard deviation over repeated experiment runs.
///
/// The paper runs each benchmark at least three times and reports the
/// standard deviation as error bars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSummary {
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs (0 for a single run).
    pub stddev: f64,
}

/// Summarizes a slice of per-run measurements.
pub fn summarize_runs(runs: &[f64]) -> RunSummary {
    if runs.is_empty() {
        return RunSummary { mean: 0.0, stddev: 0.0 };
    }
    let mean = runs.iter().sum::<f64>() / runs.len() as f64;
    let stddev = if runs.len() < 2 {
        0.0
    } else {
        let var =
            runs.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (runs.len() - 1) as f64;
        var.sqrt()
    };
    RunSummary { mean, stddev }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_small_values_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for shift in 6..40u32 {
            for off in [0u64, 1, 1234] {
                let v = (1u64 << shift) + off * ((1 << shift) / 2000 + 1);
                let rep = bucket_value(bucket_index(v));
                let err = (rep as f64 - v as f64).abs() / v as f64;
                assert!(err < 0.05, "v={v} rep={rep} err={err}");
            }
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = Histogram::new();
        for v in (0..10_000u64).map(|i| i * 37 % 100_000) {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p95 && p95 <= p999);
        assert!(p999 <= h.max());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert!(a.max() >= 900_000);
    }

    #[test]
    fn run_summary_matches_hand_computation() {
        let s = summarize_runs(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        let single = summarize_runs(&[5.0]);
        assert_eq!(single.stddev, 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }
}
