//! Size/time unit helpers shared by the experiment harnesses.

/// One kibibyte.
pub const KIB: u64 = 1 << 10;
/// One mebibyte.
pub const MIB: u64 = 1 << 20;
/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// One microsecond in nanoseconds.
pub const US: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MS: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SEC: u64 = 1_000_000_000;

/// Formats a nanosecond duration the way the paper's tables do
/// (`28 µs`, `1.8 ms`, `4.0 ms`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10 * US {
        format!("{:.1} µs", ns as f64 / US as f64)
    } else if ns < MS {
        format!("{:.0} µs", ns as f64 / US as f64)
    } else if ns < SEC {
        format!("{:.1} ms", ns as f64 / MS as f64)
    } else {
        format!("{:.2} s", ns as f64 / SEC as f64)
    }
}

/// Formats a byte count (`4 KiB`, `256 MiB`, `1 GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{} GiB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{} MiB", bytes / MIB)
    } else if bytes >= KIB {
        format!("{} KiB", bytes / KIB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats an operations-per-second rate (`150k ops/s`, `1.2M ops/s`).
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1_000_000.0 {
        format!("{:.2}M ops/s", ops_per_sec / 1_000_000.0)
    } else if ops_per_sec >= 1_000.0 {
        format!("{:.0}k ops/s", ops_per_sec / 1_000.0)
    } else {
        format!("{ops_per_sec:.0} ops/s")
    }
}

/// Formats a throughput in GiB/s.
pub fn fmt_gib_per_sec(bytes: u64, ns: u64) -> String {
    let gib = bytes as f64 / GIB as f64;
    let sec = ns as f64 / SEC as f64;
    format!("{:.2} GiB/s", gib / sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_matches_paper_style() {
        assert_eq!(fmt_ns(2_800), "2.8 µs");
        assert_eq!(fmt_ns(28_000), "28 µs");
        assert_eq!(fmt_ns(185_000), "185 µs");
        assert_eq!(fmt_ns(1_800_000), "1.8 ms");
        assert_eq!(fmt_ns(417_200_000), "417.2 ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00 s");
    }

    #[test]
    fn fmt_bytes_powers() {
        assert_eq!(fmt_bytes(4 * KIB), "4 KiB");
        assert_eq!(fmt_bytes(256 * MIB), "256 MiB");
        assert_eq!(fmt_bytes(GIB), "1 GiB");
        assert_eq!(fmt_bytes(100), "100 B");
    }

    #[test]
    fn fmt_ops_scales() {
        assert_eq!(fmt_ops(120_000.0), "120k ops/s");
        assert_eq!(fmt_ops(2_500_000.0), "2.50M ops/s");
        assert_eq!(fmt_ops(12.0), "12 ops/s");
    }
}
