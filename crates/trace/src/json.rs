//! Minimal JSON helpers: deterministic string escaping for the
//! exporters, and a strict validating parser used by tests (and the CLI
//! smoke path) to check exported documents without external crates.

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is a single well-formed JSON document.
///
/// A recursive-descent checker, not a DOM: it accepts exactly the JSON
/// grammar (objects, arrays, strings, numbers, booleans, null) and
/// reports the byte offset of the first violation. Exporter tests use it
/// to guarantee Perfetto/`about://tracing` will accept our output.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digit"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn validate_accepts_good_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"x\ny"}],"c":null}"#,
            r#"  { "k" : [ ] }  "#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn validate_rejects_bad_documents() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "12 34", "\"abc", "{'a':1}", "nul"] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }
}
