//! `aurora-trace` — the deterministic tracing and metrics substrate.
//!
//! Every layer of the Aurora reproduction (DES dispatch, device I/O,
//! object-store epochs, VM faults, POSIX quiesce, the checkpoint
//! pipeline, external synchrony) reports what it does through a shared
//! [`Trace`] handle. Three properties make it fit a simulated OS:
//!
//! * **Deterministic**: events are stamped with the *virtual* clock
//!   (the recorder is constructed over a `Fn() -> u64` that reads it) and
//!   stored in issue order, so two identical runs produce byte-identical
//!   exports. No wall time, no thread IDs, no global registries.
//! * **Zero-cost when disabled**: a disabled handle is a `None`; every
//!   recording method is a single branch and never reads the clock. The
//!   virtual timeline of a run with tracing enabled is bit-identical to
//!   one with it disabled — recording never charges time.
//! * **Exportable**: [`chrome::export`] renders the event list as Chrome
//!   trace-event JSON (loadable in `about://tracing` or Perfetto);
//!   aggregated [`Histogram`]s and counters feed the bench harness's
//!   machine-readable metrics files.
//!
//! The crate is dependency-free and sits below `aurora-sim`: the
//! simulator's `Charge` accountant carries a `Trace`, so every subsystem
//! that can charge virtual time can also trace.

pub mod causal;
pub mod chrome;
pub mod flight;
pub mod invariant;
pub mod json;
pub mod probe;
pub mod sampler;

pub use causal::{CausalEvent, CausalGraph, CriticalPath, HopKind, PathHop};
pub use flight::FlightRecorder;
pub use invariant::InvariantChecker;
pub use probe::{ProbeId, ProbeSpec};
pub use sampler::{Sample, Sampler};

use probe::ProbeSet;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default event-ring capacity: generous enough that no current test or
/// bench run evicts, small enough to bound a pathological run's memory.
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

/// Environment override for the event-ring capacity.
pub const TRACE_CAP_ENV: &str = "AURORA_TRACE_CAP";

/// Event kinds, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span with a start and a duration (`ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

/// One recorded event. Arguments are `u64` only — every quantity in the
/// simulation (epochs, pids, bytes, nanoseconds) is an integer, and
/// integer-only args keep exports trivially deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp, ns.
    pub ts: u64,
    /// Duration for [`Phase::Complete`] events, ns (0 otherwise).
    pub dur: u64,
    /// Event kind.
    pub ph: Phase,
    /// Category — the emitting subsystem (`"pipeline"`, `"storage"`, …).
    pub cat: &'static str,
    /// Event name.
    pub name: Cow<'static, str>,
    /// Key/value arguments.
    pub args: Vec<(&'static str, u64)>,
}

/// A log₂-bucketed histogram of `u64` samples (latencies, sizes).
///
/// Bucket `i` holds samples whose value has `i` significant bits, i.e.
/// `v == 0` → bucket 0, otherwise bucket `64 - v.leading_zeros()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ buckets.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`, as if every sample recorded into
    /// `other` had been recorded here.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Upper bound of the bucket holding the `p`-th percentile
    /// (`p` in 0..=100). A coarse estimate — within 2× of the true value
    /// — which is enough for trend tracking.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p.min(100)).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
            }
        }
        self.max
    }
}

struct Inner {
    now: Box<dyn Fn() -> u64 + Send + Sync>,
    /// Bounded ring: oldest records are evicted once `cap` is reached.
    events: Mutex<VecDeque<TraceEvent>>,
    cap: usize,
    /// True when `AURORA_TRACE_CAP` was set but unparsable, so `cap` is
    /// the default rather than what the operator asked for.
    cap_override_invalid: bool,
    dropped: AtomicU64,
    hists: Mutex<BTreeMap<String, Histogram>>,
    probes: ProbeSet,
}

/// A cloneable subscriber handle. All clones share one event buffer.
///
/// The [`Default`]/[`Trace::disabled`] handle records nothing: every
/// method is a branch on a `None` and returns immediately, so
/// instrumented code pays nothing when tracing is off.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Trace(disabled)"),
            Some(i) => write!(f, "Trace({} events)", i.events.lock().unwrap().len()),
        }
    }
}

impl Trace {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle stamping events with `now` (the virtual clock).
    /// The event ring holds [`DEFAULT_TRACE_CAP`] records unless the
    /// `AURORA_TRACE_CAP` environment variable overrides it. An override
    /// that fails to parse is *not* swallowed silently: the handle falls
    /// back to the default capacity, records a `trace.cap_invalid`
    /// warning event, and reports the condition through
    /// [`Trace::cap_override_invalid`] so it can be surfaced as a gauge.
    pub fn recording(now: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        let (cap, invalid) = match std::env::var(TRACE_CAP_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => (n, false),
                Err(_) => (DEFAULT_TRACE_CAP, true),
            },
            Err(_) => (DEFAULT_TRACE_CAP, false),
        };
        let t = Self::build(now, cap, invalid);
        if invalid {
            t.instant(
                "trace",
                "trace.cap_invalid",
                &[("effective_cap", cap as u64)],
            );
        }
        t
    }

    /// A recording handle with an explicit event-ring capacity (clamped
    /// to ≥ 1). Probes and histograms are unaffected by the cap: probes
    /// run before eviction, histograms aggregate in place.
    pub fn recording_with_cap(now: impl Fn() -> u64 + Send + Sync + 'static, cap: usize) -> Self {
        Self::build(now, cap, false)
    }

    fn build(now: impl Fn() -> u64 + Send + Sync + 'static, cap: usize, invalid: bool) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                now: Box::new(now),
                events: Mutex::new(VecDeque::new()),
                cap: cap.max(1),
                cap_override_invalid: invalid,
                dropped: AtomicU64::new(0),
                hists: Mutex::new(BTreeMap::new()),
                probes: ProbeSet::default(),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recorder's current timestamp (0 when disabled).
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map(|i| (i.now)()).unwrap_or(0)
    }

    /// The single recording path: probes observe the record first (so
    /// they see every record regardless of ring capacity), then it
    /// enters the ring, evicting the oldest record when full.
    fn push(&self, ev: TraceEvent) {
        if let Some(i) = &self.inner {
            i.probes.dispatch(&ev);
            let mut events = i.events.lock().unwrap();
            if events.len() >= i.cap {
                events.pop_front();
                i.dropped.fetch_add(1, Ordering::Relaxed);
            }
            events.push_back(ev);
        }
    }

    /// Records a point event stamped now.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        args: &[(&'static str, u64)],
    ) {
        if self.inner.is_some() {
            let ts = self.now();
            self.push(TraceEvent {
                ts,
                dur: 0,
                ph: Phase::Instant,
                cat,
                name: name.into(),
                args: args.to_vec(),
            });
        }
    }

    /// Records a counter sample stamped now.
    pub fn counter(&self, cat: &'static str, name: impl Into<Cow<'static, str>>, value: u64) {
        if self.inner.is_some() {
            let ts = self.now();
            self.push(TraceEvent {
                ts,
                dur: 0,
                ph: Phase::Counter,
                cat,
                name: name.into(),
                args: vec![("value", value)],
            });
        }
    }

    /// Records a span with explicit start and duration (for operations
    /// whose interval is known after the fact, e.g. a device completion).
    pub fn complete(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        self.push(TraceEvent {
            ts: start_ns,
            dur: dur_ns,
            ph: Phase::Complete,
            cat,
            name: name.into(),
            args: args.to_vec(),
        });
    }

    /// Opens a span starting now; the returned guard records a
    /// [`Phase::Complete`] event when dropped (or [`Span::end`]ed).
    pub fn span(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
        Span {
            trace: self.clone(),
            cat,
            name: name.into(),
            start: self.now(),
            args: Vec::new(),
        }
    }

    /// Records `sample` into the named aggregated histogram.
    pub fn hist(&self, name: &str, sample: u64) {
        if let Some(i) = &self.inner {
            let mut h = i.hists.lock().unwrap();
            match h.get_mut(name) {
                Some(hist) => hist.record(sample),
                None => {
                    let mut hist = Histogram::default();
                    hist.record(sample);
                    h.insert(name.to_string(), hist);
                }
            }
        }
    }

    /// A snapshot of the retained events, in issue order (oldest records
    /// may have been evicted by the ring — see [`Trace::dropped_records`]).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.events.lock().unwrap().iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of events currently retained.
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map(|i| i.events.lock().unwrap().len()).unwrap_or(0)
    }

    /// The event ring's capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map(|i| i.cap).unwrap_or(0)
    }

    /// True when `AURORA_TRACE_CAP` was set but unparsable and the ring
    /// silently-no-more fell back to [`DEFAULT_TRACE_CAP`].
    pub fn cap_override_invalid(&self) -> bool {
        self.inner.as_ref().map(|i| i.cap_override_invalid).unwrap_or(false)
    }

    /// Records evicted from the ring since recording began.
    pub fn dropped_records(&self) -> u64 {
        self.inner.as_ref().map(|i| i.dropped.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Registers a probe: `f` runs synchronously for every subsequent
    /// record matching `spec`, before the ring can evict it. Returns the
    /// null id ([`ProbeId`]`(0)`) on a disabled trace.
    pub fn probe(
        &self,
        spec: ProbeSpec,
        f: impl Fn(&TraceEvent) + Send + Sync + 'static,
    ) -> ProbeId {
        self.inner.as_ref().map(|i| i.probes.add(spec, f)).unwrap_or(ProbeId(0))
    }

    /// Removes a probe (no-op for unknown or null ids).
    pub fn unprobe(&self, id: ProbeId) {
        if let Some(i) = &self.inner {
            i.probes.remove(id);
        }
    }

    /// How many records a probe has matched (0 after removal).
    pub fn probe_hits(&self, id: ProbeId) -> u64 {
        self.inner.as_ref().map(|i| i.probes.hits(id)).unwrap_or(0)
    }

    /// Number of registered probes.
    pub fn probe_count(&self) -> usize {
        self.inner.as_ref().map(|i| i.probes.len()).unwrap_or(0)
    }

    /// A snapshot of the aggregated histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .as_ref()
            .map(|i| i.hists.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }

    /// Drops all recorded events and histograms and zeroes the dropped
    /// counter (keeps the handle — and its probes — live).
    pub fn clear(&self) {
        if let Some(i) = &self.inner {
            i.events.lock().unwrap().clear();
            i.hists.lock().unwrap().clear();
            i.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Renders the recorded events as Chrome trace-event JSON.
    pub fn export_chrome(&self) -> String {
        chrome::export(&self.events())
    }
}

/// A live span; dropping it records the completed interval.
#[must_use = "dropping immediately records a zero-length span"]
pub struct Span {
    trace: Trace,
    cat: &'static str,
    name: Cow<'static, str>,
    start: u64,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// The span's start timestamp.
    pub fn start_ns(&self) -> u64 {
        self.start
    }

    /// Attaches an argument (recorded at close).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.trace.is_enabled() {
            self.args.push((key, value));
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.trace.is_enabled() {
            let end = self.trace.now();
            self.trace.push(TraceEvent {
                ts: self.start,
                dur: end.saturating_sub(self.start),
                ph: Phase::Complete,
                cat: self.cat,
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn clocked() -> (Arc<AtomicU64>, Trace) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        (t, Trace::recording(move || t2.load(Ordering::Relaxed)))
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Trace::disabled();
        t.instant("x", "e", &[("a", 1)]);
        t.counter("x", "c", 5);
        t.hist("h", 3);
        let mut s = t.span("x", "s");
        s.arg("k", 1);
        drop(s);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert!(t.histograms().is_empty());
    }

    #[test]
    fn events_are_stamped_and_ordered() {
        let (clock, t) = clocked();
        t.instant("a", "first", &[]);
        clock.store(10, Ordering::Relaxed);
        t.instant("a", "second", &[("v", 7)]);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].ts, evs[1].ts), (0, 10));
        assert_eq!(evs[1].args, vec![("v", 7)]);
    }

    #[test]
    fn span_measures_interval() {
        let (clock, t) = clocked();
        clock.store(100, Ordering::Relaxed);
        let mut s = t.span("cat", "work");
        s.arg("n", 3);
        clock.store(250, Ordering::Relaxed);
        s.end();
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].ts, evs[0].dur), (100, 150));
        assert_eq!(evs[0].ph, Phase::Complete);
        assert_eq!(evs[0].args, vec![("n", 3)]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let (_, t) = clocked();
        let t2 = t.clone();
        t.instant("a", "x", &[]);
        t2.instant("a", "y", &[]);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t2.event_count(), 2);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), 1110 / 6);
        assert!(h.percentile(50) >= 3);
        assert!(h.percentile(100) >= 1000);
        let empty = Histogram::default();
        assert_eq!(empty.percentile(99), 0);
        assert_eq!(empty.mean(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let (clock, _) = clocked();
        let t2 = clock.clone();
        let t = Trace::recording_with_cap(move || t2.load(Ordering::Relaxed), 3);
        for i in 0..5u64 {
            t.instant("a", "e", &[("i", i)]);
        }
        assert_eq!(t.event_count(), 3);
        assert_eq!(t.dropped_records(), 2);
        assert_eq!(t.capacity(), 3);
        let evs = t.events();
        assert_eq!(evs[0].args, vec![("i", 2)], "oldest two evicted");
        assert_eq!(evs[2].args, vec![("i", 4)]);
        t.clear();
        assert_eq!(t.dropped_records(), 0);
    }

    #[test]
    fn probes_see_records_the_ring_evicts() {
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let t = Trace::recording_with_cap(|| 0, 2);
        let id = t.probe(ProbeSpec::any().name_prefix("e"), move |_| {
            s2.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..10 {
            t.instant("a", "e", &[]);
        }
        assert_eq!(t.event_count(), 2, "ring bounded");
        assert_eq!(seen.load(Ordering::Relaxed), 10, "probe saw every record");
        assert_eq!(t.probe_hits(id), 10);
        assert_eq!(t.probe_count(), 1);
        t.unprobe(id);
        assert_eq!(t.probe_count(), 0);
    }

    #[test]
    fn probe_callback_may_emit_records() {
        let (_, t) = clocked();
        let t2 = t.clone();
        t.probe(ProbeSpec::any().name_prefix("outer"), move |_| {
            t2.instant("probe", "inner", &[]);
        });
        t.instant("a", "outer", &[]);
        let names: Vec<_> = t.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, vec!["inner", "outer"], "re-entrant emission must not deadlock");
    }

    #[test]
    fn disabled_trace_probe_api_is_inert() {
        let t = Trace::disabled();
        let id = t.probe(ProbeSpec::any(), |_| panic!("must never run"));
        assert_eq!(id, ProbeId(0));
        t.instant("a", "e", &[]);
        assert_eq!(t.probe_hits(id), 0);
        assert_eq!(t.probe_count(), 0);
        assert_eq!(t.dropped_records(), 0);
        t.unprobe(id);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut combined = Histogram::default();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            combined.record(v);
        }
        for v in [3u64, 7_000, 0] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        let mut empty = Histogram::default();
        empty.merge(&Histogram::default());
        assert_eq!(empty, Histogram::default(), "merging empties stays empty");
    }

    #[test]
    fn identical_runs_identical_events() {
        let run = || {
            let (clock, t) = clocked();
            for i in 0..50u64 {
                clock.store(i * 7, Ordering::Relaxed);
                t.instant("cat", "tick", &[("i", i)]);
                t.hist("lat", i % 11);
            }
            (t.events(), t.histograms())
        };
        assert_eq!(run(), run());
    }
}
