//! Chrome trace-event JSON exporter.
//!
//! Renders a recorded event list as the `{"traceEvents": [...]}` object
//! format accepted by `about://tracing` and Perfetto. The layout is
//! deterministic: events appear in issue order, every track (one per
//! category, sorted by name) gets a stable tid, and timestamps are
//! printed with fixed microsecond.3 precision so identical runs export
//! byte-identical documents.

use crate::{json, Phase, TraceEvent};

/// Virtual process id for all tracks — there is one simulated machine.
const PID: u32 = 1;

/// Formats a nanosecond timestamp as the microseconds Chrome expects,
/// with exactly three decimals (no float formatting involved).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_json(args: &[(&'static str, u64)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", json::escape(k), v));
    }
    s.push('}');
    s
}

/// Exports `events` as a Chrome trace-event JSON document.
pub fn export(events: &[TraceEvent]) -> String {
    // One track per category, in sorted order for stable tids.
    let mut cats: Vec<&'static str> = events.iter().map(|e| e.cat).collect();
    cats.sort_unstable();
    cats.dedup();
    let tid_of = |cat: &str| cats.iter().position(|c| *c == cat).unwrap() as u32 + 1;

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Track-name metadata so viewers label rows by subsystem.
    for cat in &cats {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid_of(cat),
                json::escape(cat)
            ),
            &mut first,
        );
    }

    for e in events {
        let tid = tid_of(e.cat);
        let name = json::escape(&e.name);
        let cat = json::escape(e.cat);
        let args = args_json(&e.args);
        let line = match e.ph {
            Phase::Complete => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{args}}}",
                us(e.ts),
                us(e.dur)
            ),
            Phase::Instant => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{args}}}",
                us(e.ts)
            ),
            Phase::Counter => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":{PID},\"tid\":{tid},\"args\":{args}}}",
                us(e.ts)
            ),
        };
        push(line, &mut first);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn sample_trace() -> Trace {
        let clk = Arc::new(AtomicU64::new(0));
        let c = clk.clone();
        let t = Trace::recording(move || c.load(Ordering::Relaxed));
        clk.store(1_500, Ordering::Relaxed);
        let s = t.span("pipeline", "quiesce");
        clk.store(4_750, Ordering::Relaxed);
        s.end();
        t.instant("storage", "write", &[("lba", 12), ("nblocks", 4)]);
        t.counter("vm", "dirty_pages", 37);
        t
    }

    #[test]
    fn export_is_valid_json() {
        let doc = sample_trace().export_chrome();
        json::validate(&doc).unwrap();
    }

    #[test]
    fn export_contains_expected_records() {
        let doc = sample_trace().export_chrome();
        assert!(doc.contains("\"name\":\"quiesce\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":3.250"));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"lba\":12"));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":37"));
        // Track metadata for each category.
        for cat in ["pipeline", "storage", "vm"] {
            assert!(doc.contains(&format!("\"args\":{{\"name\":\"{cat}\"}}")));
        }
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_trace().export_chrome();
        let b = sample_trace().export_chrome();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let doc = export(&[]);
        json::validate(&doc).unwrap();
        assert!(doc.contains("traceEvents"));
    }
}
