//! The online invariant checker: cross-layer assertions expressed as
//! probes over the live event stream.
//!
//! Arming a checker on a recording [`Trace`](crate::Trace) registers one
//! probe per invariant; every test, benchmark, and crash schedule that
//! runs with the checker armed becomes a cross-layer assertion run at no
//! virtual-time cost. The invariants:
//!
//! 1. **Epoch monotonicity** — `epoch.commit` (and `recovery.replay`)
//!    epochs strictly increase; a `recovery.begin` resets the watermark,
//!    because recovery legitimately rewinds to the last durable epoch
//!    and reuses the numbers a crash destroyed.
//! 2. **External synchrony: seal before release, release after
//!    durability** — every `extsync.release` names an epoch that was
//!    previously sealed (`extsync.seal`), and fires no earlier than the
//!    batch's recorded durability horizon.
//! 3. **Quiesce-window mutual exclusion** — `posix.quiesce` windows
//!    never overlap: the kernel must not stop a group while another
//!    stop-the-world window is still open.
//! 4. **Frozen-frame immutability** — every `frames.write` that hits a
//!    shared (refcount ≥ 2, i.e. frozen-by-someone) frame reports a COW
//!    copy; an in-place write to a shared frame would mutate a frozen
//!    checkpoint's view of memory.
//! 5. **Redo-chain termination** — every `redo.materialize` chain walk
//!    ends at a full-image record (`full_base = 1`); a chain with no
//!    base cannot be replayed into a page.
//! 6. **Durability watermark ordering** — every `redo.watermark` holds
//!    `VDL ≤ VCL`: a consistency point cannot be durable before every
//!    record below it is on the device.
//!
//! Violations are collected, not panicked, so a harness can run to
//! completion and report every failure; [`InvariantChecker::assert_clean`]
//! is the test-facing panic. [`InvariantChecker::on_violation`] registers
//! sinks that fire synchronously at the moment a violation is detected —
//! the flight recorder uses this to dump the causal graphs of the last
//! few epochs while the evidence is still in the rings.

use crate::probe::{ProbeId, ProbeSpec};
use crate::{Trace, TraceEvent};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct State {
    checked: u64,
    violations: Vec<String>,
    last_epoch: Option<u64>,
    sealed: BTreeSet<u64>,
    quiesce_end: u64,
}

type Sink = Arc<dyn Fn(&str) + Send + Sync>;

/// A live invariant checker. Cloning shares the collected state.
#[derive(Clone, Default)]
pub struct InvariantChecker {
    state: Arc<Mutex<State>>,
    sinks: Arc<Mutex<Vec<Sink>>>,
    ids: Vec<ProbeId>,
}

fn arg(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

/// Dispatches freshly detected violations to the registered sinks. Runs
/// outside the state lock so a sink may inspect the checker (or trigger
/// a flight-recorder dump) without deadlocking.
fn notify(sinks: &Arc<Mutex<Vec<Sink>>>, fresh: &[String]) {
    if fresh.is_empty() {
        return;
    }
    let snapshot: Vec<Sink> = sinks.lock().unwrap().clone();
    for msg in fresh {
        for sink in &snapshot {
            sink(msg);
        }
    }
}

impl InvariantChecker {
    /// Arms every invariant on `trace`. On a disabled trace this is a
    /// no-op checker that trivially stays clean.
    pub fn arm(trace: &Trace) -> Self {
        let state = Arc::new(Mutex::new(State::default()));
        let sinks: Arc<Mutex<Vec<Sink>>> = Arc::new(Mutex::new(Vec::new()));
        let mut ids = Vec::new();

        // 1. Epoch monotonicity (+ recovery resets).
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().cat("objstore").name_prefix("epoch.commit"), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    let epoch = arg(ev, "epoch").unwrap_or(0);
                    if let Some(last) = st.last_epoch {
                        if epoch <= last {
                            fresh.push(format!(
                                "epoch monotonicity: commit of epoch {epoch} at t={} after epoch {last}",
                                ev.ts
                            ));
                        }
                    }
                    st.last_epoch = Some(epoch);
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().cat("objstore").name_prefix("recovery."), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    if ev.name.as_ref() == "recovery.begin" {
                        // A crash rewinds the epoch space; restart the watch.
                        st.last_epoch = None;
                    } else if ev.name.as_ref() == "recovery.replay" {
                        let epoch = arg(ev, "epoch").unwrap_or(0);
                        if let Some(last) = st.last_epoch {
                            if epoch <= last {
                                fresh.push(format!(
                                    "epoch monotonicity: recovery replayed epoch {epoch} after {last}"
                                ));
                            }
                        }
                        st.last_epoch = Some(epoch);
                    }
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));

        // 2. External synchrony ordering.
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().name_prefix("extsync."), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    let epoch = arg(ev, "epoch").unwrap_or(0);
                    match ev.name.as_ref() {
                        "extsync.seal" => {
                            st.sealed.insert(epoch);
                        }
                        "extsync.release" => {
                            if !st.sealed.contains(&epoch) {
                                fresh.push(format!(
                                    "extsync ordering: release of epoch {epoch} at t={} never sealed",
                                    ev.ts
                                ));
                            }
                            if let Some(durable_at) = arg(ev, "durable_at") {
                                if ev.ts < durable_at {
                                    fresh.push(format!(
                                        "extsync durability: epoch {epoch} released at t={} before \
                                         durable_at={durable_at}",
                                        ev.ts
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));

        // 3. Quiesce-window mutual exclusion.
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(
            ProbeSpec::any().cat("posix").name_prefix("posix.quiesce").phase(crate::Phase::Complete),
            {
                move |ev| {
                    let mut fresh = Vec::new();
                    {
                        let mut st = s.lock().unwrap();
                        st.checked += 1;
                        if ev.ts < st.quiesce_end {
                            fresh.push(format!(
                                "quiesce exclusion: window [{}, {}) overlaps one ending at {}",
                                ev.ts,
                                ev.ts + ev.dur,
                                st.quiesce_end
                            ));
                        }
                        st.quiesce_end = st.quiesce_end.max(ev.ts + ev.dur);
                        st.violations.extend(fresh.iter().cloned());
                    }
                    notify(&k, &fresh);
                }
            },
        ));

        // 4. Frozen-frame immutability.
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().cat("frames").name_prefix("frames.write"), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    let shared = arg(ev, "shared").unwrap_or(0);
                    let copied = arg(ev, "copied").unwrap_or(0);
                    if shared == 1 && copied == 0 {
                        fresh.push(format!(
                            "frozen-frame immutability: in-place write to a shared frame at t={}",
                            ev.ts
                        ));
                    }
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));

        // 5. Redo-chain termination.
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().cat("objstore").name_prefix("redo.materialize"), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    if arg(ev, "full_base").unwrap_or(0) == 0 {
                        fresh.push(format!(
                            "redo chain termination: materialization at t={} walked a chain with \
                             no full-image base",
                            ev.ts
                        ));
                    }
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));

        // 6. Durability watermark ordering: VDL never exceeds VCL.
        let (s, k) = (state.clone(), sinks.clone());
        ids.push(trace.probe(ProbeSpec::any().cat("objstore").name_prefix("redo.watermark"), {
            move |ev| {
                let mut fresh = Vec::new();
                {
                    let mut st = s.lock().unwrap();
                    st.checked += 1;
                    let vcl = arg(ev, "vcl").unwrap_or(0);
                    let vdl = arg(ev, "vdl").unwrap_or(0);
                    if vdl > vcl {
                        fresh.push(format!(
                            "watermark ordering: VDL {vdl} exceeds VCL {vcl} at t={}",
                            ev.ts
                        ));
                    }
                    st.violations.extend(fresh.iter().cloned());
                }
                notify(&k, &fresh);
            }
        }));

        Self { state, sinks, ids }
    }

    /// Registers a sink invoked synchronously (outside the checker's
    /// internal lock) for every violation detected from now on. The
    /// flight recorder hangs its dump trigger here.
    pub fn on_violation(&self, f: impl Fn(&str) + Send + Sync + 'static) {
        self.sinks.lock().unwrap().push(Arc::new(f));
    }

    /// Removes the checker's probes from `trace` (state is retained).
    pub fn disarm(&self, trace: &Trace) {
        for &id in &self.ids {
            trace.unprobe(id);
        }
    }

    /// Events the checker has examined.
    pub fn checked(&self) -> u64 {
        self.state.lock().unwrap().checked
    }

    /// The violations collected so far.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().unwrap().violations.clone()
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.state.lock().unwrap().violations.is_empty()
    }

    /// Panics with every collected violation (test assertion).
    pub fn assert_clean(&self) {
        let st = self.state.lock().unwrap();
        assert!(
            st.violations.is_empty(),
            "invariant checker found {} violation(s) over {} events:\n  {}",
            st.violations.len(),
            st.checked,
            st.violations.join("\n  ")
        );
    }
}

impl std::fmt::Debug for InvariantChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap();
        write!(f, "InvariantChecker({} checked, {} violations)", st.checked, st.violations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn clocked() -> (Arc<AtomicU64>, Trace) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        (t, Trace::recording(move || t2.load(Ordering::Relaxed)))
    }

    #[test]
    fn monotone_epochs_are_clean_and_regressions_caught() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "epoch.commit", &[("epoch", 1)]);
        t.instant("objstore", "epoch.commit", &[("epoch", 2)]);
        assert!(c.is_clean());
        t.instant("objstore", "epoch.commit", &[("epoch", 2)]);
        assert!(!c.is_clean());
        assert!(c.violations()[0].contains("epoch monotonicity"));
    }

    #[test]
    fn recovery_resets_the_epoch_watermark() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "epoch.commit", &[("epoch", 5)]);
        t.instant("objstore", "recovery.begin", &[]);
        t.instant("objstore", "recovery.replay", &[("epoch", 3)]);
        t.instant("objstore", "epoch.commit", &[("epoch", 4)]);
        assert!(c.is_clean(), "{:?}", c.violations());
        // But replays themselves must ascend.
        t.instant("objstore", "recovery.begin", &[]);
        t.instant("objstore", "recovery.replay", &[("epoch", 3)]);
        t.instant("objstore", "recovery.replay", &[("epoch", 2)]);
        assert!(!c.is_clean());
    }

    #[test]
    fn release_requires_prior_seal_and_durability() {
        let (clock, t) = clocked();
        let c = InvariantChecker::arm(&t);
        clock.store(100, Ordering::Relaxed);
        t.instant("extsync", "extsync.seal", &[("epoch", 1), ("durable_at", 150)]);
        clock.store(200, Ordering::Relaxed);
        t.instant("extsync", "extsync.release", &[("epoch", 1), ("durable_at", 150)]);
        assert!(c.is_clean(), "{:?}", c.violations());
        t.instant("extsync", "extsync.release", &[("epoch", 9), ("durable_at", 0)]);
        assert!(!c.is_clean());
        let (_, t2) = clocked();
        let c2 = InvariantChecker::arm(&t2);
        t2.instant("extsync", "extsync.seal", &[("epoch", 1), ("durable_at", 500)]);
        t2.instant("extsync", "extsync.release", &[("epoch", 1), ("durable_at", 500)]);
        assert!(!c2.is_clean(), "released at t=0 before durable_at=500");
    }

    #[test]
    fn overlapping_quiesce_windows_are_violations() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.complete("posix", "posix.quiesce", 100, 50, &[]);
        t.complete("posix", "posix.quiesce", 150, 50, &[]);
        assert!(c.is_clean(), "{:?}", c.violations());
        t.complete("posix", "posix.quiesce", 180, 10, &[]);
        assert!(!c.is_clean());
    }

    #[test]
    fn inplace_write_to_shared_frame_is_a_violation() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("frames", "frames.write", &[("shared", 0), ("copied", 0), ("zero", 0)]);
        t.instant("frames", "frames.write", &[("shared", 1), ("copied", 1), ("zero", 0)]);
        assert!(c.is_clean());
        t.instant("frames", "frames.write", &[("shared", 1), ("copied", 0), ("zero", 0)]);
        assert!(!c.is_clean());
        assert_eq!(c.checked(), 3);
    }

    #[test]
    fn chain_without_full_base_is_a_violation() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "redo.materialize", &[("oid", 7), ("chain_len", 3), ("full_base", 1)]);
        assert!(c.is_clean(), "{:?}", c.violations());
        t.instant("objstore", "redo.materialize", &[("oid", 7), ("full_base", 0)]);
        assert!(!c.is_clean());
        assert!(c.violations()[0].contains("redo chain termination"));
    }

    #[test]
    fn vdl_above_vcl_is_a_violation() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "redo.watermark", &[("vcl", 10), ("vdl", 10)]);
        t.instant("objstore", "redo.watermark", &[("vcl", 12), ("vdl", 10)]);
        assert!(c.is_clean(), "{:?}", c.violations());
        t.instant("objstore", "redo.watermark", &[("vcl", 12), ("vdl", 13)]);
        assert!(!c.is_clean());
        assert!(c.violations()[0].contains("watermark ordering"));
    }

    #[test]
    fn disarm_stops_checking() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "epoch.commit", &[("epoch", 1)]);
        c.disarm(&t);
        t.instant("objstore", "epoch.commit", &[("epoch", 1)]);
        assert!(c.is_clean(), "violation after disarm must not be seen");
        assert_eq!(c.checked(), 1);
    }

    #[test]
    fn checker_on_disabled_trace_is_inert() {
        let t = Trace::disabled();
        let c = InvariantChecker::arm(&t);
        t.instant("objstore", "epoch.commit", &[("epoch", 1)]);
        assert!(c.is_clean());
        assert_eq!(c.checked(), 0);
    }

    #[test]
    fn violation_sinks_fire_once_per_violation() {
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        c.on_violation(move |msg| s2.lock().unwrap().push(msg.to_string()));
        t.instant("objstore", "epoch.commit", &[("epoch", 3)]);
        assert!(seen.lock().unwrap().is_empty(), "clean events must not fire sinks");
        t.instant("objstore", "epoch.commit", &[("epoch", 3)]);
        let got = seen.lock().unwrap().clone();
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("epoch monotonicity"));
        assert_eq!(c.violations(), got);
    }

    #[test]
    fn violation_sink_may_inspect_the_checker() {
        // A sink that re-enters the checker's accessors (as the flight
        // recorder's dump path does) must not deadlock.
        let (_, t) = clocked();
        let c = InvariantChecker::arm(&t);
        let c2 = c.clone();
        let count = Arc::new(AtomicU64::new(0));
        let n2 = count.clone();
        c.on_violation(move |_| {
            n2.store(c2.violations().len() as u64, Ordering::Relaxed);
        });
        t.instant("objstore", "redo.watermark", &[("vcl", 1), ("vdl", 2)]);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
