//! The streaming probe engine: DTrace-style predicates over the live
//! event stream.
//!
//! A probe is a [`ProbeSpec`] predicate plus a callback. Registered on a
//! recording [`Trace`](crate::Trace), the callback runs *synchronously*
//! for every matching record at the moment it is emitted — before the
//! bounded ring can evict it — so subscribers (the invariant checker,
//! `sls watch`, tests) observe the complete stream regardless of buffer
//! capacity.
//!
//! Cost model: with no probes registered, emission pays one relaxed
//! atomic load on top of the plain recording path. With probes
//! registered, each record is matched against every spec; callbacks run
//! only on a match. Probes never read or advance the clock, so arming
//! them cannot perturb a run's virtual timeline.

use crate::{Phase, TraceEvent};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A predicate over trace records. Every populated field must match;
/// the default matches everything.
#[derive(Clone, Debug, Default)]
pub struct ProbeSpec {
    /// Event name must start with this.
    pub name_prefix: Option<Cow<'static, str>>,
    /// Category (emitting subsystem) must equal this.
    pub cat: Option<&'static str>,
    /// Event phase must equal this.
    pub phase: Option<Phase>,
    /// Complete-span duration must be at least this (instants and
    /// counters have duration 0, so a nonzero threshold selects spans).
    pub min_dur_ns: u64,
    /// Every listed argument must be present with exactly this value
    /// (e.g. a specific OID or PID).
    pub arg_eq: Vec<(&'static str, u64)>,
}

impl ProbeSpec {
    /// A spec matching every record.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to names starting with `prefix`.
    pub fn name_prefix(mut self, prefix: impl Into<Cow<'static, str>>) -> Self {
        self.name_prefix = Some(prefix.into());
        self
    }

    /// Restricts to one category (subsystem).
    pub fn cat(mut self, cat: &'static str) -> Self {
        self.cat = Some(cat);
        self
    }

    /// Restricts to one phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Restricts to spans at least `ns` long.
    pub fn min_dur(mut self, ns: u64) -> Self {
        self.min_dur_ns = ns;
        self
    }

    /// Requires argument `key` to be present and equal `value`.
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        self.arg_eq.push((key, value));
        self
    }

    /// Whether `ev` satisfies every populated field.
    pub fn matches(&self, ev: &TraceEvent) -> bool {
        if let Some(p) = &self.name_prefix {
            if !ev.name.starts_with(p.as_ref()) {
                return false;
            }
        }
        if let Some(c) = self.cat {
            if ev.cat != c {
                return false;
            }
        }
        if let Some(ph) = self.phase {
            if ev.ph != ph {
                return false;
            }
        }
        if ev.dur < self.min_dur_ns {
            return false;
        }
        self.arg_eq
            .iter()
            .all(|&(k, v)| ev.args.iter().any(|&(ak, av)| ak == k && av == v))
    }
}

/// Handle to a registered probe (remove it, read its hit count).
/// `ProbeId(0)` is the null id a disabled trace hands out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbeId(pub u64);

/// A registered callback, shareable so dispatch can run it lock-free.
type ProbeFn = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

struct ProbeEntry {
    id: u64,
    spec: ProbeSpec,
    hits: Arc<AtomicU64>,
    f: ProbeFn,
}

/// The set of live probes on one recorder. Shared by all `Trace` clones.
#[derive(Default)]
pub(crate) struct ProbeSet {
    /// Number of registered probes — the emission fast path's only read.
    count: AtomicUsize,
    next_id: AtomicU64,
    probes: Mutex<Vec<ProbeEntry>>,
}

impl ProbeSet {
    pub(crate) fn add(
        &self,
        spec: ProbeSpec,
        f: impl Fn(&TraceEvent) + Send + Sync + 'static,
    ) -> ProbeId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut probes = self.probes.lock().unwrap();
        probes.push(ProbeEntry {
            id,
            spec,
            hits: Arc::new(AtomicU64::new(0)),
            f: Arc::new(f),
        });
        self.count.store(probes.len(), Ordering::Relaxed);
        ProbeId(id)
    }

    pub(crate) fn remove(&self, id: ProbeId) {
        let mut probes = self.probes.lock().unwrap();
        probes.retain(|p| p.id != id.0);
        self.count.store(probes.len(), Ordering::Relaxed);
    }

    pub(crate) fn hits(&self, id: ProbeId) -> u64 {
        self.probes
            .lock()
            .unwrap()
            .iter()
            .find(|p| p.id == id.0)
            .map(|p| p.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    pub(crate) fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Runs every matching probe on `ev`. Callbacks are invoked with the
    /// probe lock released, so a callback may itself emit trace records
    /// (they recurse through dispatch safely).
    pub(crate) fn dispatch(&self, ev: &TraceEvent) {
        if self.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let matched: Vec<(Arc<AtomicU64>, ProbeFn)> = {
            let probes = self.probes.lock().unwrap();
            probes
                .iter()
                .filter(|p| p.spec.matches(ev))
                .map(|p| (p.hits.clone(), p.f.clone()))
                .collect()
        };
        for (hits, f) in matched {
            hits.fetch_add(1, Ordering::Relaxed);
            f(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cat: &'static str, name: &'static str, dur: u64, args: &[(&'static str, u64)]) -> TraceEvent {
        TraceEvent {
            ts: 0,
            dur,
            ph: if dur > 0 { Phase::Complete } else { Phase::Instant },
            cat,
            name: Cow::Borrowed(name),
            args: args.to_vec(),
        }
    }

    #[test]
    fn spec_fields_all_constrain() {
        let e = ev("objstore", "epoch.commit", 0, &[("epoch", 3), ("oid", 7)]);
        assert!(ProbeSpec::any().matches(&e));
        assert!(ProbeSpec::any().name_prefix("epoch.").matches(&e));
        assert!(!ProbeSpec::any().name_prefix("pipeline").matches(&e));
        assert!(ProbeSpec::any().cat("objstore").matches(&e));
        assert!(!ProbeSpec::any().cat("vm").matches(&e));
        assert!(ProbeSpec::any().arg("oid", 7).matches(&e));
        assert!(!ProbeSpec::any().arg("oid", 8).matches(&e));
        assert!(!ProbeSpec::any().arg("pid", 7).matches(&e));
        assert!(ProbeSpec::any().phase(Phase::Instant).matches(&e));
        assert!(!ProbeSpec::any().phase(Phase::Complete).matches(&e));
    }

    #[test]
    fn min_dur_selects_slow_spans() {
        let fast = ev("pipeline", "flush", 10, &[]);
        let slow = ev("pipeline", "flush", 10_000, &[]);
        let spec = ProbeSpec::any().min_dur(1_000);
        assert!(!spec.matches(&fast));
        assert!(spec.matches(&slow));
    }

    #[test]
    fn dispatch_counts_hits_and_respects_removal() {
        let set = ProbeSet::default();
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let id = set.add(ProbeSpec::any().name_prefix("a"), move |_| {
            s2.fetch_add(1, Ordering::Relaxed);
        });
        set.dispatch(&ev("x", "abc", 0, &[]));
        set.dispatch(&ev("x", "zzz", 0, &[]));
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(set.hits(id), 1);
        set.remove(id);
        set.dispatch(&ev("x", "abc", 0, &[]));
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(set.hits(id), 0, "removed probes report no hits");
    }
}
