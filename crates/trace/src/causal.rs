//! Cross-node causal graphs over the per-node trace rings.
//!
//! A single checkpoint epoch's life spans several machines: the leader
//! quiesces and flushes, the commit record seals the epoch, the delta
//! stream crosses the fabric, each follower applies and acks at its
//! durable floor, and only the quorum watermark finally lets external
//! synchrony release the epoch's responses. Each node records its part
//! of that story in its own bounded ring; a [`CausalGraph`] stitches the
//! rings back into one DAG keyed by `(epoch, group)`.
//!
//! Nodes of the graph are [`CausalEvent`]s — a hop of the epoch's
//! lifecycle attributed to a pipeline **stage**, a fabric **link**, a
//! quorum **member**, or **local** engine work. Edges are dependency
//! indices (`deps`), pointing at the hops that had to complete first.
//!
//! The **critical path** is the longest causal chain from the epoch's
//! seal to its quorum release: starting at the terminal event, walk
//! backward always choosing the predecessor that *finished last* (the
//! binding constraint), deterministically tie-breaking on the smaller
//! index. Consecutive-hop durations are defined as the gap between the
//! predecessor's completion and this hop's completion, so the hop
//! durations telescope: their sum is exactly the end-to-end seal→release
//! latency, which `sls explain` and the CI gate rely on.
//!
//! Everything here is pure data + arithmetic over virtual timestamps, so
//! two identically-seeded runs produce byte-identical [`CausalGraph::to_json`]
//! exports.

use crate::json::escape;

/// What a hop of the epoch lifecycle is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// A checkpoint-pipeline stage on the leader (quiesce … commit).
    Stage,
    /// Time on a fabric link (serialization + propagation + queuing).
    Link,
    /// Work on a quorum member (apply, durable-floor wait, ack).
    Member,
    /// Local engine work that is none of the above (watermark, release).
    Local,
}

impl HopKind {
    /// Stable lowercase name used in exports and gauge suffixes.
    pub fn as_str(self) -> &'static str {
        match self {
            HopKind::Stage => "stage",
            HopKind::Link => "link",
            HopKind::Member => "member",
            HopKind::Local => "local",
        }
    }
}

/// One hop of an epoch's lifecycle, tagged with the node whose ring it
/// came from. `deps` are indices of hops that causally precede this one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalEvent {
    /// Node whose trace ring recorded this hop.
    pub node: u64,
    /// Hop label (e.g. `stage.flush`, `replicate`, `recv_apply`).
    pub label: String,
    /// Attribution class.
    pub kind: HopKind,
    /// Virtual start timestamp, ns.
    pub ts: u64,
    /// Duration, ns (0 for point events).
    pub dur: u64,
    /// Indices of causal predecessors within the graph.
    pub deps: Vec<usize>,
    /// Extra key/value detail carried from the trace record.
    pub args: Vec<(String, u64)>,
}

impl CausalEvent {
    /// Completion time: when this hop's effect exists.
    pub fn done(&self) -> u64 {
        self.ts + self.dur
    }
}

/// One hop on the extracted critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathHop {
    /// Hop label.
    pub label: String,
    /// Attribution class.
    pub kind: HopKind,
    /// Node the hop ran on.
    pub node: u64,
    /// When the path entered this hop (predecessor's completion).
    pub from_ns: u64,
    /// When this hop completed.
    pub until_ns: u64,
    /// `until_ns - from_ns`; hop durations telescope to the total.
    pub dur_ns: u64,
}

/// The extracted critical path: hops in causal order, telescoping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Hops from root to terminal.
    pub hops: Vec<PathHop>,
    /// Start of the first hop (seal time).
    pub start_ns: u64,
    /// Completion of the terminal hop (release time).
    pub end_ns: u64,
    /// `end_ns - start_ns`, equal to the sum of hop durations.
    pub total_ns: u64,
}

impl CriticalPath {
    /// Total nanoseconds attributed to `kind` along the path.
    pub fn attributed_ns(&self, kind: HopKind) -> u64 {
        self.hops.iter().filter(|h| h.kind == kind).map(|h| h.dur_ns).sum()
    }
}

/// The causal event graph of one epoch of one consistency group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalGraph {
    /// Checkpoint epoch this graph describes.
    pub epoch: u64,
    /// Consistency group.
    pub group: u64,
    /// True when any contributing ring evicted records while this epoch
    /// was live — the graph may be missing hops and must not be
    /// presented as complete.
    pub truncated: bool,
    /// Hops, in insertion order.
    pub events: Vec<CausalEvent>,
    /// Index of the terminal hop (the release), when known.
    pub terminal: Option<usize>,
}

impl CausalGraph {
    /// An empty graph for `(epoch, group)`.
    pub fn new(epoch: u64, group: u64) -> Self {
        Self { epoch, group, ..Default::default() }
    }

    /// Appends a hop, returning its index for later `deps` references.
    pub fn add(&mut self, ev: CausalEvent) -> usize {
        self.events.push(ev);
        self.events.len() - 1
    }

    /// Convenience: append a hop depending on `deps`.
    #[allow(clippy::too_many_arguments)]
    pub fn hop(
        &mut self,
        node: u64,
        label: impl Into<String>,
        kind: HopKind,
        ts: u64,
        dur: u64,
        deps: Vec<usize>,
        args: Vec<(String, u64)>,
    ) -> usize {
        self.add(CausalEvent { node, label: label.into(), kind, ts, dur, deps, args })
    }

    /// True when the dependency edges form a DAG (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        for ev in &self.events {
            for &d in &ev.deps {
                if d < n {
                    indegree[d] += 1; // edge ev -> dep (reverse direction is fine for Kahn)
                }
            }
        }
        let mut ready: Vec<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &d in &self.events[i].deps {
                if d < n {
                    indegree[d] -= 1;
                    if indegree[d] == 0 {
                        ready.push(d);
                    }
                }
            }
        }
        seen == n
    }

    /// Distinct nodes contributing hops.
    pub fn node_span(&self) -> usize {
        let mut nodes: Vec<u64> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    fn terminal_index(&self) -> Option<usize> {
        self.terminal.or_else(|| {
            // Fall back to the hop that completed last (smallest index on
            // ties, for determinism).
            self.events
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.done().cmp(&b.done()).then(ib.cmp(ia)))
                .map(|(i, _)| i)
        })
    }

    /// Extracts the critical path: from the terminal hop walk backward,
    /// at each step following the predecessor that completed last
    /// (ties broken toward the smaller index), then emit hops forward
    /// with telescoping durations.
    pub fn critical_path(&self) -> CriticalPath {
        let Some(mut cur) = self.terminal_index() else {
            return CriticalPath::default();
        };
        if !self.is_acyclic() {
            return CriticalPath::default();
        }
        let mut chain = vec![cur];
        loop {
            let ev = &self.events[cur];
            let next = ev
                .deps
                .iter()
                .copied()
                .filter(|&d| d < self.events.len())
                .max_by(|&a, &b| {
                    self.events[a]
                        .done()
                        .cmp(&self.events[b].done())
                        .then(b.cmp(&a))
                });
            match next {
                Some(d) => {
                    chain.push(d);
                    cur = d;
                }
                None => break,
            }
        }
        chain.reverse();
        let root = &self.events[chain[0]];
        let start_ns = root.ts;
        let mut hops = Vec::with_capacity(chain.len());
        let mut prev_done = start_ns;
        for &i in &chain {
            let ev = &self.events[i];
            let until = ev.done().max(prev_done);
            hops.push(PathHop {
                label: ev.label.clone(),
                kind: ev.kind,
                node: ev.node,
                from_ns: prev_done,
                until_ns: until,
                dur_ns: until - prev_done,
            });
            prev_done = until;
        }
        let end_ns = prev_done;
        CriticalPath { hops, start_ns, end_ns, total_ns: end_ns - start_ns }
    }

    /// Renders the graph (events, edges, critical path, acyclicity) as
    /// one deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str(&format!(
            "{{\"epoch\":{},\"group\":{},\"truncated\":{},\"acyclic\":{},\"events\":[",
            self.epoch,
            self.group,
            self.truncated,
            self.is_acyclic()
        ));
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{i},\"node\":{},\"kind\":\"{}\",\"label\":\"{}\",\"ts\":{},\"dur\":{},\"deps\":[",
                ev.node,
                ev.kind.as_str(),
                escape(&ev.label),
                ev.ts,
                ev.dur
            ));
            for (j, d) in ev.deps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&d.to_string());
            }
            out.push_str("],\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", escape(k)));
            }
            out.push_str("}}");
        }
        let cp = self.critical_path();
        out.push_str(&format!(
            "],\"critical_path\":{{\"start_ns\":{},\"end_ns\":{},\"total_ns\":{},\"hops\":[",
            cp.start_ns, cp.end_ns, cp.total_ns
        ));
        for (i, h) in cp.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"kind\":\"{}\",\"node\":{},\"from_ns\":{},\"until_ns\":{},\"dur_ns\":{}}}",
                escape(&h.label),
                h.kind.as_str(),
                h.node,
                h.from_ns,
                h.until_ns,
                h.dur_ns
            ));
        }
        out.push_str("]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn linear_graph() -> CausalGraph {
        let mut g = CausalGraph::new(7, 0);
        let a = g.hop(0, "stage.seal", HopKind::Stage, 100, 50, vec![], vec![]);
        let b = g.hop(0, "replicate", HopKind::Local, 150, 0, vec![a], vec![]);
        let c = g.hop(1, "recv_apply", HopKind::Member, 400, 0, vec![b], vec![]);
        let d = g.hop(0, "ack", HopKind::Link, 600, 0, vec![c], vec![]);
        let e = g.hop(0, "release", HopKind::Local, 650, 0, vec![d], vec![]);
        g.terminal = Some(e);
        g
    }

    #[test]
    fn critical_path_telescopes_to_end_to_end_latency() {
        let g = linear_graph();
        let cp = g.critical_path();
        assert_eq!(cp.hops.len(), 5);
        assert_eq!(cp.start_ns, 100);
        assert_eq!(cp.end_ns, 650);
        assert_eq!(cp.total_ns, 550);
        let sum: u64 = cp.hops.iter().map(|h| h.dur_ns).sum();
        assert_eq!(sum, cp.total_ns, "hop durations must telescope exactly");
        assert_eq!(cp.attributed_ns(HopKind::Member), 250);
        assert_eq!(cp.attributed_ns(HopKind::Link), 200);
    }

    #[test]
    fn critical_path_picks_the_latest_finishing_branch() {
        let mut g = CausalGraph::new(1, 0);
        let seal = g.hop(0, "stage.seal", HopKind::Stage, 0, 10, vec![], vec![]);
        let fast = g.hop(1, "recv_apply", HopKind::Member, 40, 0, vec![seal], vec![]);
        let slow = g.hop(2, "recv_apply", HopKind::Member, 90, 0, vec![seal], vec![]);
        let quorum =
            g.hop(0, "quorum", HopKind::Local, 120, 0, vec![fast, slow], vec![]);
        g.terminal = Some(quorum);
        let cp = g.critical_path();
        let nodes: Vec<u64> = cp.hops.iter().map(|h| h.node).collect();
        assert_eq!(nodes, vec![0, 2, 0], "the slow follower binds the path");
    }

    #[test]
    fn cycles_are_detected_and_yield_an_empty_path() {
        let mut g = linear_graph();
        assert!(g.is_acyclic());
        // Manufacture a cycle: seal depends on release.
        g.events[0].deps.push(4);
        assert!(!g.is_acyclic());
        assert_eq!(g.critical_path(), CriticalPath::default());
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let a = linear_graph().to_json();
        let b = linear_graph().to_json();
        assert_eq!(a, b);
        validate(&a).expect("graph json must be well-formed");
        assert!(a.contains("\"acyclic\":true"));
        assert!(a.contains("\"truncated\":false"));
        assert!(a.contains("\"total_ns\":550"));
    }

    #[test]
    fn node_span_counts_distinct_nodes() {
        assert_eq!(linear_graph().node_span(), 2);
        assert_eq!(CausalGraph::new(0, 0).node_span(), 0);
    }

    #[test]
    fn empty_graph_has_empty_path() {
        let g = CausalGraph::new(3, 1);
        assert!(g.is_acyclic());
        assert_eq!(g.critical_path(), CriticalPath::default());
        validate(&g.to_json()).unwrap();
    }
}
