//! The virtual-time metrics sampler: a deterministic gauge time-series.
//!
//! A [`Sampler`] accepts flat gauge snapshots (`name → u64`) and keeps
//! the ones that land on its virtual-clock period: a row is recorded
//! only when at least `period_ns` has passed since the previous row, so
//! identical runs — which poll at identical virtual times — produce
//! identical series. Rows are stamped with the *poll* time, not the due
//! time, because the poll time is itself deterministic and honest about
//! when the snapshot was actually taken.
//!
//! Alongside the rows the sampler keeps **marks**: labelled instants for
//! discontinuities (a machine reboot) that a consumer must not smooth
//! over. Exporters render the whole series as deterministic JSON (the
//! `timeseries` block of `BENCH_*.json`) and the latest row as
//! Prometheus text exposition (`sls stat --prom`).
//!
//! Like the recorder, the sampler never reads or advances the clock
//! itself — callers pass `now` in — so installing one cannot perturb a
//! run's virtual timeline.

use crate::json::escape;
use std::sync::{Arc, Mutex};

/// One recorded gauge snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Virtual time of the poll that recorded the row, ns.
    pub ts: u64,
    /// Gauge values, sorted by name.
    pub values: Vec<(String, u64)>,
}

#[derive(Default)]
struct State {
    rows: Vec<Sample>,
    marks: Vec<(u64, String)>,
    last_ts: Option<u64>,
}

/// A cloneable handle to one deterministic gauge time-series. All
/// clones share the rows.
#[derive(Clone)]
pub struct Sampler {
    period_ns: u64,
    state: Arc<Mutex<State>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().unwrap();
        write!(f, "Sampler(period {} ns, {} rows)", self.period_ns, s.rows.len())
    }
}

impl Sampler {
    /// Creates a sampler recording at most one row per `period_ns` of
    /// virtual time (clamped to ≥ 1 so timestamps stay strictly
    /// increasing).
    pub fn new(period_ns: u64) -> Self {
        Self { period_ns: period_ns.max(1), state: Arc::new(Mutex::new(State::default())) }
    }

    /// The configured period.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Whether a poll at `now` would record a row.
    pub fn due(&self, now: u64) -> bool {
        match self.state.lock().unwrap().last_ts {
            None => true,
            Some(last) => now >= last.saturating_add(self.period_ns),
        }
    }

    /// Records a row at `now` if the period has elapsed. Returns whether
    /// the row was kept. `values` need not be sorted.
    pub fn record(&self, now: u64, values: Vec<(String, u64)>) -> bool {
        let mut s = self.state.lock().unwrap();
        let due = match s.last_ts {
            None => true,
            Some(last) => now >= last.saturating_add(self.period_ns),
        };
        if !due {
            return false;
        }
        let mut values = values;
        values.sort_by(|a, b| a.0.cmp(&b.0));
        s.rows.push(Sample { ts: now, values });
        s.last_ts = Some(now);
        true
    }

    /// Records a row unconditionally (a final snapshot), unless a row at
    /// this exact or a later timestamp already exists — timestamps stay
    /// strictly increasing.
    pub fn force(&self, now: u64, values: Vec<(String, u64)>) -> bool {
        let mut s = self.state.lock().unwrap();
        if matches!(s.last_ts, Some(last) if last >= now) {
            return false;
        }
        let mut values = values;
        values.sort_by(|a, b| a.0.cmp(&b.0));
        s.rows.push(Sample { ts: now, values });
        s.last_ts = Some(now);
        true
    }

    /// Records a labelled discontinuity (e.g. `machine.reboot`).
    pub fn mark(&self, now: u64, label: &str) {
        self.state.lock().unwrap().marks.push((now, label.to_string()));
    }

    /// Snapshot of the recorded rows, in record order.
    pub fn samples(&self) -> Vec<Sample> {
        self.state.lock().unwrap().rows.clone()
    }

    /// Snapshot of the recorded marks.
    pub fn marks(&self) -> Vec<(u64, String)> {
        self.state.lock().unwrap().marks.clone()
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().rows.len()
    }

    /// True when no row has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the whole series as one deterministic JSON object:
    /// `{"period_ns":…,"samples":[{"ts":…,"values":{…}},…],"marks":[…]}`.
    pub fn series_json(&self) -> String {
        let s = self.state.lock().unwrap();
        let mut out = String::with_capacity(64 + s.rows.len() * 128);
        out.push_str(&format!("{{\"period_ns\":{},\"samples\":[", self.period_ns));
        for (i, row) in s.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"ts\":{},\"values\":{{", row.ts));
            for (j, (k, v)) in row.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(k), v));
            }
            out.push_str("}}");
        }
        out.push_str("],\"marks\":[");
        for (i, (ts, label)) in s.marks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"ts\":{},\"label\":\"{}\"}}", ts, escape(label)));
        }
        out.push_str("]}");
        out
    }

    /// Renders the latest row as Prometheus text exposition. Gauge names
    /// are prefixed with `prefix` and sanitized (`.` and `-` become `_`);
    /// the row's virtual timestamp rides along as its own gauge.
    pub fn prometheus_text(&self, prefix: &str) -> String {
        let s = self.state.lock().unwrap();
        let Some(row) = s.rows.last() else {
            return String::new();
        };
        let mut out = String::with_capacity(64 + row.values.len() * 96);
        let metric = |name: &str| -> String {
            let mut m = String::with_capacity(prefix.len() + name.len() + 1);
            m.push_str(prefix);
            m.push('_');
            for c in name.chars() {
                m.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            m
        };
        let ts_name = metric("virtual_time_ns");
        out.push_str(&format!("# TYPE {ts_name} gauge\n{ts_name} {}\n", row.ts));
        for (k, v) in &row.values {
            let m = metric(k);
            out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn period_gates_rows() {
        let s = Sampler::new(100);
        assert!(s.record(0, vals(&[("g", 1)])));
        assert!(!s.record(50, vals(&[("g", 2)])), "inside the period");
        assert!(s.record(100, vals(&[("g", 3)])));
        assert!(s.record(350, vals(&[("g", 4)])), "late polls still record");
        let rows = s.samples();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().map(|r| r.ts).collect::<Vec<_>>(), vec![0, 100, 350]);
    }

    #[test]
    fn timestamps_strictly_increase_even_under_force() {
        let s = Sampler::new(10);
        s.record(5, vals(&[("g", 1)]));
        assert!(!s.force(5, vals(&[("g", 2)])), "same-instant force dropped");
        assert!(s.force(6, vals(&[("g", 3)])));
        let ts: Vec<u64> = s.samples().iter().map(|r| r.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
    }

    #[test]
    fn values_are_sorted_and_series_json_is_valid() {
        let s = Sampler::new(1);
        s.record(7, vals(&[("z.last", 2), ("a.first", 1)]));
        s.mark(9, "machine.reboot");
        let row = &s.samples()[0];
        assert_eq!(row.values[0].0, "a.first");
        let json = s.series_json();
        crate::json::validate(&json).expect("valid JSON");
        assert!(json.contains("\"period_ns\":1"));
        assert!(json.contains("\"machine.reboot\""));
    }

    #[test]
    fn identical_runs_identical_series() {
        let run = || {
            let s = Sampler::new(50);
            for t in (0..500).step_by(30) {
                s.record(t, vals(&[("x", t / 7), ("y", t * 3)]));
            }
            s.series_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prometheus_text_renders_latest_row() {
        let s = Sampler::new(1);
        assert_eq!(s.prometheus_text("aurora"), "", "empty series renders nothing");
        s.record(10, vals(&[("store.cache_hits", 4)]));
        s.record(20, vals(&[("store.cache_hits", 9)]));
        let text = s.prometheus_text("aurora");
        assert!(text.contains("# TYPE aurora_store_cache_hits gauge"));
        assert!(text.contains("aurora_store_cache_hits 9"));
        assert!(text.contains("aurora_virtual_time_ns 20"));
        assert!(!text.contains("aurora_store_cache_hits 4"), "only the latest row");
    }
}
