//! The crash flight recorder: a bounded ring of recent epoch causal
//! graphs, dumped the moment something goes wrong.
//!
//! Post-mortem debugging of a replicated epoch needs the cross-node
//! story of the last few epochs *at the moment of failure* — after a
//! crash the per-node rings have moved on. The [`FlightRecorder`] is the
//! black box: the cluster pushes each epoch's [`CausalGraph`] in as the
//! quorum watermark passes it, the recorder keeps the last `K`, and a
//! trigger (an online-invariant violation via
//! [`InvariantChecker::on_violation`](crate::InvariantChecker::on_violation),
//! or a `crash_and_reboot`) freezes them into one deterministic JSON
//! dump.
//!
//! Graphs whose contributing rings evicted records while the epoch was
//! live arrive with `truncated: true` and are presented as such — a
//! lossy graph must never masquerade as a complete one.

use crate::causal::CausalGraph;
use crate::json::escape;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default number of epoch graphs retained.
pub const DEFAULT_FLIGHT_CAP: usize = 8;

struct FlightInner {
    cap: usize,
    graphs: VecDeque<CausalGraph>,
    last_dump: Option<String>,
    last_reason: Option<String>,
    dump_count: u64,
}

/// A cloneable handle to one bounded flight-recorder ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAP)
    }
}

impl FlightRecorder {
    /// A recorder retaining the causal graphs of the last `cap` epochs
    /// (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(FlightInner {
                cap: cap.max(1),
                graphs: VecDeque::new(),
                last_dump: None,
                last_reason: None,
                dump_count: 0,
            })),
        }
    }

    /// Records `graph`, replacing any retained graph for the same
    /// `(epoch, group)` and evicting the oldest beyond capacity.
    pub fn record(&self, graph: CausalGraph) {
        let mut st = self.inner.lock().unwrap();
        if let Some(slot) =
            st.graphs.iter_mut().find(|g| g.epoch == graph.epoch && g.group == graph.group)
        {
            *slot = graph;
            return;
        }
        if st.graphs.len() >= st.cap {
            st.graphs.pop_front();
        }
        st.graphs.push_back(graph);
    }

    /// Retained graphs, oldest first.
    pub fn graphs(&self) -> Vec<CausalGraph> {
        self.inner.lock().unwrap().graphs.iter().cloned().collect()
    }

    /// Number of graphs currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().graphs.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().cap
    }

    /// Freezes the retained graphs into a deterministic JSON dump,
    /// stamped with the trigger `reason` and the virtual time `now`.
    /// Returns the dump (also retrievable via [`FlightRecorder::last_dump`]).
    pub fn trigger(&self, reason: &str, now: u64) -> String {
        let mut st = self.inner.lock().unwrap();
        let mut out = String::with_capacity(128 + st.graphs.len() * 256);
        let truncated = st.graphs.iter().any(|g| g.truncated);
        out.push_str(&format!(
            "{{\"reason\":\"{}\",\"at\":{now},\"truncated\":{truncated},\"graphs\":[",
            escape(reason)
        ));
        for (i, g) in st.graphs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&g.to_json());
        }
        out.push_str("]}");
        st.last_dump = Some(out.clone());
        st.last_reason = Some(reason.to_string());
        st.dump_count += 1;
        out
    }

    /// The most recent dump, if any trigger has fired.
    pub fn last_dump(&self) -> Option<String> {
        self.inner.lock().unwrap().last_dump.clone()
    }

    /// The reason of the most recent trigger.
    pub fn last_reason(&self) -> Option<String> {
        self.inner.lock().unwrap().last_reason.clone()
    }

    /// How many times a trigger has fired.
    pub fn dump_count(&self) -> u64 {
        self.inner.lock().unwrap().dump_count
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock().unwrap();
        write!(f, "FlightRecorder({}/{} graphs, {} dumps)", st.graphs.len(), st.cap, st.dump_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{CausalGraph, HopKind};
    use crate::json::validate;

    fn graph(epoch: u64, truncated: bool) -> CausalGraph {
        let mut g = CausalGraph::new(epoch, 0);
        g.truncated = truncated;
        let a = g.hop(0, "stage.seal", HopKind::Stage, epoch * 100, 10, vec![], vec![]);
        let b = g.hop(1, "recv_apply", HopKind::Member, epoch * 100 + 50, 0, vec![a], vec![]);
        g.terminal = Some(b);
        g
    }

    #[test]
    fn ring_is_bounded_and_replaces_same_epoch() {
        let fr = FlightRecorder::new(3);
        for e in 1..=5u64 {
            fr.record(graph(e, false));
        }
        assert_eq!(fr.len(), 3);
        let epochs: Vec<u64> = fr.graphs().iter().map(|g| g.epoch).collect();
        assert_eq!(epochs, vec![3, 4, 5]);
        // Re-recording epoch 4 updates in place, no eviction.
        fr.record(graph(4, true));
        let epochs: Vec<u64> = fr.graphs().iter().map(|g| g.epoch).collect();
        assert_eq!(epochs, vec![3, 4, 5]);
        assert!(fr.graphs()[1].truncated);
    }

    #[test]
    fn trigger_dumps_deterministic_json() {
        let fr = FlightRecorder::new(4);
        fr.record(graph(1, false));
        fr.record(graph(2, false));
        let a = fr.trigger("invariant: epoch monotonicity", 12345);
        let b = fr.trigger("invariant: epoch monotonicity", 12345);
        assert_eq!(a, b);
        validate(&a).expect("dump must be well-formed JSON");
        assert!(a.contains("\"reason\":\"invariant: epoch monotonicity\""));
        assert!(a.contains("\"at\":12345"));
        assert!(a.contains("\"truncated\":false"));
        assert_eq!(fr.dump_count(), 2);
        assert_eq!(fr.last_dump().unwrap(), b);
        assert_eq!(fr.last_reason().unwrap(), "invariant: epoch monotonicity");
    }

    #[test]
    fn lossy_graphs_mark_the_dump_truncated() {
        let fr = FlightRecorder::new(2);
        fr.record(graph(1, false));
        fr.record(graph(2, true));
        let dump = fr.trigger("crash_and_reboot", 99);
        assert!(dump.contains("\"truncated\":true"));
    }

    #[test]
    fn empty_recorder_still_dumps() {
        let fr = FlightRecorder::default();
        assert!(fr.is_empty());
        assert_eq!(fr.capacity(), DEFAULT_FLIGHT_CAP);
        let dump = fr.trigger("probe", 0);
        validate(&dump).unwrap();
        assert!(dump.contains("\"graphs\":[]"));
        assert!(fr.last_dump().is_some());
    }
}
