//! Exporter correctness: Prometheus name sanitization, JSON string
//! escaping in `series_json`, and histogram percentile edge cases.

use aurora_trace::json::validate;
use aurora_trace::{Histogram, Sampler};

fn vals(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

#[test]
fn prometheus_sanitizes_every_non_alphanumeric_byte() {
    let s = Sampler::new(1);
    s.record(
        5,
        vals(&[
            ("store.cache-hit/miss%", 3),
            ("pipeline.g0.stage flush", 7),
            ("frames.résident", 1),
            ("a\"b\\c", 9),
        ]),
    );
    let text = s.prometheus_text("aurora");
    // Dots, dashes, slashes, percent, spaces, quotes, backslashes and
    // non-ASCII all collapse to underscores; the result is a legal
    // Prometheus metric name.
    assert!(text.contains("# TYPE aurora_store_cache_hit_miss_ gauge"));
    assert!(text.contains("aurora_store_cache_hit_miss_ 3"));
    assert!(text.contains("aurora_pipeline_g0_stage_flush 7"));
    assert!(text.contains("aurora_frames_r_sident 1"));
    assert!(text.contains("aurora_a_b_c 9"));
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let name = line.split_whitespace().next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "illegal metric name {name:?}"
        );
    }
}

#[test]
fn prometheus_prefix_is_applied_verbatim() {
    let s = Sampler::new(1);
    s.record(1, vals(&[("g", 2)]));
    let text = s.prometheus_text("sls");
    assert!(text.starts_with("# TYPE sls_virtual_time_ns gauge"));
    assert!(text.contains("sls_g 2"));
}

#[test]
fn series_json_escapes_hostile_gauge_names_and_marks() {
    let s = Sampler::new(1);
    s.record(3, vals(&[("quo\"te", 1), ("back\\slash", 2), ("tab\there", 3), ("ctl\u{1}", 4)]));
    s.mark(4, "line\nbreak \"quoted\"");
    let json = s.series_json();
    validate(&json).expect("escaped output must stay well-formed JSON");
    assert!(json.contains("\"quo\\\"te\":1"));
    assert!(json.contains("\"back\\\\slash\":2"));
    assert!(json.contains("\"tab\\there\":3"));
    assert!(json.contains("\"ctl\\u0001\":4"));
    assert!(json.contains("\"line\\nbreak \\\"quoted\\\"\""));
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let h = Histogram::default();
    assert_eq!(h.count, 0);
    assert_eq!(h.percentile(50), 0);
    assert_eq!(h.percentile(95), 0);
    assert_eq!(h.percentile(99), 0);
    assert_eq!(h.percentile(0), 0);
    assert_eq!(h.percentile(100), 0);
    assert_eq!(h.mean(), 0);
}

#[test]
fn single_sample_histogram_percentiles_cover_the_sample() {
    let mut h = Histogram::default();
    h.record(1000);
    for p in [50, 95, 99, 100] {
        assert!(h.percentile(p) >= 1000, "p{p} below the only sample");
    }
    let mut z = Histogram::default();
    z.record(0);
    assert_eq!(z.percentile(50), 0);
    assert_eq!(z.percentile(99), 0);
}
