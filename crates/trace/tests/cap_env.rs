//! `AURORA_TRACE_CAP` environment-override behavior. One test function
//! (this binary is its own process) so the env mutations never race
//! another test thread.

use aurora_trace::{Trace, DEFAULT_TRACE_CAP, TRACE_CAP_ENV};

#[test]
fn cap_env_override_valid_invalid_and_unset() {
    // Valid override: the ring takes the requested capacity quietly.
    std::env::set_var(TRACE_CAP_ENV, "128");
    let t = Trace::recording(|| 0);
    assert_eq!(t.capacity(), 128);
    assert!(!t.cap_override_invalid());
    assert_eq!(t.event_count(), 0, "no warning event on a valid override");

    // Unparsable override: fall back to the default, but loudly — the
    // handle records a trace.cap_invalid warning carrying the effective
    // capacity and reports the condition for the gauge layer.
    std::env::set_var(TRACE_CAP_ENV, "a-lot");
    let t = Trace::recording(|| 0);
    assert_eq!(t.capacity(), DEFAULT_TRACE_CAP);
    assert!(t.cap_override_invalid());
    let evs = t.events();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].name.as_ref(), "trace.cap_invalid");
    assert_eq!(evs[0].cat, "trace");
    assert_eq!(evs[0].args, vec![("effective_cap", DEFAULT_TRACE_CAP as u64)]);

    // Unset: default capacity, no warning, flag clear.
    std::env::remove_var(TRACE_CAP_ENV);
    let t = Trace::recording(|| 0);
    assert_eq!(t.capacity(), DEFAULT_TRACE_CAP);
    assert!(!t.cap_override_invalid());
    assert_eq!(t.event_count(), 0);

    // Explicit-capacity construction never consults the environment.
    std::env::set_var(TRACE_CAP_ENV, "nonsense");
    let t = Trace::recording_with_cap(|| 0, 9);
    assert_eq!(t.capacity(), 9);
    assert!(!t.cap_override_invalid());
    std::env::remove_var(TRACE_CAP_ENV);
}
