//! Micro-benchmarks: real wall-clock cost of the hot paths of this
//! implementation (as opposed to the virtual-clock experiment harnesses
//! in `src/bin/`). These guard against regressions in the code itself:
//! the checkpoint serializers, the codec, the fault path, the collapse
//! operation, and store commits.
//!
//! The harness is self-contained (`harness = false`): each case runs a
//! warmup batch, then enough iterations to pass a minimum measurement
//! window, and reports mean ns/iter. Run with
//! `cargo bench -p aurora-bench`.

use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_sim::{Decoder, Encoder};
use aurora_vm::{CollapseMode, Prot, Vm, PAGE_SIZE};
use std::hint::black_box;
use std::time::Instant;

/// Measures `iter` on fresh state from `setup`, excluding setup time.
fn bench_batched<S, O>(name: &str, mut setup: impl FnMut() -> S, mut iter: impl FnMut(S) -> O) {
    // Warmup.
    for _ in 0..3 {
        black_box(iter(setup()));
    }
    let mut spent = std::time::Duration::ZERO;
    let mut iters = 0u64;
    while spent.as_millis() < 200 && iters < 10_000 {
        let state = setup();
        let t0 = Instant::now();
        black_box(iter(state));
        spent += t0.elapsed();
        iters += 1;
    }
    report(name, spent, iters);
}

/// Measures `iter` repeatedly against shared state.
fn bench_loop<O>(name: &str, mut iter: impl FnMut() -> O) {
    for _ in 0..10 {
        black_box(iter());
    }
    let t0 = Instant::now();
    let mut iters = 0u64;
    while t0.elapsed().as_millis() < 200 && iters < 1_000_000 {
        black_box(iter());
        iters += 1;
    }
    report(name, t0.elapsed(), iters);
}

fn report(name: &str, spent: std::time::Duration, iters: u64) {
    let per = spent.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name:<40} {per:>12.0} ns/iter   ({iters} iters)");
}

fn bench_codec() {
    let payload = vec![0xABu8; 1024];
    bench_loop("codec/encode_1k_record", || {
        let mut e = Encoder::with_capacity(1100);
        e.record(0x10, 1, |e| {
            e.u64(42);
            e.bytes(&payload);
        });
        e.finish_vec()
    });

    let mut e = Encoder::new();
    e.record(0x10, 1, |enc| {
        enc.u64(42);
        enc.bytes(&vec![0xABu8; 1024]);
    });
    let bytes = e.finish_vec();
    bench_loop("codec/decode_1k_record", || {
        let mut d = Decoder::new(&bytes);
        let (_v, mut body) = d.record(0x10, 1).unwrap();
        (body.u64().unwrap(), body.bytes().unwrap().len())
    });
}

fn bench_vm() {
    bench_batched(
        "vm/write_fault_cow_break",
        || {
            let mut vm = Vm::new();
            let s = vm.create_space();
            let a = vm.mmap_anon(s, 64, Prot::RW).unwrap();
            vm.touch(s, a, 64 * PAGE_SIZE as u64).unwrap();
            vm.system_shadow(&[s]).unwrap();
            (vm, s, a)
        },
        |(mut vm, s, a)| {
            for i in 0..64u64 {
                vm.write(s, a + i * PAGE_SIZE as u64, &[1]).unwrap();
            }
            vm.stats.cow_breaks
        },
    );

    for (name, mode) in [
        ("vm/collapse_reversed", CollapseMode::Reversed),
        ("vm/collapse_forward", CollapseMode::Forward),
    ] {
        bench_batched(
            name,
            || {
                // Base with 512 pages, shadow with 16 dirty pages.
                let mut vm = Vm::new();
                let s = vm.create_space();
                let a = vm.mmap_anon(s, 512, Prot::RW).unwrap();
                vm.touch(s, a, 512 * PAGE_SIZE as u64).unwrap();
                vm.system_shadow(&[s]).unwrap();
                for i in 0..16u64 {
                    vm.write(s, a + i * PAGE_SIZE as u64, &[2]).unwrap();
                }
                vm.system_shadow(&[s]).unwrap();
                let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
                (vm, top)
            },
            |(mut vm, top)| vm.collapse_under(top, mode).unwrap(),
        );
    }
}

fn bench_checkpoint() {
    bench_batched(
        "sls/incremental_checkpoint_64p",
        || {
            let mut w = World::quickstart();
            let pid = w.sls.kernel.spawn("bench");
            let addr = w.dirty_region(pid, 64).unwrap();
            let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
            w.sls.sls_checkpoint(gid).unwrap();
            w.sls.sls_barrier(gid).unwrap();
            w.sls.kernel.mem_touch(pid, addr, 64 * PAGE_SIZE as u64).unwrap();
            (w, gid)
        },
        |(mut w, gid)| {
            let cp = w.sls.sls_checkpoint(gid).unwrap();
            // Exercise the per-stage accounting introduced with the
            // staged pipeline; the sum must be consistent to be useful.
            (cp.pages_flushed, cp.stage_total_ns())
        },
    );
}

fn bench_store() {
    use aurora_objstore::{ObjectKind, ObjectStore, PAGE};
    use aurora_sim::cost::Charge;
    use aurora_sim::{Clock, CostModel};
    use aurora_storage::testbed_array;

    bench_batched(
        "store/write_page_commit_16p",
        || {
            let clock = Clock::new();
            let dev = testbed_array(&clock, 1 << 26);
            let mut s =
                ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 1024).unwrap();
            let oid = s.alloc_oid();
            s.create_object(oid, ObjectKind::Memory).unwrap();
            (s, oid)
        },
        |(mut s, oid)| {
            let page = aurora_objstore::PageRef::detached([7u8; 4096]);
            for pi in 0..16 {
                s.write_page(oid, pi, &page).unwrap();
            }
            s.commit().unwrap().epoch
        },
    );

    bench_batched(
        "store/write_pages_batch_commit_16p",
        || {
            let clock = Clock::new();
            let dev = testbed_array(&clock, 1 << 26);
            let mut s =
                ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 1024).unwrap();
            let oid = s.alloc_oid();
            s.create_object(oid, ObjectKind::Memory).unwrap();
            let pages: Vec<(u64, aurora_objstore::PageRef)> = (0..16)
                .map(|pi| (pi, aurora_objstore::PageRef::detached([7u8; PAGE])))
                .collect();
            (s, oid, pages)
        },
        |(mut s, oid, pages)| {
            s.write_pages(oid, &pages).unwrap();
            s.commit().unwrap().epoch
        },
    );

    let clock = Clock::new();
    let dev = testbed_array(&clock, 1 << 26);
    let mut s = ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 1024).unwrap();
    let j = s.alloc_oid();
    s.create_journal(j, 16 * 1024).unwrap();
    let data = vec![3u8; 4000];
    bench_loop("store/journal_append_4k", || {
        if s.journal_stats(j).unwrap().used + 4100 > s.journal_stats(j).unwrap().capacity {
            s.journal_truncate(j).unwrap();
        }
        s.journal_append(j, &data).unwrap()
    });
}

fn bench_restore() {
    bench_batched(
        "sls/lazy_restore",
        || {
            let mut w = World::quickstart();
            let pid = w.sls.kernel.spawn("bench");
            w.dirty_region(pid, 256).unwrap();
            let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
            w.sls.sls_checkpoint(gid).unwrap();
            w.sls.sls_barrier(gid).unwrap();
            (w, gid)
        },
        |(mut w, gid)| w.sls.sls_restore(gid, None, RestoreMode::Lazy).unwrap().pids.len(),
    );
}

fn main() {
    println!("{:<40} {:>12}", "benchmark", "mean");
    bench_codec();
    bench_vm();
    bench_checkpoint();
    bench_store();
    bench_restore();
}
