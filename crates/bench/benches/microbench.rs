//! Criterion micro-benchmarks: real wall-clock cost of the hot paths of
//! this implementation (as opposed to the virtual-clock experiment
//! harnesses in `src/bin/`). These guard against regressions in the code
//! itself: the checkpoint serializers, the codec, the fault path, the
//! collapse operation, and store commits.

use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_sim::{Decoder, Encoder};
use aurora_vm::{CollapseMode, Prot, Vm, PAGE_SIZE};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    c.bench_function("codec/encode_1k_record", |b| {
        let payload = vec![0xABu8; 1024];
        b.iter(|| {
            let mut e = Encoder::with_capacity(1100);
            e.record(0x10, 1, |e| {
                e.u64(42);
                e.bytes(&payload);
            });
            black_box(e.finish_vec())
        })
    });
    c.bench_function("codec/decode_1k_record", |b| {
        let mut e = Encoder::new();
        e.record(0x10, 1, |enc| {
            enc.u64(42);
            enc.bytes(&vec![0xABu8; 1024]);
        });
        let bytes = e.finish_vec();
        b.iter(|| {
            let mut d = Decoder::new(&bytes);
            let (_v, mut body) = d.record(0x10, 1).unwrap();
            black_box((body.u64().unwrap(), body.bytes().unwrap().len()))
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    c.bench_function("vm/write_fault_cow_break", |b| {
        b.iter_batched(
            || {
                let mut vm = Vm::new();
                let s = vm.create_space();
                let a = vm.mmap_anon(s, 64, Prot::RW).unwrap();
                vm.touch(s, a, 64 * PAGE_SIZE as u64).unwrap();
                vm.system_shadow(&[s]).unwrap();
                (vm, s, a)
            },
            |(mut vm, s, a)| {
                for i in 0..64u64 {
                    vm.write(s, a + i * PAGE_SIZE as u64, &[1]).unwrap();
                }
                black_box(vm.stats.cow_breaks)
            },
            BatchSize::SmallInput,
        )
    });

    for (name, mode) in
        [("vm/collapse_reversed", CollapseMode::Reversed), ("vm/collapse_forward", CollapseMode::Forward)]
    {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    // Base with 512 pages, shadow with 16 dirty pages.
                    let mut vm = Vm::new();
                    let s = vm.create_space();
                    let a = vm.mmap_anon(s, 512, Prot::RW).unwrap();
                    vm.touch(s, a, 512 * PAGE_SIZE as u64).unwrap();
                    vm.system_shadow(&[s]).unwrap();
                    for i in 0..16u64 {
                        vm.write(s, a + i * PAGE_SIZE as u64, &[2]).unwrap();
                    }
                    vm.system_shadow(&[s]).unwrap();
                    let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
                    (vm, top)
                },
                |(mut vm, top)| black_box(vm.collapse_under(top, mode).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_checkpoint(c: &mut Criterion) {
    c.bench_function("sls/incremental_checkpoint_64p", |b| {
        b.iter_batched(
            || {
                let mut w = World::quickstart();
                let pid = w.sls.kernel.spawn("bench");
                let addr = w.dirty_region(pid, 64).unwrap();
                let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
                w.sls.sls_checkpoint(gid).unwrap();
                w.sls.sls_barrier(gid).unwrap();
                w.sls.kernel.mem_touch(pid, addr, 64 * PAGE_SIZE as u64).unwrap();
                (w, gid)
            },
            |(mut w, gid)| black_box(w.sls.sls_checkpoint(gid).unwrap().pages_flushed),
            BatchSize::SmallInput,
        )
    });
}

fn bench_store(c: &mut Criterion) {
    use aurora_objstore::{ObjectKind, ObjectStore};
    use aurora_sim::cost::Charge;
    use aurora_sim::{Clock, CostModel};
    use aurora_storage::testbed_array;

    c.bench_function("store/write_page_commit_16p", |b| {
        b.iter_batched(
            || {
                let clock = Clock::new();
                let dev = testbed_array(&clock, 1 << 26);
                let mut s =
                    ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 1024)
                        .unwrap();
                let oid = s.alloc_oid();
                s.create_object(oid, ObjectKind::Memory).unwrap();
                (s, oid)
            },
            |(mut s, oid)| {
                let page = [7u8; 4096];
                for pi in 0..16 {
                    s.write_page(oid, pi, &page).unwrap();
                }
                black_box(s.commit().unwrap().epoch)
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("store/journal_append_4k", |b| {
        let clock = Clock::new();
        let dev = testbed_array(&clock, 1 << 26);
        let mut s =
            ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 1024).unwrap();
        let j = s.alloc_oid();
        s.create_journal(j, 16 * 1024).unwrap();
        let data = vec![3u8; 4000];
        b.iter(|| {
            if s.journal_stats(j).unwrap().used + 4100 > s.journal_stats(j).unwrap().capacity {
                s.journal_truncate(j).unwrap();
            }
            black_box(s.journal_append(j, &data).unwrap())
        })
    });
}

fn bench_restore(c: &mut Criterion) {
    use aurora_core::RestoreMode;
    c.bench_function("sls/lazy_restore", |b| {
        b.iter_batched(
            || {
                let mut w = World::quickstart();
                let pid = w.sls.kernel.spawn("bench");
                w.dirty_region(pid, 256).unwrap();
                let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
                w.sls.sls_checkpoint(gid).unwrap();
                w.sls.sls_barrier(gid).unwrap();
                (w, gid)
            },
            |(mut w, gid)| {
                black_box(w.sls.sls_restore(gid, None, RestoreMode::Lazy).unwrap().pids.len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_codec, bench_vm, bench_checkpoint, bench_store, bench_restore);
criterion_main!(benches);
