//! Thin wrapper over [`aurora_bench::suite::table5_memory_objects`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::table5_memory_objects::run);
}
