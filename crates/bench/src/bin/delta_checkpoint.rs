//! Thin wrapper over [`aurora_bench::suite::delta_checkpoint`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::delta_checkpoint::run);
}
