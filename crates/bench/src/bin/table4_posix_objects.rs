//! Thin wrapper over [`aurora_bench::suite::table4_posix_objects`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::table4_posix_objects::run);
}
