//! Thin wrapper over [`aurora_bench::suite::fig6_rocksdb`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::fig6_rocksdb::run);
}
