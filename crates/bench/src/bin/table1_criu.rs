//! Table 1: a breakdown of CRIU's checkpointing overheads for a 500 MB
//! Redis process (the paper's motivating measurement, §2).
//!
//! Paper reference: OS state copy 49 ms, memory copy 413 ms, total stop
//! time 462 ms, IO write 350 ms.

use aurora_apps::redis::Redis;
use aurora_bench::{header, row};
use aurora_criu::{criu_dump, CriuCosts};
use aurora_posix::Kernel;
use aurora_sim::units::{fmt_ns, MIB};

fn main() {
    const DATASET: u64 = 500 * MIB;
    println!("Populating a 500 MiB Redis instance…");
    let mut k = Kernel::boot();
    let mut redis = Redis::launch(&mut k, DATASET / 4096 + 4096).unwrap();
    redis.populate(&mut k, DATASET).unwrap();

    let (stats, image) = criu_dump(&mut k, redis.pid, &CriuCosts::default()).unwrap();

    header("Table 1: CRIU checkpoint breakdown (500 MB Redis)", &["type", "CRIU", "(paper)"]);
    row(&["OS state copy".into(), fmt_ns(stats.os_state_ns), fmt_ns(49_000_000)]);
    row(&["Memory copy".into(), fmt_ns(stats.memory_copy_ns), fmt_ns(413_000_000)]);
    row(&["Total stop time".into(), fmt_ns(stats.total_stop_ns), fmt_ns(462_000_000)]);
    row(&["IO write".into(), fmt_ns(stats.io_write_ns), fmt_ns(350_000_000)]);
    println!(
        "\nImage: {} MiB across {} process(es); {} objects required sharing inference.",
        image.bytes / MIB,
        stats.procs,
        stats.inferred_objects
    );
    println!(
        "Shape checks: memory copy ≫ OS state; the application is stopped for\n\
         the entire copy; the write happens after, unsynchronized."
    );
}
