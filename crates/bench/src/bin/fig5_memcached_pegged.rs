//! Figure 5: Memcached latency with throughput pegged at 120 k ops/s
//! (15% of peak) over varying checkpoint periods — the worst case for
//! transparent persistence, where checkpoint stalls dominate instead of
//! hiding behind network queueing.
//!
//! Paper shape: baseline average 157 µs; with persistence the average
//! rises to ~600 µs even at a 100 ms period, and the 95th percentile is
//! far above the average (requests caught behind a stop).

use aurora_bench::memcached_sim::{run, sweep, McSimConfig};
use aurora_bench::{header, row};
use aurora_sim::units::{fmt_ns, fmt_ops, MS};

fn main() {
    header(
        "Figure 5: Memcached latency at a pegged 120k ops/s",
        &["period", "throughput", "avg lat", "p95 lat", "ckpts"],
    );
    for (label, period) in sweep() {
        let r = run(McSimConfig {
            period_ns: period,
            duration_ns: 400 * MS,
            offered_ops_per_sec: Some(120_000),
            seed: 2,
        });
        row(&[
            label,
            fmt_ops(r.throughput),
            fmt_ns(r.avg_ns),
            fmt_ns(r.p95_ns),
            r.checkpoints.to_string(),
        ]);
    }
    println!(
        "\n(paper: baseline avg 157 µs; persistence adds latency at every\n\
         period — more at shorter periods — and inflates the tail)"
    );
}
