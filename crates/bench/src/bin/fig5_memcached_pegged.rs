//! Thin wrapper over [`aurora_bench::suite::fig5_memcached_pegged`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::fig5_memcached_pegged::run);
}
