//! Thin wrapper over [`aurora_bench::suite::trace_overhead`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::trace_overhead::run);
}
