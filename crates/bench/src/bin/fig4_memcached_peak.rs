//! Thin wrapper over [`aurora_bench::suite::fig4_memcached_peak`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::fig4_memcached_peak::run);
}
