//! Figure 4: Memcached at max throughput over varying checkpoint
//! periods — throughput and latency vs the no-persistence baseline.
//!
//! Paper shape: baseline just above 1M ops/s; transparent persistence at
//! a 10 ms period roughly halves throughput and multiplies latency;
//! both recover as the period grows (fewer checkpoints per second).

use aurora_bench::memcached_sim::{run, sweep, McSimConfig};
use aurora_bench::{header, row};
use aurora_sim::units::{fmt_ns, fmt_ops, MS};

fn main() {
    header(
        "Figure 4: Memcached max throughput vs checkpoint period",
        &["period", "throughput", "avg lat", "p95 lat", "ckpts"],
    );
    for (label, period) in sweep() {
        let r = run(McSimConfig {
            period_ns: period,
            duration_ns: 400 * MS,
            offered_ops_per_sec: None,
            seed: 1,
        });
        row(&[
            label,
            fmt_ops(r.throughput),
            fmt_ns(r.avg_ns),
            fmt_ns(r.p95_ns),
            r.checkpoints.to_string(),
        ]);
    }
    println!(
        "\n(paper: baseline ~1.05M ops/s; with Aurora ~0.5M at 10 ms rising\n\
         toward baseline as the period grows; latency falls with period)"
    );
}
