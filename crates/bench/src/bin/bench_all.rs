//! Runs every benchmark in the suite and writes a machine-readable
//! `BENCH_<name>.json` next to each printed table. Set
//! `AURORA_BENCH_QUICK=1` for smoke-test sizes (CI), and pass `--out DIR`
//! to redirect the JSON files.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| ".".to_string());
    if aurora_bench::quick() {
        eprintln!("AURORA_BENCH_QUICK set: running shrunken smoke-test sizes");
    }
    for (name, run) in aurora_bench::suite::all() {
        eprintln!("\n##### {name}");
        let report = run();
        let path = format!("{out_dir}/BENCH_{name}.json");
        aurora_bench::write_report(&report, &path);
    }
}
