//! Figure 3: FileBench microbenchmarks comparing the Aurora file system
//! (checkpoint consistency over the COW object store) to ZFS (with and
//! without checksumming) and FFS (SU+J).
//!
//! (a) 64 KiB random/sequential write throughput, (b) 4 KiB ditto,
//! (c) createfiles and write+fsync ops/s, (d) fileserver / varmail /
//! webserver ops/s.

use aurora_bench::{header, row};
use aurora_fs::aurora::AuroraFs;
use aurora_fs::ffs_model::FfsModel;
use aurora_fs::zfs_model::ZfsModel;
use aurora_fs::SimFs;
use aurora_workloads::filebench;
use aurora_sim::units::{KIB, MIB};

const DEV_BYTES: u64 = 2 << 30;

fn all_fs() -> Vec<Box<dyn SimFs>> {
    vec![
        Box::new(ZfsModel::testbed(DEV_BYTES, false)),
        Box::new(ZfsModel::testbed(DEV_BYTES, true)),
        Box::new(FfsModel::testbed(DEV_BYTES)),
        Box::new(AuroraFs::testbed(DEV_BYTES).unwrap()),
    ]
}

fn main() {
    // (a) + (b): write throughput.
    for (block, label, total) in [(64 * KIB, "64 KiB", 512 * MIB), (4 * KIB, "4 KiB", 128 * MIB)] {
        header(
            &format!("Figure 3 ({label} writes): throughput GiB/s"),
            &["fs", "random", "sequential"],
        );
        for mut fs in all_fs() {
            let rand = filebench::write_bench(fs.as_mut(), block, total, true, 11).unwrap();
            let mut fs2 = rebuild(&fs.label());
            let seq = filebench::write_bench(fs2.as_mut(), block, total, false, 11).unwrap();
            row(&[
                fs.label(),
                format!("{:.2}", rand.gib_per_sec()),
                format!("{:.2}", seq.gib_per_sec()),
            ]);
        }
    }
    println!(
        "(paper 3a, sequential: ZFS ~4.5, ZFS+CSUM ~4, FFS ~6.5, Aurora ~7 GiB/s;\n\
         3b: FFS leads on 4 KiB thanks to fragments, ZFS trails)"
    );

    // (c): metadata operations.
    header(
        "Figure 3(c): file system operations (kops/s)",
        &["fs", "createfiles", "fsync 4 KiB", "fsync 64 KiB"],
    );
    for name in ["ZFS", "ZFS+CSUM", "FFS", "Aurora"] {
        let mut f1 = rebuild(name);
        let create = filebench::createfiles(f1.as_mut(), 20_000).unwrap();
        let mut f2 = rebuild(name);
        let fs4 = filebench::fsync_bench(f2.as_mut(), 4 * KIB, 5_000).unwrap();
        let mut f3 = rebuild(name);
        let fs64 = filebench::fsync_bench(f3.as_mut(), 64 * KIB, 5_000).unwrap();
        row(&[
            name.to_string(),
            format!("{:.0}k", create.ops_per_sec() / 1e3),
            format!("{:.0}k", fs4.ops_per_sec() / 1e3),
            format!("{:.0}k", fs64.ops_per_sec() / 1e3),
        ]);
    }
    println!(
        "(paper: Aurora's createfiles is unoptimized — a global lock — but its\n\
         fsync is a no-op under checkpoint consistency and leads both columns)"
    );

    // (d): simulated applications.
    header(
        "Figure 3(d): simulated applications (kops/s)",
        &["fs", "fileserver", "varmail", "webserver"],
    );
    for name in ["ZFS", "ZFS+CSUM", "FFS", "Aurora"] {
        let mut f1 = rebuild(name);
        let fsrv = filebench::fileserver(f1.as_mut(), 100, 2_000, 3).unwrap();
        let mut f2 = rebuild(name);
        let vm = filebench::varmail(f2.as_mut(), 100, 4_000, 3).unwrap();
        let mut f3 = rebuild(name);
        let web = filebench::webserver(f3.as_mut(), 100, 1_000, 3).unwrap();
        row(&[
            name.to_string(),
            format!("{:.0}k", fsrv.ops_per_sec() / 1e3),
            format!("{:.0}k", vm.ops_per_sec() / 1e3),
            format!("{:.0}k", web.ops_per_sec() / 1e3),
        ]);
    }
    println!(
        "(paper: comparable on fileserver/webserver; Aurora wins varmail\n\
         outright because varmail is fsync-bound and fsync is a no-op)"
    );
}

fn rebuild(label: &str) -> Box<dyn SimFs> {
    match label {
        "ZFS" => Box::new(ZfsModel::testbed(DEV_BYTES, false)),
        "ZFS+CSUM" => Box::new(ZfsModel::testbed(DEV_BYTES, true)),
        "FFS" => Box::new(FfsModel::testbed(DEV_BYTES)),
        "Aurora" => Box::new(AuroraFs::testbed(DEV_BYTES).unwrap()),
        other => panic!("unknown fs {other}"),
    }
}
