//! Thin wrapper over [`aurora_bench::suite::table7_aurora_vs_criu`]; supports
//! `--json [PATH]` for machine-readable export.

fn main() {
    aurora_bench::bench_main(aurora_bench::suite::table7_aurora_vs_criu::run);
}
