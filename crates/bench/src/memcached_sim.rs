//! The Memcached experiment driver (Figures 4 and 5): a closed- or
//! open-loop client population over the *real* server + SLS, on the
//! shared virtual clock.
//!
//! The network contributes a fixed one-way latency; the server's 12
//! worker threads are modelled as one pipeline whose aggregate service
//! rate is [`aurora_apps::memcached::SERVICE_NS`] per op. Checkpoints run
//! for real: their stop time stalls the pipeline and their system
//! shadows make subsequent writes COW-fault — the two overheads the
//! figures measure. The paper's evaluation ran without external
//! synchrony (§8 Limitations), and so does this harness.

use aurora_apps::memcached::Memcached;
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_sim::units::{MS, SEC};
use aurora_sim::Histogram;
use aurora_vm::CollapseMode;
use aurora_workloads::mutilate::{McOp, Mutilate, MutilateConfig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One-way client↔server latency (10 GbE + kernel network stack).
pub const NET_ONE_WAY_NS: u64 = 40_000;

/// Experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct McSimConfig {
    /// Checkpoint period; `None` runs the no-persistence baseline.
    pub period_ns: Option<u64>,
    /// Virtual duration of the measured run.
    pub duration_ns: u64,
    /// Open-loop offered load in ops/s; `None` = closed loop (peak).
    pub offered_ops_per_sec: Option<u64>,
    /// RNG seed.
    pub seed: u64,
}

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct McSimResult {
    /// Completed operations per second.
    pub throughput: f64,
    /// Mean latency, ns.
    pub avg_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// Runs one configuration.
pub fn run(cfg: McSimConfig) -> McSimResult {
    let mut w = World::with_store_bytes(2 << 30);
    let mut mc = Memcached::launch(&mut w.sls.kernel, 64 * 1024, 12).unwrap();
    let mut gen = Mutilate::new(MutilateConfig { seed: cfg.seed, ..MutilateConfig::default() });

    // Preload the working set so GETs hit.
    for _ in 0..20_000 {
        if let McOp::Set { key, value_len } = gen.next_op() {
            mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
        } else if let McOp::Get { key } = gen.next_op() {
            mc.set(&mut w.sls.kernel, &key, b"warm").unwrap();
        }
    }

    let gid = cfg.period_ns.map(|p| {
        let gid = w
            .sls
            .attach(
                mc.pid,
                SlsOptions {
                    period_ns: p,
                    external_synchrony: false, // §8: not used in the eval
                    collapse_mode: CollapseMode::Reversed,
                },
            )
            .unwrap();
        // The attach checkpoint (full) happens before the measurement.
        w.sls.sls_checkpoint(gid).unwrap();
        w.sls.sls_barrier(gid).unwrap();
        gid
    });

    let t0 = w.clock.now();
    let deadline = t0 + cfg.duration_ns;
    let mut next_ckpt = cfg.period_ns.map(|p| t0 + p);
    let mut checkpoints = 0u64;
    let mut lat = Histogram::new();
    let mut completed = 0u64;

    // The pending-request queue: (client send time, connection id).
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let conns = MutilateConfig::default().connections();
    match cfg.offered_ops_per_sec {
        None => {
            for c in 0..conns {
                queue.push(Reverse((t0, c)));
            }
        }
        Some(rate) => {
            // Pre-schedule the open-loop arrivals, round-robin over
            // connections.
            let gap = SEC / rate;
            let mut t = t0;
            let mut c = 0;
            while t < deadline {
                queue.push(Reverse((t, c % conns)));
                t += gap;
                c += 1;
            }
        }
    }

    while let Some(Reverse((send_time, conn))) = queue.pop() {
        if send_time >= deadline {
            break;
        }
        // Periodic checkpoints fire as virtual time crosses boundaries.
        if let (Some(p), Some(gid)) = (cfg.period_ns, gid) {
            let boundary = next_ckpt.expect("set with period");
            if w.clock.now() >= boundary {
                w.sls.sls_checkpoint(gid).unwrap();
                checkpoints += 1;
                let now = w.clock.now();
                next_ckpt = Some(boundary.max(now - now % p) + p);
            }
        }
        let arrival = send_time + NET_ONE_WAY_NS;
        w.clock.advance_to(arrival); // idle server waits for work
        match gen.next_op() {
            McOp::Get { key } => {
                mc.get(&mut w.sls.kernel, &key).unwrap();
            }
            McOp::Set { key, value_len } => {
                mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
            }
        }
        let done = w.clock.now();
        let latency = done + NET_ONE_WAY_NS - send_time;
        lat.record(latency);
        completed += 1;
        if cfg.offered_ops_per_sec.is_none() {
            // Closed loop: the client sends again on receipt.
            queue.push(Reverse((done + 2 * NET_ONE_WAY_NS, conn)));
        }
    }

    let elapsed = (w.clock.now().max(t0 + 1) - t0) as f64 / SEC as f64;
    McSimResult {
        throughput: completed as f64 / elapsed,
        avg_ns: lat.mean() as u64,
        p95_ns: lat.percentile(95.0),
        checkpoints,
    }
}

/// The checkpoint periods swept by Figures 4 and 5 (ms).
pub const PERIODS_MS: [u64; 6] = [10, 20, 40, 60, 80, 100];

/// Convenience: periods as ns options plus the baseline.
pub fn sweep() -> Vec<(String, Option<u64>)> {
    let mut v = vec![("baseline".to_string(), None)];
    for p in PERIODS_MS {
        v.push((format!("{p} ms"), Some(p * MS)));
    }
    v
}
