//! Shared helpers for the experiment harnesses.
//!
//! Every table and figure of the paper has one binary under `src/bin/`;
//! run them with `cargo run -p aurora-bench --bin <name>` (release mode
//! recommended). Each prints the paper's reference numbers next to the
//! reproduction's, so the *shape* comparison is immediate.
//!
//! The actual experiment logic lives in [`suite`]; the binaries are thin
//! wrappers over [`bench_main`], which adds `--json [PATH]` to every one
//! of them (machine-readable `BENCH_<name>.json` export). The `bench_all`
//! binary runs the whole suite and writes every report. Set
//! `AURORA_BENCH_QUICK=1` to shrink workload sizes for smoke runs.

pub mod memcached_sim;
pub mod suite;

use aurora_sim::stats::summarize_runs;

/// True when `AURORA_BENCH_QUICK` asks for shrunken smoke-test sizes.
pub fn quick() -> bool {
    std::env::var("AURORA_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// One named measurement of a benchmark: `group` scopes it (a table row,
/// a configuration), `name` says what was measured, `value` is the raw
/// number (ns, ops/s, pages — the name carries the unit).
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub group: String,
    pub name: String,
    pub value: f64,
}

/// Frame-arena gauges at the end of a benchmark run, exported as the
/// report's `frames` block: how much page sharing the unified COW frame
/// arena achieved (resident frames, frames with refcount ≥ 2, COW copies
/// broken by writes, and sharing observed during the last system-shadow
/// checkpoint, right after its flush stage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameBlock {
    pub resident: u64,
    pub shared: u64,
    pub copies_broken: u64,
    pub shared_at_checkpoint: u64,
}

/// A machine-readable benchmark result: everything the printed table
/// shows, as raw numbers.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Benchmark name (`table5_memory_objects`, …) — the `BENCH_<name>`
    /// stem of the exported file.
    pub name: String,
    pub metrics: Vec<Metric>,
    /// Frame-arena gauges, when the benchmark exercises the arena.
    pub frames: Option<FrameBlock>,
    /// Pre-rendered virtual-time series
    /// ([`aurora_trace::Sampler::series_json`]), spliced verbatim into
    /// the report's `timeseries` key.
    pub timeseries: Option<String>,
    /// Named latency histograms merged across the benchmark's runs,
    /// summarized into the report's `histograms` block.
    pub histograms: Vec<(String, aurora_trace::Histogram)>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new(name: &str) -> Self {
        Self::default().named(name)
    }

    fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Records one measurement.
    pub fn push(&mut self, group: impl Into<String>, name: impl Into<String>, value: f64) {
        self.metrics.push(Metric { group: group.into(), name: name.into(), value });
    }

    /// Attaches the frame-arena gauge snapshot.
    pub fn set_frames(&mut self, frames: FrameBlock) {
        self.frames = Some(frames);
    }

    /// Attaches a virtual-time metrics series (the sampler's
    /// deterministic JSON). Panics on malformed JSON — the string is
    /// spliced into the report verbatim.
    pub fn set_timeseries(&mut self, series_json: String) {
        aurora_trace::json::validate(&series_json)
            .unwrap_or_else(|e| panic!("timeseries block is not valid JSON: {e}"));
        self.timeseries = Some(series_json);
    }

    /// Merges `h` into the named histogram (creating it on first use) —
    /// per-run histograms accumulate via [`aurora_trace::Histogram::merge`].
    pub fn merge_histogram(&mut self, name: &str, h: &aurora_trace::Histogram) {
        if h.count == 0 {
            return;
        }
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, have)) => have.merge(h),
            None => self.histograms.push((name.to_string(), h.clone())),
        }
    }

    /// Serializes the report as deterministic JSON (insertion order, no
    /// wall-clock timestamps — two identical runs produce identical
    /// bytes).
    pub fn to_json(&self) -> String {
        use aurora_trace::json::escape;
        let mut out = String::with_capacity(256 + self.metrics.len() * 64);
        out.push_str("{\"bench\":\"");
        out.push_str(&escape(&self.name));
        out.push_str("\",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = if m.value.is_finite() { m.value } else { 0.0 };
            out.push_str(&format!(
                "{{\"group\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
                escape(&m.group),
                escape(&m.name),
                v
            ));
        }
        out.push(']');
        if let Some(f) = &self.frames {
            out.push_str(&format!(
                ",\"frames\":{{\"resident\":{},\"shared\":{},\"copies_broken\":{},\
                 \"shared_at_checkpoint\":{}}}",
                f.resident, f.shared, f.copies_broken, f.shared_at_checkpoint
            ));
        }
        if let Some(ts) = &self.timeseries {
            out.push_str(",\"timeseries\":");
            out.push_str(ts);
        }
        if !self.histograms.is_empty() {
            out.push_str(",\"histograms\":{");
            for (i, (name, h)) in self.histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                     \"p50\":{},\"p95\":{},\"p99\":{}}}",
                    escape(name),
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    h.mean(),
                    h.percentile(50),
                    h.percentile(95),
                    h.percentile(99),
                ));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Writes a report to `path` (the `--json` and `bench_all` export path).
pub fn write_report(report: &BenchReport, path: &str) {
    std::fs::write(path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Entry point for every benchmark binary: runs the suite function and
/// honors `--json [PATH]` (default `BENCH_<name>.json`).
pub fn bench_main(run: fn() -> BenchReport) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report = run();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = match args.get(i + 1) {
            Some(p) if !p.starts_with('-') => p.clone(),
            _ => format!("BENCH_{}.json", report.name),
        };
        write_report(&report, &path);
    }
}

/// Prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    let row = columns.iter().map(|c| format!("{c:>16}")).collect::<Vec<_>>().join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one row of right-aligned cells.
pub fn row(cells: &[String]) {
    println!("{}", cells.iter().map(|c| format!("{c:>16}")).collect::<Vec<_>>().join(" "));
}

/// Formats mean±std over runs using a unit formatter.
pub fn mean_pm(runs: &[f64], fmt: impl Fn(f64) -> String) -> String {
    let s = summarize_runs(runs);
    if runs.len() > 1 && s.stddev > 0.0 {
        format!("{}±{}", fmt(s.mean), fmt(s.stddev))
    } else {
        fmt(s.mean)
    }
}

/// Ratio string (`2.1×`).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.1}×", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pm_formats() {
        let s = mean_pm(&[1.0, 3.0], |v| format!("{v:.1}"));
        assert!(s.contains('±'), "{s}");
        assert_eq!(mean_pm(&[2.0], |v| format!("{v:.0}")), "2");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(4.0, 2.0), "2.0×");
        assert_eq!(ratio(1.0, 0.0), "∞");
    }
}
