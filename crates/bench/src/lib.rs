//! Shared helpers for the experiment harnesses.
//!
//! Every table and figure of the paper has one binary under `src/bin/`;
//! run them with `cargo run -p aurora-bench --bin <name>` (release mode
//! recommended). Each prints the paper's reference numbers next to the
//! reproduction's, so the *shape* comparison is immediate.

pub mod memcached_sim;

use aurora_sim::stats::summarize_runs;

/// Prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    let row = columns.iter().map(|c| format!("{c:>16}")).collect::<Vec<_>>().join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one row of right-aligned cells.
pub fn row(cells: &[String]) {
    println!("{}", cells.iter().map(|c| format!("{c:>16}")).collect::<Vec<_>>().join(" "));
}

/// Formats mean±std over runs using a unit formatter.
pub fn mean_pm(runs: &[f64], fmt: impl Fn(f64) -> String) -> String {
    let s = summarize_runs(runs);
    if runs.len() > 1 && s.stddev > 0.0 {
        format!("{}±{}", fmt(s.mean), fmt(s.stddev))
    } else {
        fmt(s.mean)
    }
}

/// Ratio string (`2.1×`).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.1}×", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pm_formats() {
        let s = mean_pm(&[1.0, 3.0], |v| format!("{v:.1}"));
        assert!(s.contains('±'), "{s}");
        assert_eq!(mean_pm(&[2.0], |v| format!("{v:.0}")), "2");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(4.0, 2.0), "2.0×");
        assert_eq!(ratio(1.0, 0.0), "∞");
    }
}
