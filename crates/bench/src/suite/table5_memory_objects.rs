//! Table 5: checkpoint stop times for userspace data objects by dirty
//! size, for the three Aurora modes — incremental (full-app) checkpoints,
//! atomic region checkpoints (`sls_memckpt`), and synchronous journaling
//! (`sls_journal`).
//!
//! Paper reference (stop time): 4 KiB → 185 µs / 80 µs / 28 µs;
//! 64 MiB → 600 µs / 492 µs / 25.9 ms; 1 GiB → 6.1 ms / 6.3 ms / 417 ms.

use crate::{header, row, BenchReport, FrameBlock};
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_sim::units::{fmt_bytes, fmt_ns, GIB, KIB, MIB};
use aurora_vm::PAGE_SIZE;

fn incremental_stop(size: u64) -> (u64, FrameBlock, aurora_trace::Trace, aurora_trace::Sampler) {
    let mut w = World::with_store_bytes(3 << 30);
    // Arm the observability layer: per-stage latency histograms via the
    // trace, gauge rows via the sampler. Recording never advances the
    // virtual clock, so the measured stop times are unchanged.
    let trace = w.enable_tracing();
    let sampler = w.enable_sampling(1_000);
    let pid = w.sls.kernel.spawn("table5");
    let pages = (size / PAGE_SIZE as u64).max(1);
    let addr = w.dirty_region(pid, pages).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    // Reach steady state: full checkpoint, then a quiet incremental.
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    // Dirty exactly `size` bytes, then measure the incremental stop.
    w.sls.kernel.mem_touch(pid, addr, pages * PAGE_SIZE as u64).unwrap();
    let stats = w.sls.sls_checkpoint(gid).unwrap();
    let g = w.sls.frame_gauges();
    let frames = FrameBlock {
        resident: g.resident,
        shared: g.shared,
        copies_broken: g.copies_broken,
        shared_at_checkpoint: stats.shared_frames,
    };
    (stats.stop_time_ns, frames, trace, sampler)
}

fn atomic_stop(size: u64) -> u64 {
    let mut w = World::with_store_bytes(3 << 30);
    let pid = w.sls.kernel.spawn("table5");
    let pages = (size / PAGE_SIZE as u64).max(1);
    let addr = w.dirty_region(pid, pages).unwrap();
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    w.sls.kernel.mem_touch(pid, addr, pages * PAGE_SIZE as u64).unwrap();
    let stats = w.sls.sls_memckpt(gid, pid, addr).unwrap();
    stats.stop_time_ns
}

fn journaled_time(size: u64) -> u64 {
    let mut w = World::with_store_bytes(3 << 30);
    let blocks = (size / PAGE_SIZE as u64 + 16).max(32);
    let j = w.sls.sls_journal_create(blocks).unwrap();
    let data = vec![0x5Au8; size as usize];
    let t0 = w.clock.now();
    w.sls.sls_journal(j, &data).unwrap();
    w.clock.now() - t0
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("table5_memory_objects");
    let all_sizes = [
        4 * KIB,
        16 * KIB,
        64 * KIB,
        256 * KIB,
        MIB,
        4 * MIB,
        16 * MIB,
        64 * MIB,
        256 * MIB,
        GIB,
    ];
    // Paper's Table 5 for reference, ns.
    let paper: [(u64, u64, u64); 10] = [
        (185_000, 80_000, 28_000),
        (185_000, 83_000, 32_000),
        (183_000, 74_000, 55_000),
        (186_000, 81_000, 121_000),
        (186_000, 72_000, 443_000),
        (226_000, 114_000, 1_800_000),
        (304_000, 184_000, 6_600_000),
        (600_000, 492_000, 25_900_000),
        (1_900_000, 1_600_000, 104_700_000),
        (6_100_000, 6_300_000, 417_200_000),
    ];
    // Quick mode stops at 4 MiB — the large sizes dominate wall time.
    let sizes = if crate::quick() { &all_sizes[..6] } else { &all_sizes[..] };

    header(
        "Table 5: checkpoint times for userspace data objects",
        &["size", "incremental", "(paper)", "atomic", "(paper)", "journaled", "(paper)"],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let (inc, frames, trace, sampler) = incremental_stop(size);
        // The arena gauges of the largest incremental run go out with the
        // report: how much frame sharing the checkpoint achieved.
        report.set_frames(frames);
        // Stage latencies accumulate across every size into one summary
        // per stage; the time series of the largest run goes out whole.
        for (name, h) in trace.histograms() {
            report.merge_histogram(&name, &h);
        }
        report.set_timeseries(sampler.series_json());
        let atomic = atomic_stop(size);
        let journal = journaled_time(size);
        row(&[
            fmt_bytes(size),
            fmt_ns(inc),
            fmt_ns(paper[i].0),
            fmt_ns(atomic),
            fmt_ns(paper[i].1),
            fmt_ns(journal),
            fmt_ns(paper[i].2),
        ]);
        let group = fmt_bytes(size);
        report.push(group.clone(), "incremental_stop_ns", inc as f64);
        report.push(group.clone(), "atomic_stop_ns", atomic as f64);
        report.push(group, "journaled_ns", journal as f64);
    }
    println!(
        "\nShape checks: incremental flat until ~1 MiB then linear in pages;\n\
         atomic ≈ incremental − fixed barrier; journaled linear in bytes and\n\
         fastest below ~64 KiB."
    );
    report
}
