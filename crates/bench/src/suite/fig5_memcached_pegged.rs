//! Figure 5: Memcached latency with throughput pegged at 120 k ops/s
//! (15% of peak) over varying checkpoint periods — the worst case for
//! transparent persistence, where checkpoint stalls dominate instead of
//! hiding behind network queueing.
//!
//! Paper shape: baseline average 157 µs; with persistence the average
//! rises to ~600 µs even at a 100 ms period, and the 95th percentile is
//! far above the average (requests caught behind a stop).

use crate::memcached_sim::{run as mc_run, sweep, McSimConfig};
use crate::{header, row, BenchReport};
use aurora_sim::units::{fmt_ns, fmt_ops, MS};

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("fig5_memcached_pegged");
    let duration = if crate::quick() { 100 * MS } else { 400 * MS };
    header(
        "Figure 5: Memcached latency at a pegged 120k ops/s",
        &["period", "throughput", "avg lat", "p95 lat", "ckpts"],
    );
    for (label, period) in sweep() {
        let r = mc_run(McSimConfig {
            period_ns: period,
            duration_ns: duration,
            offered_ops_per_sec: Some(120_000),
            seed: 2,
        });
        row(&[
            label.clone(),
            fmt_ops(r.throughput),
            fmt_ns(r.avg_ns),
            fmt_ns(r.p95_ns),
            r.checkpoints.to_string(),
        ]);
        report.push(label.clone(), "throughput_ops_s", r.throughput);
        report.push(label.clone(), "avg_latency_ns", r.avg_ns as f64);
        report.push(label.clone(), "p95_latency_ns", r.p95_ns as f64);
        report.push(label, "checkpoints", r.checkpoints as f64);
    }
    println!(
        "\n(paper: baseline avg 157 µs; persistence adds latency at every\n\
         period — more at shorter periods — and inflates the tail)"
    );
    report
}
