//! Table 6: checkpoint stop times and restore times for popular
//! applications (firefox, mosh, pillow, tomcat, vim), built from the
//! synthetic profiles in `aurora_posix::profiles`.
//!
//! Rows: checkpoint size; stop time for memory-only, full, and
//! incremental checkpoints; restore time from memory, full from disk,
//! and lazy from disk.
//!
//! "Memory" checkpoints/restores use a RAM-speed store device (the paper
//! measures checkpoints not flushed to disk).

use crate::{header, row, BenchReport};
use aurora_core::{AuroraApi, RestoreMode, Sls, SlsOptions};
use aurora_objstore::ObjectStore;
use aurora_posix::profiles::{AppProfile, TABLE6};
use aurora_posix::Kernel;
use aurora_sim::cost::Charge;
use aurora_sim::units::{fmt_bytes, fmt_ns, MIB};
use aurora_sim::{Clock, CostModel};
use aurora_storage::device::{share, BlockDevice};
use aurora_storage::{testbed_array, NvmeDevice, NvmeParams, Raid0};

struct AppNumbers {
    size: u64,
    ckpt_mem: u64,
    ckpt_full: u64,
    ckpt_incr: u64,
    restore_mem: u64,
    restore_full: u64,
    restore_lazy: u64,
}

fn build_sls(profile: &AppProfile, ramdisk: bool) -> (Sls, aurora_core::GroupId, u64) {
    let clock = Clock::new();
    let model = CostModel::default();
    let mut kernel = Kernel::new(clock.clone(), model.clone());
    let pids = profile.build(&mut kernel).unwrap();
    let dev = if ramdisk {
        let devices: Vec<Box<dyn BlockDevice + Send>> = (0..4)
            .map(|_| {
                Box::new(NvmeDevice::new(clock.clone(), NvmeParams::ramdisk(), 1 << 30))
                    as Box<dyn BlockDevice + Send>
            })
            .collect();
        share(Raid0::new(devices, 64 * 1024).expect("ramdisk raid config is valid"))
    } else {
        testbed_array(&clock, 1 << 30)
    };
    let store = ObjectStore::format(dev, Charge::new(clock, model), 64 * 1024).unwrap();
    let mut sls = Sls::new(kernel, store);
    let gid = sls.attach(pids[0], SlsOptions::default()).unwrap();
    let size: u64 = pids
        .iter()
        .map(|&p| {
            let space = sls.kernel.proc(p).unwrap().space;
            sls.kernel.vm.space_resident_pages(space).unwrap() * 4096
        })
        .sum();
    (sls, gid, size)
}

fn run_profile(profile: &AppProfile) -> AppNumbers {
    // Disk-backed: full, incremental, full restore, lazy restore.
    let (mut sls, gid, size) = build_sls(profile, false);
    let full = sls.sls_checkpoint(gid).unwrap();
    sls.sls_barrier(gid).unwrap();
    // Mostly-idle incremental (the paper's lower bound).
    let incr = sls.sls_checkpoint(gid).unwrap();
    sls.sls_barrier(gid).unwrap();
    let r_full = sls.sls_restore(gid, None, RestoreMode::Full).unwrap();
    let r_lazy = sls.sls_restore(gid, None, RestoreMode::Lazy).unwrap();

    // RAM-speed store: memory checkpoint/restore.
    let (mut sls_m, gid_m, _) = build_sls(profile, true);
    let mem = sls_m.sls_checkpoint(gid_m).unwrap();
    sls_m.sls_barrier(gid_m).unwrap();
    sls_m.sls_checkpoint(gid_m).unwrap();
    sls_m.sls_barrier(gid_m).unwrap();
    // A memory restore re-links the still-resident COW objects: no page
    // copying — the lazy path over a RAM-speed store.
    let r_mem = sls_m.sls_restore(gid_m, None, RestoreMode::Lazy).unwrap();

    AppNumbers {
        size,
        ckpt_mem: mem.stop_time_ns,
        ckpt_full: full.stop_time_ns,
        ckpt_incr: incr.stop_time_ns,
        restore_mem: r_mem.elapsed_ns,
        restore_full: r_full.elapsed_ns,
        restore_lazy: r_lazy.elapsed_ns,
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("table6_applications");
    // Paper's Table 6 (ns): per app, (size MiB, mem, full, incr ckpt;
    // mem, full, lazy restore).
    let paper: [(u64, [u64; 6]); 5] = [
        (198, [1_400_000, 1_800_000, 1_900_000, 900_000, 12_400_000, 6_300_000]),
        (24, [400_000, 400_000, 400_000, 200_000, 1_900_000, 900_000]),
        (75, [700_000, 900_000, 600_000, 200_000, 8_200_000, 200_000]),
        (197, [2_700_000, 3_200_000, 2_100_000, 500_000, 33_600_000, 3_100_000]),
        (48, [700_000, 800_000, 700_000, 300_000, 4_100_000, 2_400_000]),
    ];

    header(
        "Table 6: application checkpoint/restore",
        &["app", "size", "ckpt mem", "ckpt full", "ckpt incr", "rst mem", "rst full", "rst lazy"],
    );
    for (i, profile) in TABLE6.iter().enumerate() {
        let n = run_profile(profile);
        row(&[
            profile.name.to_string(),
            fmt_bytes(n.size),
            fmt_ns(n.ckpt_mem),
            fmt_ns(n.ckpt_full),
            fmt_ns(n.ckpt_incr),
            fmt_ns(n.restore_mem),
            fmt_ns(n.restore_full),
            fmt_ns(n.restore_lazy),
        ]);
        let (psize, p) = paper[i];
        row(&[
            "(paper)".into(),
            fmt_bytes(psize * MIB),
            fmt_ns(p[0]),
            fmt_ns(p[1]),
            fmt_ns(p[2]),
            fmt_ns(p[3]),
            fmt_ns(p[4]),
            fmt_ns(p[5]),
        ]);
        report.push(profile.name, "size_bytes", n.size as f64);
        report.push(profile.name, "ckpt_mem_ns", n.ckpt_mem as f64);
        report.push(profile.name, "ckpt_full_ns", n.ckpt_full as f64);
        report.push(profile.name, "ckpt_incr_ns", n.ckpt_incr as f64);
        report.push(profile.name, "restore_mem_ns", n.restore_mem as f64);
        report.push(profile.name, "restore_full_ns", n.restore_full as f64);
        report.push(profile.name, "restore_lazy_ns", n.restore_lazy as f64);
    }
    println!(
        "\nShape checks: stop time tracks OS-state complexity (tomcat, with\n\
         hundreds of entries and 64 threads, is slowest; mosh fastest);\n\
         full restores scale with RSS; lazy restores skip the memory load."
    );
    report
}
