//! Degraded-mode storage: memcached/mutilate traffic over the two-way
//! mirrored testbed in three array states — healthy, one mirror dead,
//! and rebuilding (resilver interleaved with live traffic) — reporting
//! checkpoint latency percentiles and aggregate throughput per state,
//! plus a fault-storm soak (transient EIO burst, latency inflation, and
//! a full mirror death mid-checkpoint) with the online invariant
//! checker armed and a byte-identity check after recovery.

use crate::{header, quick, ratio, row, BenchReport};
use aurora_apps::memcached::Memcached;
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_sim::units::{fmt_ns, MS, SEC};
use aurora_vm::CollapseMode;
use aurora_workloads::mutilate::{McOp, Mutilate, MutilateConfig};
use aurora_storage::faulty::FaultPlan;
use aurora_storage::HealthState;
use aurora_trace::{Histogram, InvariantChecker};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One-way client↔server latency (matches `memcached_sim`).
const NET_ONE_WAY_NS: u64 = 40_000;
const LEAF_BYTES: u64 = 1 << 30;
const PERIOD_NS: u64 = 10 * MS;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Healthy,
    Degraded,
    Rebuilding,
}

struct Outcome {
    throughput: f64,
    ckpt: Histogram,
    checkpoints: u64,
}

/// Closed-loop memcached traffic with periodic checkpoints; per-scenario
/// array state is arranged before the measured window.
fn run_scenario(s: Scenario, duration_ns: u64, preload: usize, seed: u64) -> Outcome {
    let (mut w, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let mut mc = Memcached::launch(&mut w.sls.kernel, 16 * 1024, 12).unwrap();
    let mut gen = Mutilate::new(MutilateConfig { seed, ..MutilateConfig::default() });
    for _ in 0..preload {
        if let McOp::Set { key, value_len } = gen.next_op() {
            mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
        }
    }
    let gid = w
        .sls
        .attach(
            mc.pid,
            SlsOptions {
                period_ns: PERIOD_NS,
                external_synchrony: false, // §8: matches the eval harness
                collapse_mode: CollapseMode::Reversed,
            },
        )
        .unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    match s {
        Scenario::Healthy => {}
        Scenario::Degraded => {
            // One mirror dead for the whole measured window.
            faults[0].kill();
        }
        Scenario::Rebuilding => {
            // Die, miss an epoch of writes, come back stale: the window
            // measures traffic with the resilver running alongside.
            faults[0].kill();
            for _ in 0..200 {
                if let McOp::Set { key, value_len } = gen.next_op() {
                    mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
                }
            }
            w.sls.sls_checkpoint(gid).unwrap();
            faults[0].revive();
            mirror.revive_mirror(0);
        }
    }

    let t0 = w.clock.now();
    let deadline = t0 + duration_ns;
    let mut next_ckpt = t0 + PERIOD_NS;
    let mut ckpt = Histogram::default();
    let mut checkpoints = 0u64;
    let mut completed = 0u64;
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for c in 0..MutilateConfig::default().connections() {
        queue.push(Reverse((t0, c)));
    }
    while let Some(Reverse((send_time, conn))) = queue.pop() {
        if send_time >= deadline {
            break;
        }
        if w.clock.now() >= next_ckpt {
            let before = w.clock.now();
            let cp = w.sls.sls_checkpoint(gid).unwrap();
            assert!(cp.committed(), "scenario checkpoint failed: {:?}", cp.failure);
            ckpt.record(w.clock.now() - before);
            checkpoints += 1;
            let now = w.clock.now();
            next_ckpt = next_ckpt.max(now - now % PERIOD_NS) + PERIOD_NS;
            if s == Scenario::Rebuilding && mirror.rebuild_pending(0) > 0 {
                // The background resilver shares the array with traffic.
                mirror.rebuild_step(0, 64).unwrap();
            }
        }
        w.clock.advance_to(send_time + NET_ONE_WAY_NS);
        match gen.next_op() {
            McOp::Get { key } => {
                mc.get(&mut w.sls.kernel, &key).unwrap();
            }
            McOp::Set { key, value_len } => {
                mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
            }
        }
        completed += 1;
        queue.push(Reverse((w.clock.now() + 2 * NET_ONE_WAY_NS, conn)));
    }
    let elapsed = (w.clock.now().max(t0 + 1) - t0) as f64 / SEC as f64;
    Outcome { throughput: completed as f64 / elapsed, ckpt, checkpoints }
}

struct SoakOutcome {
    checked: u64,
    violations: u64,
    mirrors_identical: bool,
    rebuilt_healthy: bool,
    throughput: f64,
    checkpoints: u64,
    aborted: u64,
}

/// The fault-storm soak: three storms land mid-run — a transient EIO
/// burst on mirror 1, a latency storm on mirror 1, and a full death of
/// mirror 0 armed to fire partway through a checkpoint's flush — while
/// mutilate traffic keeps arriving and the online invariant checker
/// watches every event. Afterwards the dead mirror is revived,
/// resilvered, and scrubbed back to byte identity.
fn run_storm_soak(duration_ns: u64, preload: usize, seed: u64) -> SoakOutcome {
    let (mut w, mirror, faults) = World::with_mirrored_store(LEAF_BYTES);
    let trace = w.enable_tracing();
    let checker = InvariantChecker::arm(&trace);
    let mut mc = Memcached::launch(&mut w.sls.kernel, 16 * 1024, 12).unwrap();
    let mut gen = Mutilate::new(MutilateConfig { seed, ..MutilateConfig::default() });
    for _ in 0..preload {
        if let McOp::Set { key, value_len } = gen.next_op() {
            mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
        }
    }
    let gid = w.sls.attach(mc.pid, SlsOptions { period_ns: PERIOD_NS, ..Default::default() }).unwrap();
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();

    let t0 = w.clock.now();
    let deadline = t0 + duration_ns;
    let storms = [t0 + duration_ns / 10, t0 + (4 * duration_ns) / 10, t0 + (6 * duration_ns) / 10];
    let mut storm_idx = 0usize;
    let mut next_ckpt = t0 + PERIOD_NS;
    let mut checkpoints = 0u64;
    let mut aborted = 0u64;
    let mut completed = 0u64;
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for c in 0..MutilateConfig::default().connections() {
        queue.push(Reverse((t0, c)));
    }
    while let Some(Reverse((send_time, conn))) = queue.pop() {
        if send_time >= deadline {
            break;
        }
        if storm_idx < storms.len() && w.clock.now() >= storms[storm_idx] {
            match storm_idx {
                // Correlated transient EIO burst on mirror 1.
                0 => faults[1].set_plan(FaultPlan::eio_storm(faults[1].writes_seen(), 24)),
                // Latency inflation on mirror 1 (slow-drive brownout).
                1 => faults[1].set_plan(FaultPlan::latency_storm(
                    faults[1].writes_seen(),
                    64,
                    2 * MS,
                )),
                // Mirror 0 dies two writes into the next checkpoint.
                _ => faults[0].set_plan(FaultPlan {
                    die_at_write: Some(faults[0].writes_seen() + 2),
                    ..FaultPlan::none()
                }),
            }
            storm_idx += 1;
        }
        if w.clock.now() >= next_ckpt {
            let cp = w.sls.sls_checkpoint(gid).unwrap();
            if !cp.committed() {
                // A clean abort: live world rolled back, retried on the
                // next boundary. The mirror makes this rare.
                aborted += 1;
            }
            checkpoints += 1;
            let now = w.clock.now();
            next_ckpt = next_ckpt.max(now - now % PERIOD_NS) + PERIOD_NS;
            // Operational hygiene between storms: drain any storm-era
            // stale blocks while both members are still present.
            for m in 0..mirror.members() {
                if mirror.health_report().member_states[m] != HealthState::Failed
                    && mirror.rebuild_pending(m) > 0
                {
                    // Best-effort: a resilver copy landing inside the
                    // storm can itself hit the injected faults.
                    let _ = mirror.rebuild_step(m, 64);
                }
            }
        }
        w.clock.advance_to(send_time + NET_ONE_WAY_NS);
        match gen.next_op() {
            McOp::Get { key } => {
                mc.get(&mut w.sls.kernel, &key).unwrap();
            }
            McOp::Set { key, value_len } => {
                mc.set(&mut w.sls.kernel, &key, &vec![0u8; value_len]).unwrap();
            }
        }
        completed += 1;
        queue.push(Reverse((w.clock.now() + 2 * NET_ONE_WAY_NS, conn)));
    }
    let elapsed = (w.clock.now().max(t0 + 1) - t0) as f64 / SEC as f64;

    // Recovery: replace the dead mirror, resilver, verify.
    faults[0].revive();
    faults[1].clear_faults();
    mirror.revive_mirror(0);
    while mirror.rebuild_pending(0) > 0 {
        mirror.rebuild_step(0, 256).unwrap();
    }
    mirror.flush_members();
    mirror.scrub().unwrap();
    mirror.flush_members();
    let report = mirror.health_report();
    SoakOutcome {
        checked: checker.checked(),
        violations: checker.violations().len() as u64,
        mirrors_identical: mirror.mirrors_identical().unwrap(),
        rebuilt_healthy: report.member_states.iter().all(|s| *s == HealthState::Healthy),
        throughput: completed as f64 / elapsed,
        checkpoints,
        aborted,
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("degraded_mode");
    let (duration, preload) = if quick() { (200 * MS, 2_000) } else { (SEC, 10_000) };

    header(
        "Degraded-mode: memcached over a two-way mirror",
        &["array state", "ops/s", "ckpts", "ckpt p50", "ckpt p95", "ckpt p99"],
    );
    let scenarios = [
        ("healthy", Scenario::Healthy),
        ("degraded", Scenario::Degraded),
        ("rebuilding", Scenario::Rebuilding),
    ];
    let mut healthy_tput = 0.0;
    let mut degraded_tput = 0.0;
    for (name, s) in scenarios {
        let o = run_scenario(s, duration, preload, 42);
        match s {
            Scenario::Healthy => healthy_tput = o.throughput,
            Scenario::Degraded => degraded_tput = o.throughput,
            Scenario::Rebuilding => {}
        }
        row(&[
            name.to_string(),
            format!("{:.0}", o.throughput),
            o.checkpoints.to_string(),
            fmt_ns(o.ckpt.percentile(50)),
            fmt_ns(o.ckpt.percentile(95)),
            fmt_ns(o.ckpt.percentile(99)),
        ]);
        report.push(name, "throughput_ops_per_sec", o.throughput);
        report.push(name, "checkpoints", o.checkpoints as f64);
        report.push(name, "ckpt_p95_ns", o.ckpt.percentile(95) as f64);
        report.merge_histogram(&format!("ckpt.{name}"), &o.ckpt);
    }
    println!(
        "\nShape checks: a dead mirror costs little steady-state throughput\n\
         (writes skip it); the rebuild window pays extra for resilver I/O\n\
         sharing the array with traffic. Healthy vs degraded: {}.",
        ratio(healthy_tput, degraded_tput.max(1.0)),
    );

    header(
        "Fault-storm soak (EIO burst, latency storm, mirror death)",
        &["metric", "value"],
    );
    let soak = run_storm_soak(duration, preload, 7);
    row(&["ops/s".into(), format!("{:.0}", soak.throughput)]);
    row(&["checkpoints".into(), soak.checkpoints.to_string()]);
    row(&["clean aborts".into(), soak.aborted.to_string()]);
    row(&["invariants checked".into(), soak.checked.to_string()]);
    row(&["invariant violations".into(), soak.violations.to_string()]);
    row(&["mirrors identical".into(), (soak.mirrors_identical as u64).to_string()]);
    row(&["rebuilt healthy".into(), (soak.rebuilt_healthy as u64).to_string()]);
    assert!(soak.checked > 0, "invariant checker must observe events");
    assert_eq!(soak.violations, 0, "online invariants must hold through the storm");
    assert!(soak.mirrors_identical, "recovery must restore byte identity");
    assert!(soak.rebuilt_healthy, "recovery must restore Healthy on every member");
    report.push("storm", "throughput_ops_per_sec", soak.throughput);
    report.push("storm", "checkpoints", soak.checkpoints as f64);
    report.push("storm", "clean_aborts", soak.aborted as f64);
    report.push("storm", "invariant_checked", soak.checked as f64);
    report.push("storm", "invariant_violations", soak.violations as f64);
    report.push("storm", "mirrors_identical", soak.mirrors_identical as u64 as f64);
    report.push("storm", "rebuilt_healthy", soak.rebuilt_healthy as u64 as f64);
    report
}
