//! Figure 4: Memcached at max throughput over varying checkpoint
//! periods — throughput and latency vs the no-persistence baseline.
//!
//! Paper shape: baseline just above 1M ops/s; transparent persistence at
//! a 10 ms period roughly halves throughput and multiplies latency;
//! both recover as the period grows (fewer checkpoints per second).

use crate::memcached_sim::{run as mc_run, sweep, McSimConfig};
use crate::{header, row, BenchReport};
use aurora_sim::units::{fmt_ns, fmt_ops, MS};

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("fig4_memcached_peak");
    let duration = if crate::quick() { 100 * MS } else { 400 * MS };
    header(
        "Figure 4: Memcached max throughput vs checkpoint period",
        &["period", "throughput", "avg lat", "p95 lat", "ckpts"],
    );
    for (label, period) in sweep() {
        let r = mc_run(McSimConfig {
            period_ns: period,
            duration_ns: duration,
            offered_ops_per_sec: None,
            seed: 1,
        });
        row(&[
            label.clone(),
            fmt_ops(r.throughput),
            fmt_ns(r.avg_ns),
            fmt_ns(r.p95_ns),
            r.checkpoints.to_string(),
        ]);
        report.push(label.clone(), "throughput_ops_s", r.throughput);
        report.push(label.clone(), "avg_latency_ns", r.avg_ns as f64);
        report.push(label.clone(), "p95_latency_ns", r.p95_ns as f64);
        report.push(label, "checkpoints", r.checkpoints as f64);
    }
    println!(
        "\n(paper: baseline ~1.05M ops/s; with Aurora ~0.5M at 10 ms rising\n\
         toward baseline as the period grows; latency falls with period)"
    );
    report
}
