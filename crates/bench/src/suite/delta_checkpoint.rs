//! Delta checkpointing: device write amplification and flush latency of
//! the redo-record flush path against full-page logging (§15).
//!
//! The workload is the incremental-checkpoint worst case for page-image
//! logging: every round dirties a fixed set of pages but changes only a
//! few dozen bytes in each. Full-page mode must write the whole page per
//! dirty page per epoch; redo mode logs one sub-page record per page and
//! packs the records into shared blocks, so the device bytes per epoch
//! drop by the page-to-span ratio. Both runs use the same virtual
//! machine, device model, and write pattern — only `checkpoint_mode`
//! differs.
//!
//! No paper reference: Aurora's testbed logs full page images. This
//! table is the proof artifact for the redo-record write path.

use crate::{header, row, BenchReport};
use aurora_core::world::World;
use aurora_core::{AuroraApi, CheckpointMode, SlsOptions};
use aurora_trace::Histogram;
use aurora_vm::PAGE_SIZE;

/// Measured checkpoint rounds per mode.
fn rounds() -> u64 {
    if crate::quick() {
        10
    } else {
        50
    }
}

/// Region size: the app's resident working set.
const REGION_PAGES: u64 = 64;
/// Pages dirtied per round.
const DIRTY_PAGES: u64 = 16;
/// Bytes actually changed in each dirty page per round.
const WRITE_BYTES: usize = 64;

struct ModeRun {
    /// Device bytes written per epoch, averaged over the rounds.
    bytes_per_epoch: f64,
    /// Device bytes per application byte changed.
    write_amp: f64,
    /// Flush-stage latency samples, one per round.
    flush_hist: Histogram,
    /// Store gauges at the end of the run (redo counters).
    gauges: aurora_objstore::StoreGauges,
}

fn run_mode(mode: CheckpointMode) -> ModeRun {
    let mut w = World::quickstart();
    w.sls.config.checkpoint_mode = mode;
    let pid = w.sls.kernel.spawn("delta");
    let addr = w.dirty_region(pid, REGION_PAGES).unwrap();
    let gid = w
        .sls
        .attach(pid, SlsOptions { external_synchrony: false, ..SlsOptions::default() })
        .unwrap();
    // Warm up: the full checkpoint commits every region page, so the
    // measured rounds are purely incremental.
    w.sls.sls_checkpoint(gid).unwrap();
    let base = w.sls.store().lock().device().lock().bytes_written();
    let mut flush_hist = Histogram::default();
    for r in 0..rounds() {
        for i in 0..DIRTY_PAGES {
            // A different page subset and offset each round, same sizes.
            let pi = (i * (REGION_PAGES / DIRTY_PAGES) + r % 4) % REGION_PAGES;
            let off = ((r * 97 + i * 13) as usize * 61) % (PAGE_SIZE - WRITE_BYTES);
            let data = [(r as u8) ^ (i as u8); WRITE_BYTES];
            w.sls
                .kernel
                .mem_write(pid, addr + pi * PAGE_SIZE as u64 + off as u64, &data)
                .unwrap();
        }
        let stats = w.sls.sls_checkpoint(gid).unwrap();
        assert!(stats.committed(), "round {r} checkpoint failed");
        flush_hist.record(stats.flush_ns);
    }
    let written = w.sls.store().lock().device().lock().bytes_written() - base;
    let bytes_per_epoch = written as f64 / rounds() as f64;
    let app_bytes = (DIRTY_PAGES as usize * WRITE_BYTES) as f64;
    let gauges = w.sls.store().lock().gauges();
    ModeRun { bytes_per_epoch, write_amp: bytes_per_epoch / app_bytes, flush_hist, gauges }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("delta_checkpoint");
    header(
        "Delta checkpointing: device bytes per epoch, small-dirty-delta workload",
        &["mode", "bytes/epoch", "write amp", "flush p95 (ns)"],
    );
    let mut results = Vec::new();
    for (name, mode) in
        [("full_page", CheckpointMode::FullPage), ("redo_delta", CheckpointMode::Delta)]
    {
        let r = run_mode(mode);
        row(&[
            name.to_string(),
            format!("{:.0}", r.bytes_per_epoch),
            format!("{:.1}x", r.write_amp),
            format!("{}", r.flush_hist.percentile(95)),
        ]);
        report.push(name, "bytes_per_epoch", r.bytes_per_epoch);
        report.push(name, "write_amp", r.write_amp);
        report.push(name, "flush_p95_ns", r.flush_hist.percentile(95) as f64);
        report.merge_histogram(&format!("flush.{name}"), &r.flush_hist);
        results.push(r);
    }
    let (full, delta) = (&results[0], &results[1]);
    let ratio = full.bytes_per_epoch / delta.bytes_per_epoch;
    let g = &delta.gauges;
    println!(
        "\nredo mode writes {ratio:.1}x fewer device bytes per epoch \
         ({} records appended, {} bytes saved vs page images)",
        g.redo_appended, g.redo_bytes_saved
    );
    report.push("redo", "bytes_ratio_full_vs_delta", ratio);
    report.push("redo", "appended", g.redo_appended as f64);
    report.push("redo", "materializations", g.redo_materializations as f64);
    report.push("redo", "bytes_saved", g.redo_bytes_saved as f64);
    report.push("redo", "chain_len_p95", g.redo_chain_len_p95 as f64);
    report.push("redo", "vcl", g.redo_vcl as f64);
    report.push("redo", "vdl_le_vcl", f64::from(u8::from(g.redo_vdl <= g.redo_vcl)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance bar: on the small-dirty-delta workload, redo
    /// mode must cut device bytes per epoch by at least 2x.
    #[test]
    fn redo_mode_halves_device_bytes_per_epoch() {
        let full = run_mode(CheckpointMode::FullPage);
        let delta = run_mode(CheckpointMode::Delta);
        assert!(
            full.bytes_per_epoch >= 2.0 * delta.bytes_per_epoch,
            "expected >= 2x write reduction, got {:.0} vs {:.0} bytes/epoch",
            full.bytes_per_epoch,
            delta.bytes_per_epoch
        );
        assert!(delta.gauges.redo_appended > 0, "delta run logged redo records");
        assert!(delta.gauges.redo_vdl <= delta.gauges.redo_vcl, "VDL never exceeds VCL");
    }
}
