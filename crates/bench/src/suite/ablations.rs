//! Ablations of the design decisions DESIGN.md calls out, on the virtual
//! clock:
//!
//! 1. **Reversed vs forward collapse** (§6) — pages moved and cost as a
//!    function of base residency, at a fixed dirty set.
//! 2. **Inode references vs path lookups** for vnodes at checkpoint time
//!    (§5.2) — name-cache traffic avoided.
//! 3. **POSIX object model vs process-centric traversal** — OS-state
//!    time as processes sharing the same objects scale.
//! 4. **Shadow-chain cap** — fault cost as chains lengthen when collapse
//!    is disabled.
//! 5. **NVMe vs spinning disk** — why SLSes became practical (§2).

use crate::{header, ratio, row, BenchReport};
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_criu::{criu_dump, CriuCosts};
use aurora_posix::file::OpenFlags;
use aurora_posix::Kernel;
use aurora_sim::units::{fmt_ns, MIB};
use aurora_sim::Clock;
use aurora_storage::device::BlockDevice;
use aurora_storage::{NvmeDevice, NvmeParams};
use aurora_vm::{CollapseMode, Prot, Vm, PAGE_SIZE};

fn collapse_ablation(report: &mut BenchReport) {
    header(
        "Ablation 1: collapse direction (16 dirty pages, varying base)",
        &["base pages", "reversed moves", "forward moves", "advantage"],
    );
    let bases: &[u64] = if crate::quick() { &[64, 512, 4096] } else { &[64, 512, 4096, 32_768] };
    for &base_pages in bases {
        let mut results = Vec::new();
        for mode in [CollapseMode::Reversed, CollapseMode::Forward] {
            let mut vm = Vm::new();
            let s = vm.create_space();
            let a = vm.mmap_anon(s, base_pages, Prot::RW).unwrap();
            vm.touch(s, a, base_pages * PAGE_SIZE as u64).unwrap();
            vm.system_shadow(&[s]).unwrap();
            for i in 0..16u64 {
                vm.write(s, a + i * PAGE_SIZE as u64, &[1]).unwrap();
            }
            vm.system_shadow(&[s]).unwrap();
            let top = vm.space(s).unwrap().entry_at(a).unwrap().object;
            let r = vm.collapse_under(top, mode).unwrap().unwrap();
            results.push(r.pages_moved);
        }
        row(&[
            base_pages.to_string(),
            results[0].to_string(),
            results[1].to_string(),
            ratio(results[1] as f64, results[0] as f64),
        ]);
        let group = format!("collapse/base={base_pages}");
        report.push(group.clone(), "reversed_moves", results[0] as f64);
        report.push(group, "forward_moves", results[1] as f64);
    }
    println!("(the reversed direction moves the dirty set; forward moves the base)");
}

fn vnode_ref_ablation(report: &mut BenchReport) {
    header(
        "Ablation 2: vnode references at checkpoint (inode vs path)",
        &["files", "inode refs", "path lookups", "advantage"],
    );
    for files in [64u64, 512] {
        let mut w = World::quickstart();
        let pid = w.sls.kernel.spawn("files");
        for i in 0..files {
            w.sls.kernel.open(pid, &format!("/f{i}"), OpenFlags::RDWR, true).unwrap();
        }
        // Inode path: what the serializer does (1 lock + direct ref).
        let t0 = w.clock.now();
        let model = w.sls.kernel.charge.model().clone();
        for _ in 0..files {
            w.sls.kernel.charge.locks(1);
            w.sls.kernel.charge.misses(8);
        }
        let inode_ns = w.clock.now() - t0;
        // Path alternative: namei through the name cache for each file
        // (a miss costs a directory scan; hits still chase pointers).
        let t1 = w.clock.now();
        for i in 0..files {
            w.sls.kernel.vfs.lookup_path(&format!("/f{i}")).unwrap();
            w.sls.kernel.charge.locks(2);
            w.sls.kernel.charge.misses(30); // namei component walks
            w.sls.kernel.charge.raw(model.syscall_ns);
        }
        let path_ns = w.clock.now() - t1;
        row(&[
            files.to_string(),
            fmt_ns(inode_ns),
            fmt_ns(path_ns),
            ratio(path_ns as f64, inode_ns as f64),
        ]);
        let group = format!("vnode_refs/files={files}");
        report.push(group.clone(), "inode_ns", inode_ns as f64);
        report.push(group, "path_ns", path_ns as f64);
    }
}

fn object_model_ablation(report: &mut BenchReport) {
    header(
        "Ablation 3: object model vs process-centric traversal",
        &["processes", "Aurora OS-state", "CRIU-style", "advantage"],
    );
    for procs in [1u32, 4, 16] {
        // Aurora: the exactly-once object scan.
        let mut w = World::quickstart();
        let root = w.sls.kernel.spawn("root");
        let fd = w.sls.kernel.open(root, "/shared", OpenFlags::RDWR, true).unwrap();
        let _ = fd;
        for _ in 1..procs {
            w.sls.kernel.fork(root).unwrap();
        }
        let gid = w.sls.attach(root, SlsOptions::default()).unwrap();
        w.sls.sls_checkpoint(gid).unwrap();
        w.sls.sls_barrier(gid).unwrap();
        let aurora_ns = w.sls.sls_checkpoint(gid).unwrap().os_state_ns;

        // CRIU: per-process scans + sharing inference.
        let mut k = Kernel::boot();
        let root = k.spawn("root");
        k.open(root, "/shared", OpenFlags::RDWR, true).unwrap();
        for _ in 1..procs {
            k.fork(root).unwrap();
        }
        let (stats, _) = criu_dump(&mut k, root, &CriuCosts::default()).unwrap();
        row(&[
            procs.to_string(),
            fmt_ns(aurora_ns),
            fmt_ns(stats.os_state_ns),
            ratio(stats.os_state_ns as f64, aurora_ns as f64),
        ]);
        let group = format!("object_model/procs={procs}");
        report.push(group.clone(), "aurora_os_state_ns", aurora_ns as f64);
        report.push(group, "criu_os_state_ns", stats.os_state_ns as f64);
    }
    println!("(shared objects cost Aurora once; CRIU re-scans them per process)");
}

fn chain_cap_ablation(report: &mut BenchReport) {
    header(
        "Ablation 4: shadow chain length vs read-fault cost",
        &["chain length", "fault cost (virtual)"],
    );
    for chain in [2u64, 4, 8, 16] {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.mmap_anon(s, 8, Prot::RW).unwrap();
        vm.write(s, a, &[1]).unwrap();
        // Grow the chain without collapsing.
        for _ in 1..chain {
            vm.system_shadow(&[s]).unwrap();
        }
        // Cost model: a read fault walks the chain; each level is a
        // cache-missing object lookup.
        let model = aurora_sim::CostModel::default();
        let cost = model.page_fault_ns + chain * model.cache_miss_ns + model.pte_install_ns;
        row(&[chain.to_string(), fmt_ns(cost)]);
        report.push(format!("chain_cap/chain={chain}"), "fault_cost_ns", cost as f64);
    }
    println!("(Aurora eagerly collapses to keep chains at 2: flushing + accumulating)");
}

fn disk_era_ablation(report: &mut BenchReport) {
    header(
        "Ablation 5: why now — flushing a 64 MiB checkpoint",
        &["device", "flush time", "max checkpoint Hz"],
    );
    for (name, params) in
        [("Optane NVMe", NvmeParams::optane_900p()), ("spinning disk", NvmeParams::spinning_disk())]
    {
        let clock = Clock::new();
        let mut dev = NvmeDevice::new(clock.clone(), params, 256 * MIB);
        let chunk = vec![0u8; 1 << 20];
        for i in 0..64u64 {
            dev.write(i * 256, &chunk).unwrap();
        }
        let done = dev.flush().done_at;
        row(&[
            name.to_string(),
            fmt_ns(done),
            format!("{:.1}/s", 1e9 / done as f64),
        ]);
        report.push(format!("disk_era/{name}"), "flush_ns", done as f64);
    }
    println!("(EROS-era disks bound checkpoints to tens of seconds; NVMe makes 100 Hz possible)");
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("ablations");
    collapse_ablation(&mut report);
    vnode_ref_ablation(&mut report);
    object_model_ablation(&mut report);
    chain_cap_ablation(&mut report);
    disk_era_ablation(&mut report);
    report
}
