//! Tables 1 and 7: full-checkpoint performance of Aurora vs CRIU vs
//! Redis' own RDB mechanism, on a 500 MiB Redis instance.
//!
//! Paper reference (Table 7):
//!   OS state   — Aurora 0.3 ms, CRIU 49 ms
//!   Memory     — Aurora 3.7 ms, CRIU 413 ms
//!   Total stop — Aurora 4.0 ms, CRIU 462 ms, RDB 8 ms
//!   IO write   — Aurora 97.6 ms, CRIU 350 ms, RDB 300 ms
//!
//! Aurora's stop time is two orders of magnitude smaller because system
//! shadowing moves the copy out of the stop window; the IO advantage
//! comes from writing through the COW store without serialization.

use crate::{header, ratio, row, BenchReport};
use aurora_apps::redis::Redis;
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_criu::{criu_dump, CriuCosts};
use aurora_posix::Kernel;
use aurora_sim::units::{fmt_ns, MIB};
use aurora_storage::testbed_array;

fn dataset() -> u64 {
    if crate::quick() {
        50 * MIB
    } else {
        500 * MIB
    }
}

struct Numbers {
    os_state: u64,
    memory: u64,
    total_stop: u64,
    io_write: u64,
}

fn aurora_numbers() -> Numbers {
    let dataset = dataset();
    let mut w = World::with_store_bytes(2 << 30);
    let mut redis = Redis::launch(&mut w.sls.kernel, dataset / 4096 + 4096).unwrap();
    redis.populate(&mut w.sls.kernel, dataset).unwrap();
    let gid = w.sls.attach(redis.pid, SlsOptions::default()).unwrap();
    // Steady state, then dirty the whole dataset and take the measured
    // checkpoint (the paper's full-checkpoint comparison).
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    let mut i = 0u64;
    // Redirty everything.
    let value = vec![0xCD; 4096 - 64];
    while i * 4096 < dataset {
        redis.set(&mut w.sls.kernel, format!("key:{i:012}").as_bytes(), &value).unwrap();
        i += 1;
    }
    let t_before = w.clock.now();
    let stats = w.sls.sls_checkpoint(gid).unwrap();
    Numbers {
        os_state: stats.os_state_ns,
        memory: stats.shadow_ns,
        total_stop: stats.stop_time_ns,
        io_write: stats.durable_at.saturating_sub(t_before),
    }
}

fn criu_numbers() -> Numbers {
    let dataset = dataset();
    let mut k = Kernel::boot();
    let mut redis = Redis::launch(&mut k, dataset / 4096 + 4096).unwrap();
    redis.populate(&mut k, dataset).unwrap();
    let (stats, _image) = criu_dump(&mut k, redis.pid, &CriuCosts::default()).unwrap();
    Numbers {
        os_state: stats.os_state_ns,
        memory: stats.memory_copy_ns,
        total_stop: stats.total_stop_ns,
        io_write: stats.io_write_ns,
    }
}

fn rdb_numbers() -> Numbers {
    let dataset = dataset();
    let mut k = Kernel::boot();
    let dev = testbed_array(k.charge.clock(), 2 << 30);
    let mut redis = Redis::launch(&mut k, dataset / 4096 + 4096).unwrap();
    redis.populate(&mut k, dataset).unwrap();
    let stats = redis.bgsave(&mut k, &dev).unwrap();
    Numbers {
        os_state: 0,
        memory: 0,
        total_stop: stats.fork_stop_ns,
        io_write: stats.save_ns,
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("table7_aurora_vs_criu");
    println!("Populating three {} MiB Redis instances (takes a moment)…", dataset() / MIB);
    let aurora = aurora_numbers();
    let criu = criu_numbers();
    let rdb = rdb_numbers();

    header(
        "Table 7: Aurora vs CRIU vs RDB, 500 MiB Redis",
        &["type", "Aurora", "(paper)", "CRIU", "(paper)", "RDB", "(paper)"],
    );
    row(&[
        "OS state".into(),
        fmt_ns(aurora.os_state),
        fmt_ns(300_000),
        fmt_ns(criu.os_state),
        fmt_ns(49_000_000),
        "N/A".into(),
        "N/A".into(),
    ]);
    row(&[
        "Memory".into(),
        fmt_ns(aurora.memory),
        fmt_ns(3_700_000),
        fmt_ns(criu.memory),
        fmt_ns(413_000_000),
        "N/A".into(),
        "N/A".into(),
    ]);
    row(&[
        "Total stop".into(),
        fmt_ns(aurora.total_stop),
        fmt_ns(4_000_000),
        fmt_ns(criu.total_stop),
        fmt_ns(462_000_000),
        fmt_ns(rdb.total_stop),
        fmt_ns(8_000_000),
    ]);
    row(&[
        "IO write".into(),
        fmt_ns(aurora.io_write),
        fmt_ns(97_600_000),
        fmt_ns(criu.io_write),
        fmt_ns(350_000_000),
        fmt_ns(rdb.io_write),
        fmt_ns(300_000_000),
    ]);

    println!(
        "\nShape checks: stop-time advantage Aurora vs CRIU = {} (paper ~115×);\n\
         IO advantage Aurora vs CRIU = {} (paper ~3.6×); RDB stop ≪ CRIU stop\n\
         but ≫ Aurora stop; RDB write ≈ CRIU write (serialization bound).",
        ratio(criu.total_stop as f64, aurora.total_stop as f64),
        ratio(criu.io_write as f64, aurora.io_write as f64),
    );

    for (system, n) in [("aurora", &aurora), ("criu", &criu), ("rdb", &rdb)] {
        report.push(system, "os_state_ns", n.os_state as f64);
        report.push(system, "memory_ns", n.memory as f64);
        report.push(system, "total_stop_ns", n.total_stop as f64);
        report.push(system, "io_write_ns", n.io_write as f64);
    }
    report
}
