//! Live migration: a running memcached moves between cluster nodes
//! while mutilate traffic keeps dirtying pages. Reports pre-copy
//! convergence (pages per round), total bytes on the wire, and the
//! stop-and-copy pause in virtual µs, across traffic intensities —
//! the classic trade-off: more traffic per round means more re-dirtied
//! pages and a longer tail to converge.

use crate::{header, quick, row, BenchReport};
use aurora_apps::memcached::Memcached;
use aurora_cluster::{Cluster, ClusterConfig, MigrationConfig};
use aurora_core::SlsOptions;
use aurora_sim::units::fmt_bytes;
use aurora_trace::Histogram;
use aurora_workloads::mutilate::{McOp, Mutilate, MutilateConfig};

struct Outcome {
    rounds: u64,
    first_round_pages: u64,
    last_precopy_pages: u64,
    total_pages: u64,
    total_bytes: u64,
    pause_us: u64,
    keys_verified: u64,
    round_hist: Histogram,
}

/// One full migration at a given per-round traffic intensity: boot a
/// 3-node cluster, warm a memcached on the leader, migrate it to node 2
/// with `ops_per_round` mutilate ops served before every pre-copy
/// round, then fail over and byte-verify every key on the target.
fn run_one(ops_per_round: usize, seed_keys: u32, warm_ops: usize, seed: u64) -> Outcome {
    let mut c = Cluster::new(ClusterConfig::default());
    let mut mc = Memcached::launch(&mut c.leader().kernel, 4096, 12).unwrap();
    let gid = c.attach_on_leader(mc.pid, SlsOptions::default()).unwrap();
    let mut gen = Mutilate::new(MutilateConfig { keyspace: 512, seed, ..MutilateConfig::default() });
    for i in 0..seed_keys {
        let key = format!("seed-{i:08}").into_bytes();
        let mut v = key.clone();
        v.resize(256, b'v');
        mc.set(&mut c.leader().kernel, &key, &v).unwrap();
    }
    for _ in 0..warm_ops {
        match gen.next_op() {
            McOp::Set { key, value_len } => {
                let mut v = key.to_vec();
                v.resize(value_len.max(8), b'v');
                mc.set(&mut c.leader().kernel, &key, &v).unwrap();
            }
            McOp::Get { key } => {
                mc.get(&mut c.leader().kernel, &key).unwrap();
            }
        }
    }

    let report = c
        .live_migrate(2, gid, MigrationConfig::default(), |sls, _round| {
            for _ in 0..ops_per_round {
                match gen.next_op() {
                    McOp::Set { key, value_len } => {
                        let mut v = key.to_vec();
                        v.resize(value_len.max(8), b'v');
                        mc.set(&mut sls.kernel, &key, &v)?;
                    }
                    McOp::Get { key } => {
                        mc.get(&mut sls.kernel, &key)?;
                    }
                }
            }
            Ok(())
        })
        .unwrap();

    // Failover and byte-verify: the bench asserts correctness so a
    // regression in the delta path can't silently pass as "fast".
    let new_pid = *report.restore.pids.first().expect("restored server process");
    let mut mc_target = mc.failover_to(new_pid);
    let keys = mc.key_list();
    for key in &keys {
        let a = mc.get(&mut c.leader().kernel, key).unwrap();
        let b = mc_target.get(&mut c.nodes[2].sls.kernel, key).unwrap();
        assert_eq!(a, b, "post-failover mismatch on {:?}", String::from_utf8_lossy(key));
    }

    let mut round_hist = Histogram::default();
    for r in &report.rounds {
        round_hist.record(r.elapsed_ns);
    }
    let last_precopy =
        if report.rounds.len() >= 2 { report.rounds[report.rounds.len() - 2].pages } else { 0 };
    Outcome {
        rounds: report.rounds.len() as u64,
        first_round_pages: report.rounds[0].pages,
        last_precopy_pages: last_precopy,
        total_pages: report.total_pages,
        total_bytes: report.total_bytes,
        pause_us: report.stop_copy_pause_us,
        keys_verified: keys.len() as u64,
        round_hist,
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("live_migration");
    let (seed_keys, warm_ops) = if quick() { (200u32, 800usize) } else { (400, 2_000) };

    header(
        "Live migration: memcached between cluster nodes under mutilate load",
        &["traffic/round", "rounds", "round0 pages", "last pre-copy", "total wire", "pause µs", "keys ok"],
    );
    let intensities: &[(&str, usize)] =
        if quick() { &[("light", 50), ("heavy", 200)] } else { &[("light", 50), ("medium", 200), ("heavy", 600)] };
    for &(name, ops) in intensities {
        let o = run_one(ops, seed_keys, warm_ops, 42);
        row(&[
            format!("{name} ({ops})"),
            o.rounds.to_string(),
            o.first_round_pages.to_string(),
            o.last_precopy_pages.to_string(),
            fmt_bytes(o.total_bytes),
            o.pause_us.to_string(),
            o.keys_verified.to_string(),
        ]);
        assert!(o.rounds >= 2, "pre-copy must take at least one converging round");
        assert!(
            o.last_precopy_pages < o.first_round_pages,
            "pre-copy must converge below the full image"
        );
        assert!(o.pause_us > 0, "the stop-and-copy pause is real virtual time");
        report.push(name, "rounds", o.rounds as f64);
        report.push(name, "first_round_pages", o.first_round_pages as f64);
        report.push(name, "last_precopy_pages", o.last_precopy_pages as f64);
        report.push(name, "total_pages", o.total_pages as f64);
        report.push(name, "total_wire_bytes", o.total_bytes as f64);
        report.push(name, "stop_copy_pause_us", o.pause_us as f64);
        report.push(name, "keys_verified", o.keys_verified as f64);
        report.merge_histogram(&format!("migration.round.{name}"), &o.round_hist);
    }
    println!(
        "\nShape checks: round 0 ships the full image; later rounds carry\n\
         only what traffic re-dirtied, so heavier traffic per round means\n\
         more residual pages at stop-and-copy. The pause stays orders of\n\
         magnitude under the full first-round copy."
    );
    report
}
