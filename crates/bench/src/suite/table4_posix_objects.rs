//! Table 4: checkpoint and restore times for individual POSIX objects.
//!
//! Paper reference (checkpoint / restore): kqueue w/1024 events
//! 35.2 µs / 2.7 µs, pipes 1.7 / 2.6, pseudoterminals 3.1 / 30.2, POSIX
//! shm 4.5 / 3.8, SysV shm 14.9 / 2.8, sockets 1.8 / 3.6, vnodes
//! 1.7 / 2.0.

use crate::{header, row, BenchReport};
use aurora_core::world::World;
use aurora_core::{AuroraApi, RestoreMode, SlsOptions};
use aurora_posix::file::OpenFlags;
use aurora_posix::kqueue::{Filter, Kevent};
use aurora_sim::units::fmt_ns;

/// Measures (checkpoint_delta, restore_delta) for a scenario: the delta
/// between a baseline process and one with the object installed, so the
/// per-object cost isolates cleanly.
fn measure(
    name: &str,
    install: impl Fn(&mut World, aurora_posix::Pid),
) -> (String, u64, u64) {
    // Baseline.
    let (base_cp, base_rs) = run_once(|_, _| {});
    let (cp, rs) = run_once(install);
    (
        name.to_string(),
        cp.saturating_sub(base_cp),
        rs.saturating_sub(base_rs),
    )
}

fn run_once(install: impl Fn(&mut World, aurora_posix::Pid)) -> (u64, u64) {
    let mut w = World::quickstart();
    let pid = w.sls.kernel.spawn("obj");
    install(&mut w, pid);
    let gid = w.sls.attach(pid, SlsOptions::default()).unwrap();
    // Steady state.
    w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    let cp = w.sls.sls_checkpoint(gid).unwrap();
    w.sls.sls_barrier(gid).unwrap();
    let r = w.sls.sls_restore(gid, None, RestoreMode::Lazy).unwrap();
    (cp.os_state_ns, r.elapsed_ns)
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("table4_posix_objects");
    let kq_events: u64 = if crate::quick() { 128 } else { 1024 };
    let sysv_segments: u64 = if crate::quick() { 10 } else { 100 };
    // A populated SysV namespace (the paper's system has other segments
    // to scan past — calibrated to ~100 entries).
    let rows = [
        measure("Kqueue w/1024 ev", |w, pid| {
            let kq = w.sls.kernel.kqueue(pid).unwrap();
            for i in 0..kq_events {
                w.sls
                    .kernel
                    .kevent_register(
                        pid,
                        kq,
                        Kevent { ident: i, filter: Filter::Read, enabled: true, udata: i },
                    )
                    .unwrap();
            }
        }),
        measure("Pipes", |w, pid| {
            w.sls.kernel.pipe(pid).unwrap();
        }),
        measure("Pseudoterminals", |w, pid| {
            w.sls.kernel.openpty(pid).unwrap();
        }),
        measure("Shm (POSIX)", |w, pid| {
            let fd = w.sls.kernel.shm_open(pid, "/seg", 4).unwrap();
            let addr = w.sls.kernel.mmap_shm(pid, fd).unwrap();
            w.sls.kernel.mem_write(pid, addr, b"x").unwrap();
        }),
        measure("Shm (SysV)", |w, pid| {
            // The global namespace the serializer must scan.
            for key in 0..sysv_segments {
                w.sls.kernel.shmget(1000 + key as i64, 1).unwrap();
            }
            let id = w.sls.kernel.shmget(42, 4).unwrap();
            let addr = w.sls.kernel.shmat(pid, id).unwrap();
            w.sls.kernel.mem_write(pid, addr, b"x").unwrap();
        }),
        measure("Sockets", |w, pid| {
            w.sls.kernel.socketpair(pid).unwrap();
        }),
        measure("Vnodes", |w, pid| {
            let fd = w.sls.kernel.open(pid, "/file", OpenFlags::RDWR, true).unwrap();
            w.sls.kernel.write(pid, fd, b"content").unwrap();
        }),
    ];

    let paper: [(u64, u64); 7] = [
        (35_200, 2_700),
        (1_700, 2_600),
        (3_100, 30_200),
        (4_500, 3_800),
        (14_900, 2_800),
        (1_800, 3_600),
        (1_700, 2_000),
    ];

    header(
        "Table 4: POSIX object checkpoint/restore times",
        &["object", "checkpoint", "(paper)", "restore", "(paper)"],
    );
    for (i, (name, cp, rs)) in rows.iter().enumerate() {
        row(&[
            name.clone(),
            fmt_ns(*cp),
            fmt_ns(paper[i].0),
            fmt_ns(*rs),
            fmt_ns(paper[i].1),
        ]);
        report.push(name.clone(), "checkpoint_ns", *cp as f64);
        report.push(name.clone(), "restore_ns", *rs as f64);
    }
    println!(
        "\nShape checks: kqueue slowest to checkpoint (per-knote scan),\n\
         pty slowest to restore (devfs node creation), SysV ≫ POSIX shm\n\
         (global namespace scan)."
    );
    report
}
