//! Table 1: a breakdown of CRIU's checkpointing overheads for a 500 MB
//! Redis process (the paper's motivating measurement, §2).
//!
//! Paper reference: OS state copy 49 ms, memory copy 413 ms, total stop
//! time 462 ms, IO write 350 ms.

use crate::{header, row, BenchReport};
use aurora_apps::redis::Redis;
use aurora_criu::{criu_dump, CriuCosts};
use aurora_posix::Kernel;
use aurora_sim::units::{fmt_ns, MIB};

pub fn run() -> BenchReport {
    let dataset: u64 = if crate::quick() { 50 * MIB } else { 500 * MIB };
    let mut report = BenchReport::new("table1_criu");
    println!("Populating a {} MiB Redis instance…", dataset / MIB);
    let mut k = Kernel::boot();
    let mut redis = Redis::launch(&mut k, dataset / 4096 + 4096).unwrap();
    redis.populate(&mut k, dataset).unwrap();

    let (stats, image) = criu_dump(&mut k, redis.pid, &CriuCosts::default()).unwrap();

    header("Table 1: CRIU checkpoint breakdown (500 MB Redis)", &["type", "CRIU", "(paper)"]);
    row(&["OS state copy".into(), fmt_ns(stats.os_state_ns), fmt_ns(49_000_000)]);
    row(&["Memory copy".into(), fmt_ns(stats.memory_copy_ns), fmt_ns(413_000_000)]);
    row(&["Total stop time".into(), fmt_ns(stats.total_stop_ns), fmt_ns(462_000_000)]);
    row(&["IO write".into(), fmt_ns(stats.io_write_ns), fmt_ns(350_000_000)]);
    println!(
        "\nImage: {} MiB across {} process(es); {} objects required sharing inference.",
        image.bytes / MIB,
        stats.procs,
        stats.inferred_objects
    );
    println!(
        "Shape checks: memory copy ≫ OS state; the application is stopped for\n\
         the entire copy; the write happens after, unsynchronized."
    );

    report.push("criu", "dataset_bytes", dataset as f64);
    report.push("criu", "os_state_ns", stats.os_state_ns as f64);
    report.push("criu", "memory_copy_ns", stats.memory_copy_ns as f64);
    report.push("criu", "total_stop_ns", stats.total_stop_ns as f64);
    report.push("criu", "io_write_ns", stats.io_write_ns as f64);
    report.push("criu", "image_bytes", image.bytes as f64);
    report.push("criu", "procs", stats.procs as f64);
    report.push("criu", "inferred_objects", stats.inferred_objects as f64);
    report
}
