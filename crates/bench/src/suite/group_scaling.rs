//! Group scaling: aggregate checkpoint throughput of the sharded
//! checkpoint engine as the number of consistency groups grows.
//!
//! One serial pipeline caps system-wide checkpoint throughput at
//! `1 / (stop + durability wait)` no matter how many applications the
//! SLS hosts. The sharded engine keys epochs by group and staggers the
//! per-group pipelines round-robin, so group B quiesces and serializes
//! while group A's flush sits in the device queue — the durability wait
//! is hidden behind other groups' stop work. On latency-bound storage
//! (TLC NAND, where the flash program time dominates small checkpoint
//! commits) that turns the wait into throughput: aggregate checkpoints/s
//! scales near-linearly from 1 to 8 groups.
//!
//! No paper reference: the paper's testbed checkpoints one group. This
//! table is the proof artifact for the sharded engine itself.

use crate::{header, row, BenchReport};
use aurora_core::world::World;
use aurora_core::{GroupId, SlsOptions};
use aurora_posix::Pid;
use aurora_sim::units::MS;

/// Checkpoint rounds measured per configuration.
fn rounds() -> u64 {
    if crate::quick() {
        8
    } else {
        40
    }
}

/// Dirty pages per group per round — kept small so commits are
/// latency-bound (the regime the scheduler helps in).
const PAGES_PER_GROUP: u64 = 16;

struct Fleet {
    w: World,
    groups: Vec<(GroupId, Pid, u64)>,
}

/// Boots one world with `n` single-process consistency groups, each
/// owning a private dirty region, warmed through its full checkpoint.
fn fleet(n: u64) -> Fleet {
    let mut w = World::with_nand_store_bytes(2 << 30);
    let mut groups = Vec::new();
    for i in 0..n {
        let pid = w.sls.kernel.spawn(&format!("shard{i}"));
        let addr = w.dirty_region(pid, PAGES_PER_GROUP).unwrap();
        let gid = w
            .sls
            .attach(
                pid,
                SlsOptions { period_ns: MS, external_synchrony: false, ..SlsOptions::default() },
            )
            .unwrap();
        groups.push((gid, pid, addr));
    }
    // Warm up: the full checkpoints, then wait out every group's
    // durability so the measured rounds start from a clean horizon.
    let gids: Vec<GroupId> = groups.iter().map(|&(g, _, _)| g).collect();
    let warm = w.sls.checkpoint_all(&gids).unwrap();
    let horizon = warm.iter().map(|s| s.durable_at).max().unwrap_or(0);
    w.clock.advance_to(horizon);
    Fleet { w, groups }
}

/// Runs the measured rounds; returns aggregate checkpoints per second.
fn aggregate_throughput(n: u64) -> f64 {
    let Fleet { mut w, groups } = fleet(n);
    let gids: Vec<GroupId> = groups.iter().map(|&(g, _, _)| g).collect();
    let t0 = w.clock.now();
    let mut last_horizon = 0u64;
    for _ in 0..rounds() {
        for &(_, pid, addr) in &groups {
            w.sls
                .kernel
                .mem_touch(pid, addr, PAGES_PER_GROUP * aurora_vm::PAGE_SIZE as u64)
                .unwrap();
        }
        let stats = w.sls.checkpoint_all(&gids).unwrap();
        for s in &stats {
            assert!(s.committed(), "group {} checkpoint failed", s.group);
        }
        last_horizon = stats.iter().map(|s| s.durable_at).max().unwrap_or(0);
    }
    // The last round's flushes must land before the clock stops.
    w.clock.advance_to(last_horizon);
    let elapsed_ns = (w.clock.now() - t0) as f64;
    (n * rounds()) as f64 * 1e9 / elapsed_ns
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("group_scaling");
    header(
        "Group scaling: aggregate checkpoint throughput (TLC-NAND testbed)",
        &["groups", "ckpt/s (aggregate)", "per group", "speedup vs 1"],
    );
    let mut base = 0.0f64;
    for &n in &[1u64, 2, 4, 8] {
        let agg = aggregate_throughput(n);
        if n == 1 {
            base = agg;
        }
        let speedup = agg / base;
        row(&[
            n.to_string(),
            format!("{agg:.0}"),
            format!("{:.0}", agg / n as f64),
            format!("{speedup:.2}x"),
        ]);
        let group = format!("{n}_groups");
        report.push(group.clone(), "aggregate_ckpt_per_s", agg);
        report.push(group.clone(), "per_group_ckpt_per_s", agg / n as f64);
        report.push(group, "speedup_vs_1", speedup);
    }
    println!(
        "\nShape checks: per-group throughput roughly flat (each group's\n\
         durability wait hides behind the others' stop windows); 8-group\n\
         aggregate >= 4x the single-group baseline."
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn eight_groups_scale_at_least_4x() {
        let base = super::aggregate_throughput(1);
        let eight = super::aggregate_throughput(8);
        assert!(
            eight >= 4.0 * base,
            "aggregate throughput at 8 groups ({eight:.0}/s) must be >= 4x \
             the single-group baseline ({base:.0}/s), got {:.2}x",
            eight / base
        );
    }
}

