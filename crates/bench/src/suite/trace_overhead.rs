//! Provenance overhead: the same quorum-replication scenario with epoch
//! provenance fully on (per-node trace rings, causal-graph stitching,
//! the flight recorder) versus fully off.
//!
//! The claim under test is **zero virtual cost**: tracing and graph
//! building are observer work — they charge nothing to the virtual
//! clock, so both runs must produce the *identical* virtual timeline
//! (same per-round stop times, same commit horizons, same final clock).
//! The benchmark asserts that bit-for-bit, then reports the observer's
//! real footprint (ring events recorded, graphs snapshotted) and the
//! release-latency / stop-time histograms the regression gate watches.

use crate::{header, row, BenchReport};
use aurora_cluster::{Cluster, ClusterConfig};
use aurora_core::SlsOptions;
use aurora_trace::Histogram;
use aurora_vm::Prot;

fn rounds() -> u64 {
    if crate::quick() {
        6
    } else {
        30
    }
}

struct Run {
    /// Virtual clock at the end of the run.
    end_ns: u64,
    /// Per-round checkpoint stop times (virtual ns).
    stop_hist: Histogram,
    /// Per-round commit durability horizons, summed (timeline digest).
    durable_sum: u64,
    /// Quorum watermark at the end.
    watermark: u64,
    /// Ring events recorded across all nodes (0 with provenance off).
    ring_events: u64,
    /// Epoch graphs the flight recorder holds (0 with provenance off).
    graphs: u64,
    /// Leader release-latency histogram (empty with provenance off).
    release_hist: Histogram,
}

fn run_mode(provenance: bool) -> Run {
    let mut c = Cluster::new(ClusterConfig::default());
    if provenance {
        c.enable_provenance(8);
    }
    let pid = c.leader().kernel.spawn("counter");
    let addr = c.leader().kernel.mmap_anon(pid, 16, Prot::RW).unwrap();
    c.leader().kernel.mem_write(pid, addr, &0u64.to_le_bytes()).unwrap();
    let gid = c
        .attach_on_leader(pid, SlsOptions { external_synchrony: true, ..SlsOptions::default() })
        .unwrap();
    let mut stop_hist = Histogram::default();
    let mut durable_sum = 0u64;
    for _ in 0..rounds() {
        let mut buf = [0u8; 8];
        c.leader().kernel.mem_read(pid, addr, &mut buf).unwrap();
        let v = u64::from_le_bytes(buf) + 1;
        c.leader().kernel.mem_write(pid, addr, &v.to_le_bytes()).unwrap();
        let stats = c.checkpoint_and_replicate(gid).unwrap();
        stop_hist.record(stats.stop_time_ns);
        durable_sum = durable_sum.wrapping_add(stats.durable_at);
        c.drain().unwrap();
    }
    let ring_events: u64 =
        (0..c.nodes.len()).map(|i| c.node_trace(i).event_count() as u64).sum();
    let release_hist = c
        .node_trace(0)
        .histograms()
        .into_iter()
        .find(|(n, _)| n == "release_latency")
        .map(|(_, h)| h)
        .unwrap_or_default();
    Run {
        end_ns: c.clock.now(),
        stop_hist,
        durable_sum,
        watermark: c.quorum_watermark(gid.0),
        ring_events,
        graphs: c.flight_recorder().map(|fr| fr.len() as u64).unwrap_or(0),
        release_hist,
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("trace_overhead");
    header(
        "Provenance overhead: quorum replication with tracing on vs off",
        &["provenance", "virtual end", "stop p95 (ns)", "ring events", "graphs"],
    );
    let mut runs = Vec::new();
    for (name, on) in [("off", false), ("on", true)] {
        let r = run_mode(on);
        row(&[
            name.to_string(),
            format!("{}", r.end_ns),
            format!("{}", r.stop_hist.percentile(95)),
            format!("{}", r.ring_events),
            format!("{}", r.graphs),
        ]);
        report.push(name, "virtual_end_ns", r.end_ns as f64);
        report.push(name, "stop_p95_ns", r.stop_hist.percentile(95) as f64);
        report.push(name, "quorum_watermark", r.watermark as f64);
        report.push(name, "ring_events", r.ring_events as f64);
        report.push(name, "flight_graphs", r.graphs as f64);
        report.merge_histogram(&format!("stop.provenance_{name}"), &r.stop_hist);
        runs.push(r);
    }
    let (off, on) = (&runs[0], &runs[1]);
    let identical = off.end_ns == on.end_ns
        && off.stop_hist.count == on.stop_hist.count
        && off.stop_hist.sum == on.stop_hist.sum
        && off.durable_sum == on.durable_sum
        && off.watermark == on.watermark;
    println!(
        "\nvirtual timeline with provenance on is {} (observer charges zero virtual \
         time); on-run recorded {} ring events and {} epoch graphs",
        if identical { "IDENTICAL to off" } else { "DIVERGENT — observer effect!" },
        on.ring_events,
        on.graphs
    );
    assert!(identical, "provenance must not perturb the virtual timeline");
    report.push("overhead", "timeline_identical", f64::from(u8::from(identical)));
    report.push(
        "overhead",
        "release_p95_ns",
        on.release_hist.percentile(95) as f64,
    );
    report.merge_histogram("release_latency.provenance_on", &on.release_hist);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zero-cost-when-disabled, zero *virtual* cost when enabled: both
    /// modes walk the same virtual timeline, and the off mode records
    /// nothing at all.
    #[test]
    fn provenance_is_virtual_time_neutral() {
        let off = run_mode(false);
        let on = run_mode(true);
        assert_eq!(off.end_ns, on.end_ns, "virtual end diverged");
        assert_eq!(off.stop_hist.sum, on.stop_hist.sum, "stop times diverged");
        assert_eq!(off.durable_sum, on.durable_sum, "durability horizons diverged");
        assert_eq!(off.watermark, on.watermark);
        assert_eq!(off.ring_events, 0, "disabled tracing records nothing");
        assert_eq!(off.graphs, 0);
        assert!(on.ring_events > 0 && on.graphs > 0, "enabled run observed the epochs");
        assert!(on.release_hist.count > 0, "release latency measured with provenance on");
    }
}
