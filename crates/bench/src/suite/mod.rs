//! The benchmark suite: one module per table/figure of the paper. Each
//! exposes `run() -> BenchReport` — it prints the human table and
//! returns the same numbers machine-readable. The `src/bin/` wrappers
//! and `bench_all` both dispatch through [`all`].

pub mod ablations;
pub mod degraded_mode;
pub mod delta_checkpoint;
pub mod fig3_filebench;
pub mod fig4_memcached_peak;
pub mod fig5_memcached_pegged;
pub mod fig6_rocksdb;
pub mod group_scaling;
pub mod live_migration;
pub mod table1_criu;
pub mod table4_posix_objects;
pub mod table5_memory_objects;
pub mod table6_applications;
pub mod table7_aurora_vs_criu;
pub mod trace_overhead;

use crate::BenchReport;

/// A suite entry: the benchmark's name and its runner.
pub type Entry = (&'static str, fn() -> BenchReport);

/// Every benchmark in the suite, in the paper's order.
pub fn all() -> Vec<Entry> {
    vec![
        ("table1_criu", table1_criu::run as fn() -> BenchReport),
        ("fig3_filebench", fig3_filebench::run),
        ("fig4_memcached_peak", fig4_memcached_peak::run),
        ("fig5_memcached_pegged", fig5_memcached_pegged::run),
        ("fig6_rocksdb", fig6_rocksdb::run),
        ("table4_posix_objects", table4_posix_objects::run),
        ("table5_memory_objects", table5_memory_objects::run),
        ("table6_applications", table6_applications::run),
        ("table7_aurora_vs_criu", table7_aurora_vs_criu::run),
        ("ablations", ablations::run),
        ("group_scaling", group_scaling::run),
        ("degraded_mode", degraded_mode::run),
        ("delta_checkpoint", delta_checkpoint::run),
        ("live_migration", live_migration::run),
        ("trace_overhead", trace_overhead::run),
    ]
}
