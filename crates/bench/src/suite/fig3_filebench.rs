//! Figure 3: FileBench microbenchmarks comparing the Aurora file system
//! (checkpoint consistency over the COW object store) to ZFS (with and
//! without checksumming) and FFS (SU+J).
//!
//! (a) 64 KiB random/sequential write throughput, (b) 4 KiB ditto,
//! (c) createfiles and write+fsync ops/s, (d) fileserver / varmail /
//! webserver ops/s.

use crate::{header, row, BenchReport};
use aurora_fs::aurora::AuroraFs;
use aurora_fs::ffs_model::FfsModel;
use aurora_fs::zfs_model::ZfsModel;
use aurora_fs::SimFs;
use aurora_sim::units::{KIB, MIB};
use aurora_workloads::filebench;

const DEV_BYTES: u64 = 2 << 30;

const FS_NAMES: [&str; 4] = ["ZFS", "ZFS+CSUM", "FFS", "Aurora"];

fn rebuild(label: &str) -> Box<dyn SimFs> {
    match label {
        "ZFS" => Box::new(ZfsModel::testbed(DEV_BYTES, false)),
        "ZFS+CSUM" => Box::new(ZfsModel::testbed(DEV_BYTES, true)),
        "FFS" => Box::new(FfsModel::testbed(DEV_BYTES)),
        "Aurora" => Box::new(AuroraFs::testbed(DEV_BYTES).unwrap()),
        other => panic!("unknown fs {other}"),
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("fig3_filebench");
    let quick = crate::quick();
    let shrink = if quick { 8 } else { 1 };

    // (a) + (b): write throughput.
    for (block, label, total) in
        [(64 * KIB, "64 KiB", 512 * MIB / shrink), (4 * KIB, "4 KiB", 128 * MIB / shrink)]
    {
        header(
            &format!("Figure 3 ({label} writes): throughput GiB/s"),
            &["fs", "random", "sequential"],
        );
        for name in FS_NAMES {
            let mut fs = rebuild(name);
            let rand = filebench::write_bench(fs.as_mut(), block, total, true, 11).unwrap();
            let mut fs2 = rebuild(name);
            let seq = filebench::write_bench(fs2.as_mut(), block, total, false, 11).unwrap();
            row(&[
                name.to_string(),
                format!("{:.2}", rand.gib_per_sec()),
                format!("{:.2}", seq.gib_per_sec()),
            ]);
            report.push(name, format!("write_{label}_random_gib_s"), rand.gib_per_sec());
            report.push(name, format!("write_{label}_sequential_gib_s"), seq.gib_per_sec());
        }
    }
    println!(
        "(paper 3a, sequential: ZFS ~4.5, ZFS+CSUM ~4, FFS ~6.5, Aurora ~7 GiB/s;\n\
         3b: FFS leads on 4 KiB thanks to fragments, ZFS trails)"
    );

    // (c): metadata operations.
    header(
        "Figure 3(c): file system operations (kops/s)",
        &["fs", "createfiles", "fsync 4 KiB", "fsync 64 KiB"],
    );
    let (create_n, fsync_n) = if quick { (2_000, 500) } else { (20_000, 5_000) };
    for name in FS_NAMES {
        let mut f1 = rebuild(name);
        let create = filebench::createfiles(f1.as_mut(), create_n).unwrap();
        let mut f2 = rebuild(name);
        let fs4 = filebench::fsync_bench(f2.as_mut(), 4 * KIB, fsync_n).unwrap();
        let mut f3 = rebuild(name);
        let fs64 = filebench::fsync_bench(f3.as_mut(), 64 * KIB, fsync_n).unwrap();
        row(&[
            name.to_string(),
            format!("{:.0}k", create.ops_per_sec() / 1e3),
            format!("{:.0}k", fs4.ops_per_sec() / 1e3),
            format!("{:.0}k", fs64.ops_per_sec() / 1e3),
        ]);
        report.push(name, "createfiles_ops_s", create.ops_per_sec());
        report.push(name, "fsync_4k_ops_s", fs4.ops_per_sec());
        report.push(name, "fsync_64k_ops_s", fs64.ops_per_sec());
    }
    println!(
        "(paper: Aurora's createfiles is unoptimized — a global lock — but its\n\
         fsync is a no-op under checkpoint consistency and leads both columns)"
    );

    // (d): simulated applications.
    header(
        "Figure 3(d): simulated applications (kops/s)",
        &["fs", "fileserver", "varmail", "webserver"],
    );
    let (fsrv_n, vm_n, web_n) = if quick { (200, 400, 100) } else { (2_000, 4_000, 1_000) };
    for name in FS_NAMES {
        let mut f1 = rebuild(name);
        let fsrv = filebench::fileserver(f1.as_mut(), 100, fsrv_n, 3).unwrap();
        let mut f2 = rebuild(name);
        let vm = filebench::varmail(f2.as_mut(), 100, vm_n, 3).unwrap();
        let mut f3 = rebuild(name);
        let web = filebench::webserver(f3.as_mut(), 100, web_n, 3).unwrap();
        row(&[
            name.to_string(),
            format!("{:.0}k", fsrv.ops_per_sec() / 1e3),
            format!("{:.0}k", vm.ops_per_sec() / 1e3),
            format!("{:.0}k", web.ops_per_sec() / 1e3),
        ]);
        report.push(name, "fileserver_ops_s", fsrv.ops_per_sec());
        report.push(name, "varmail_ops_s", vm.ops_per_sec());
        report.push(name, "webserver_ops_s", web.ops_per_sec());
    }
    println!(
        "(paper: comparable on fileserver/webserver; Aurora wins varmail\n\
         outright because varmail is fsync-bound and fsync is a no-op)"
    );
    report
}
