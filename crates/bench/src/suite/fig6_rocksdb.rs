//! Figure 6: RocksDB configurations under the Facebook Prefix_dist
//! workload — throughput and write-latency percentiles for:
//!
//! * "No Sync": ephemeral RocksDB vs unmodified RocksDB under Aurora's
//!   transparent 100 Hz checkpoints.
//! * "Sync": RocksDB with its own WAL vs the Aurora-API custom build
//!   (`sls_journal` WAL + checkpoint-on-full, §9.6).
//!
//! Paper shape: transparent mode loses ~83% of ephemeral throughput and
//! has a heavy tail (stop times); the custom WAL beats RocksDB's WAL by
//! ~75% in throughput and wins p99, but loses p99.9 (writes that trigger
//! the journal-full checkpoint wait for it).

use crate::{header, ratio, row, BenchReport};
use aurora_apps::rocksdb::{Persistence, RocksDb};
use aurora_core::world::World;
use aurora_core::{AuroraApi, SlsOptions};
use aurora_sim::units::{fmt_ns, fmt_ops, MS, SEC};
use aurora_sim::Histogram;
use aurora_vm::CollapseMode;
use aurora_workloads::prefixdist::{KvOp, PrefixDist, PrefixDistConfig};

fn ops() -> u64 {
    if crate::quick() {
        20_000
    } else {
        200_000
    }
}

struct Outcome {
    label: &'static str,
    sync: bool,
    throughput: f64,
    p99_write: u64,
    p999_write: u64,
}

fn run_config(label: &'static str, mode: Persistence, sync_class: bool) -> Outcome {
    let mut w = World::with_store_bytes(2 << 30);
    // Transparent mode needs an attached group ticking at 10 ms; the
    // custom build needs a group for its journal-full checkpoints.
    let gid = match mode {
        Persistence::AuroraTransparent | Persistence::AuroraWal { .. } => None,
        _ => None,
    };
    let mut db = RocksDb::open(&mut w.sls, 128 * 1024, mode, gid).unwrap();
    if matches!(mode, Persistence::AuroraWal { .. }) {
        // The custom build cycles its small journal via checkpoints
        // (§9.6); frequent enough that the p99.9 captures the stall.
        db.wal_limit = 256 << 10;
    }
    let gid = match mode {
        Persistence::AuroraTransparent | Persistence::AuroraWal { .. } => {
            let g = w
                .sls
                .attach(
                    db.pid,
                    SlsOptions {
                        period_ns: 10 * MS,
                        external_synchrony: false,
                        collapse_mode: CollapseMode::Reversed,
                    },
                )
                .unwrap();
            db.set_group(g);
            w.sls.sls_checkpoint(g).unwrap();
            w.sls.sls_barrier(g).unwrap();
            Some(g)
        }
        _ => None,
    };

    let mut gen = PrefixDist::new(PrefixDistConfig::default());
    // Preload.
    let preload = if crate::quick() { 2_000 } else { 20_000 };
    for _ in 0..preload {
        if let KvOp::Put { key, value_len } = gen.next_op() {
            db.put(&mut w.sls, &key, &vec![0u8; value_len]).unwrap();
        }
    }

    let t0 = w.clock.now();
    let transparent = matches!(mode, Persistence::AuroraTransparent);
    let mut next_ckpt = t0 + 10 * MS;
    let mut writes = Histogram::new();
    let mut done_ops = 0u64;
    for _ in 0..ops() {
        let arrival = w.clock.now();
        // A due checkpoint stalls the op that encounters it — the stall
        // is part of that request's latency (the paper's tail effect).
        if transparent {
            if let Some(g) = gid {
                if w.clock.now() >= next_ckpt {
                    w.sls.sls_checkpoint(g).unwrap();
                    let now = w.clock.now();
                    next_ckpt = now - now % (10 * MS) + 10 * MS;
                }
            }
        }
        match gen.next_op() {
            KvOp::Get { key } => {
                db.get(&mut w.sls, &key).unwrap();
            }
            KvOp::Put { key, value_len } => {
                db.put(&mut w.sls, &key, &vec![0u8; value_len]).unwrap();
                writes.record(w.clock.now() - arrival);
            }
            KvOp::Seek { key, entries } => {
                db.seek(&mut w.sls, &key, entries).unwrap();
            }
        }
        done_ops += 1;
    }
    let elapsed = (w.clock.now() - t0) as f64 / SEC as f64;
    Outcome {
        label,
        sync: sync_class,
        throughput: done_ops as f64 / elapsed,
        p99_write: writes.percentile(99.0),
        p999_write: writes.percentile(99.9),
    }
}

pub fn run() -> BenchReport {
    let mut report = BenchReport::new("fig6_rocksdb");
    let outcomes = vec![
        run_config("RocksDB (ephemeral)", Persistence::Ephemeral, false),
        run_config("Aurora-100Hz", Persistence::AuroraTransparent, false),
        run_config("RocksDB+WAL", Persistence::Wal { sync: true }, true),
        run_config("Aurora+WAL (custom)", Persistence::AuroraWal { sync: true }, true),
    ];

    header(
        "Figure 6: RocksDB under Prefix_dist",
        &["config", "class", "throughput", "p99 write", "p99.9 write"],
    );
    for o in &outcomes {
        row(&[
            o.label.to_string(),
            if o.sync { "Sync".into() } else { "No Sync".into() },
            fmt_ops(o.throughput),
            fmt_ns(o.p99_write),
            fmt_ns(o.p999_write),
        ]);
        report.push(o.label, "throughput_ops_s", o.throughput);
        report.push(o.label, "p99_write_ns", o.p99_write as f64);
        report.push(o.label, "p999_write_ns", o.p999_write as f64);
    }

    let ephemeral = outcomes[0].throughput;
    let transparent = outcomes[1].throughput;
    let wal = outcomes[2].throughput;
    let custom = outcomes[3].throughput;
    println!(
        "\nShape checks (paper values in parentheses):\n\
         transparent/ephemeral = {:.0}% kept (paper ~17%)\n\
         custom vs RocksDB WAL = {} (paper ~1.75×)\n\
         custom p99 < WAL p99: {} — custom p99.9 > WAL p99.9: {}",
        transparent / ephemeral * 100.0,
        ratio(custom, wal),
        outcomes[3].p99_write < outcomes[2].p99_write,
        outcomes[3].p999_write > outcomes[2].p999_write,
    );
    println!(
        "\n§9.6 code-size claim: the aurora_glue module (this repo's analogue\n\
         of the 109-line patch) replaces the WAL+SST persistence code —\n\
         see `wc -l` on crates/apps/src/rocksdb.rs's aurora_glue vs the\n\
         Wal/flush_sst paths."
    );
    report
}
