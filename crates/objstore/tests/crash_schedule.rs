//! Crash-schedule recovery harness (see `aurora_objstore::explore`).
//!
//! Every test here is deterministic: a failing schedule is named by its
//! (workload seed, crash point) pair printed in the panic message, and
//! rerunning the test reproduces it bit-for-bit.
//!
//! `CRASH_SCHEDULE_CAP` (env) bounds the number of schedules per sweep
//! for CI; unset, every write boundary is explored.

use aurora_objstore::explore::Explorer;
use aurora_objstore::{ObjectKind, ObjectStore, PageRef, StoreError, PAGE};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::faulty::FaultPlan;
use aurora_storage::faulty_testbed_array;
use aurora_trace::{InvariantChecker, Trace};

fn cap() -> Option<u64> {
    std::env::var("CRASH_SCHEDULE_CAP").ok().and_then(|v| v.parse().ok())
}

/// A charge with a recording trace and the online invariant checker
/// armed over it — every manual-store test here runs with the checker
/// watching epoch commits, recovery replay, and frame writes.
fn traced_charge(clock: &Clock) -> (Charge, InvariantChecker) {
    let trace = {
        let c = clock.clone();
        Trace::recording(move || c.now())
    };
    let checker = InvariantChecker::arm(&trace);
    let mut charge = Charge::new(clock.clone(), CostModel::default());
    charge.set_trace(trace);
    (charge, checker)
}

#[test]
fn every_write_boundary_recovers() {
    let explorer = Explorer::from_seed(0xA0207A, 90, false);
    let report = explorer.explore(cap(), None);
    assert!(
        report.schedules >= 100 || cap().is_some(),
        "workload too small: only {} crash points",
        report.schedules
    );
    assert!(report.cuts_fired == report.schedules, "every schedule must reach its cut");
    assert!(report.recovered_nonempty > 0, "some schedules must recover workload epochs");
}

#[test]
fn every_write_boundary_recovers_with_torn_writes() {
    let explorer = Explorer::from_seed(0xA0207B, 70, false);
    let report = explorer.explore(cap(), Some(0x7EA2));
    assert!(report.schedules > 0);
    assert!(report.cuts_fired == report.schedules);
}

#[test]
fn drop_oldest_interleaved_with_crashes_recovers() {
    let explorer = Explorer::from_seed(0xD209, 90, true);
    let report = explorer.explore(cap(), None);
    assert!(report.schedules > 0);
    assert!(report.recovered_nonempty > 0);
}

#[test]
fn a_second_seed_also_survives() {
    let explorer = Explorer::from_seed(0x5EED2, 80, false);
    let report = explorer.explore(cap().map(|c| c / 2).filter(|&c| c > 0), None);
    assert!(report.schedules > 0);
}

/// A transient device error during a synchronous journal append leaves
/// the journal consistent, and the retried append succeeds.
#[test]
fn transient_error_during_journal_append_is_retryable() {
    let clock = Clock::new();
    let (dev, handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let (charge, checker) = traced_charge(&clock);
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
    let j = store.alloc_oid();
    store.create_journal(j, 64).unwrap();
    let c = store.commit().unwrap();
    store.barrier(c);
    store.journal_append(j, b"first").unwrap();

    // Fail the next device write once.
    let mut plan = FaultPlan::none();
    plan.transient_writes.insert(handle.writes_seen());
    handle.set_plan(plan);
    let err = store.journal_append(j, b"second").unwrap_err();
    assert!(err.is_transient(), "expected transient error, got {err}");
    assert!(
        matches!(err, StoreError::Device { op: "journal-append", .. }),
        "error should carry the failing op"
    );

    // The failed append consumed no journal state: retry succeeds and
    // sequence numbers stay dense.
    let seq = store.journal_append(j, b"second").unwrap();
    assert_eq!(seq, 1);
    let mut rec = store.crash_and_recover().unwrap();
    assert_eq!(
        rec.journal_records(j).unwrap(),
        vec![b"first".to_vec(), b"second".to_vec()],
        "retried append must land exactly once"
    );
    assert!(checker.checked() > 0);
    checker.assert_clean();
}

/// A transient error during a page write leaks no blocks and the retried
/// write commits normally.
#[test]
fn transient_error_during_page_write_is_retryable() {
    let clock = Clock::new();
    let (dev, handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let (charge, checker) = traced_charge(&clock);
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();

    let mut plan = FaultPlan::none();
    plan.transient_writes.insert(handle.writes_seen());
    handle.set_plan(plan);
    let seven = PageRef::detached([7u8; PAGE]);
    let err = store.write_page(oid, 0, &seven).unwrap_err();
    assert!(err.is_transient());
    store.write_page(oid, 0, &seven).unwrap();
    let c = store.commit().unwrap();
    store.barrier(c);
    let mut rec = store.crash_and_recover().unwrap();
    assert_eq!(*rec.read_page(oid, 0, c.epoch).unwrap(), [7u8; PAGE]);
    checker.assert_clean();
}

/// A transient error during commit leaves the log retryable: the second
/// commit writes the same region and recovery sees exactly one epoch.
#[test]
fn transient_error_during_commit_is_retryable() {
    let clock = Clock::new();
    let (dev, handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let (charge, checker) = traced_charge(&clock);
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();
    store.write_page(oid, 0, &PageRef::detached([3u8; PAGE])).unwrap();

    // Fail the commit's payload write once.
    let mut plan = FaultPlan::none();
    plan.transient_writes.insert(handle.writes_seen());
    handle.set_plan(plan);
    let err = store.commit().unwrap_err();
    assert!(err.is_transient());

    let c = store.commit().unwrap();
    store.barrier(c);
    let mut rec = store.crash_and_recover().unwrap();
    assert_eq!(rec.epochs(), &[c.epoch], "exactly one committed epoch");
    assert_eq!(*rec.read_page(oid, 0, c.epoch).unwrap(), [3u8; PAGE]);
    checker.assert_clean();
}

/// Silent bit-flips never panic recovery: metadata corruption is caught
/// by record checksums (the store simply recovers less history), the
/// epoch set is still a contiguous range, and — since per-page data
/// checksums landed — a post-recovery scrub either passes or reports
/// data corruption as a *fatal* device error, never a wrong read.
#[test]
fn bitflips_degrade_gracefully() {
    for seed in [1u64, 2, 3, 4, 5] {
        let clock = Clock::new();
        let plan = FaultPlan { bitflip_per_write: 0.05, seed, ..FaultPlan::none() };
        let (dev, _handle) = faulty_testbed_array(&clock, 1 << 26, plan);
        let (charge, checker) = traced_charge(&clock);
        let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
        let oid = store.alloc_oid();
        store.create_object(oid, ObjectKind::Memory).unwrap();
        let mut committed = Vec::new();
        for i in 0..10u8 {
            store.write_page(oid, (i % 4) as u64, &PageRef::detached([i; PAGE])).unwrap();
            let c = store.commit().unwrap();
            store.barrier(c);
            committed.push(c.epoch);
        }
        let mut rec = store.crash_and_recover().unwrap_or_else(|e| {
            panic!("seed {seed}: recovery must not fail on bit-flips: {e}")
        });
        let recovered = rec.epochs().to_vec();
        assert!(
            committed.windows(recovered.len()).any(|w| w == recovered.as_slice())
                || recovered.is_empty(),
            "seed {seed}: recovered epochs {recovered:?} not contiguous in {committed:?}"
        );
        // Scrub catches any data-page flip that made it into a committed
        // epoch, and reports it as fatal (a retry cannot fix the medium).
        if let Err(e) = rec.scrub() {
            assert!(
                matches!(e, StoreError::Device { op: "scrub", .. }) && !e.is_transient(),
                "seed {seed}: scrub error must be a fatal device error, got {e}"
            );
        }
        // Idempotence still holds.
        let again = ObjectStore::open(rec.device().clone(), rec.charge().clone()).unwrap();
        assert_eq!(again.epochs(), rec.epochs());
        // Even with bit-flips on the medium, the *ordering* invariants
        // hold: corruption loses history, it never reorders it.
        checker.assert_clean();
    }
}

/// The checksum satellite's proof-of-detection: flip one bit of a data
/// page on its way to the medium and the very next read reports a fatal
/// `StoreError::Device` instead of returning corrupted data.
#[test]
fn bitflip_on_data_page_is_detected_at_read() {
    let clock = Clock::new();
    let (dev, handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let (charge, checker) = traced_charge(&clock);
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();

    // Corrupt exactly the page-data write; the commit record stays clean.
    handle.set_plan(FaultPlan { bitflip_per_write: 1.0, seed: 7, ..FaultPlan::none() });
    store.write_page(oid, 0, &PageRef::detached([0x5Au8; PAGE])).unwrap();
    handle.clear_faults();
    let c = store.commit().unwrap();
    store.barrier(c);

    // The page cache still holds the clean frame handed to write_page;
    // only the device copy is flipped. Drop it so the read goes to the
    // medium — the path the checksum protects.
    store.drop_page_cache();
    let err = store.read_page(oid, 0, c.epoch).unwrap_err();
    assert!(
        matches!(err, StoreError::Device { op: "verify-page", oid: Some(o), .. } if o == oid),
        "expected a verify-page device error, got {err}"
    );
    assert!(!err.is_transient(), "medium corruption must be fatal, not retried");

    // The bulk path and the scrub detect it too.
    assert!(store.read_pages_bulk(oid, c.epoch, &[0]).is_err());
    let scrub_err = store.scrub().unwrap_err();
    assert!(matches!(scrub_err, StoreError::Device { op: "scrub", .. }));

    // Recovery itself survives; the corrupt page stays poisoned after
    // reopen because the checksum rides in the commit record.
    let mut rec = store.crash_and_recover().unwrap();
    assert!(rec.read_page(oid, 0, c.epoch).is_err(), "corruption detected across recovery");
    checker.assert_clean();
}

/// Clean writes scrub clean, including across a crash/recover cycle.
#[test]
fn scrub_passes_on_clean_history() {
    let clock = Clock::new();
    let (dev, _handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let (charge, checker) = traced_charge(&clock);
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();
    for i in 0..6u8 {
        store.write_page(oid, i as u64, &PageRef::detached([i; PAGE])).unwrap();
        let c = store.commit().unwrap();
        store.barrier(c);
    }
    assert_eq!(store.scrub().unwrap(), 6);
    let mut rec = store.crash_and_recover().unwrap();
    assert_eq!(rec.scrub().unwrap(), 6, "checksums survive the commit record round-trip");
    assert!(checker.checked() > 0);
    checker.assert_clean();
}

/// The crash flight recorder: with graphs of the last epochs on board
/// and a violation sink wired to `trigger`, an induced invariant
/// failure dumps the recorder automatically — no manual step between
/// "the checker fired" and "the causality snapshot exists".
#[test]
fn induced_invariant_failure_dumps_flight_recorder() {
    use aurora_trace::{CausalGraph, FlightRecorder, HopKind};

    let clock = Clock::new();
    let trace = {
        let c = clock.clone();
        Trace::recording(move || c.now())
    };
    let checker = InvariantChecker::arm(&trace);
    let mut charge = Charge::new(clock.clone(), CostModel::default());
    charge.set_trace(trace.clone());
    let (dev, _handle) = faulty_testbed_array(&clock, 1 << 26, FaultPlan::none());
    let mut store = ObjectStore::format(dev, charge, 1024).unwrap();

    // Real commits so the ring holds genuine epoch history, with one
    // causal graph per epoch recorded (as the cluster layer does for
    // replicated epochs).
    let fr = FlightRecorder::new(4);
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();
    let mut last_epoch = 0;
    for i in 0..3u8 {
        store.write_page(oid, 0, &PageRef::detached([i; PAGE])).unwrap();
        let c = store.commit().unwrap();
        store.barrier(c);
        last_epoch = c.epoch;
        let mut g = CausalGraph::new(c.epoch, 0);
        let hop = g.hop(0, "stage.commit", HopKind::Stage, clock.now(), 0, vec![], vec![]);
        g.terminal = Some(hop);
        fr.record(g);
    }
    assert!(checker.is_clean());
    assert_eq!(fr.dump_count(), 0);

    // Wire the auto-dump, then induce invariant 1: replay a commit of
    // an epoch at or below the watermark without an intervening crash.
    {
        let fr = fr.clone();
        let c = clock.clone();
        checker.on_violation(move |why| {
            fr.trigger(why, c.now());
        });
    }
    trace.instant("objstore", "epoch.commit", &[("epoch", 1)]);
    assert!(!checker.is_clean());

    assert_eq!(fr.dump_count(), 1, "the violation sink dumped exactly once");
    let dump = fr.last_dump().expect("dump captured at violation time");
    aurora_trace::json::validate(&dump).unwrap();
    assert!(fr.last_reason().unwrap().contains("epoch monotonicity"));
    assert!(
        dump.contains(&format!("\"epoch\":{last_epoch}")),
        "dump holds the newest epoch's graph"
    );
}
