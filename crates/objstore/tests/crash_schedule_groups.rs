//! Two-group crash-schedule recovery (see
//! `aurora_objstore::explore::GroupExplorer`).
//!
//! The sharded checkpoint engine keeps one draft epoch open per
//! consistency group, so a crash can land while several groups have
//! epochs in flight. These sweeps crash a two-group workload at every
//! write boundary and assert each group's four recovery invariants
//! independently: per-group epoch prefix, bit-exact contents, journal
//! idempotence, and reopen as a no-op. The workload generator is
//! write-heavy and alternates groups, and the golden run asserts that
//! both drafts really were open at once — the schedules exercised here
//! crash with ≥ 2 concurrently open epochs.
//!
//! `CRASH_SCHEDULE_CAP` (env) bounds schedules per sweep for CI; unset,
//! every write boundary is explored.

use aurora_objstore::explore::GroupExplorer;

fn cap() -> Option<u64> {
    std::env::var("CRASH_SCHEDULE_CAP").ok().and_then(|v| v.parse().ok())
}

#[test]
fn two_groups_recover_independently_at_every_write_boundary() {
    let explorer = GroupExplorer::from_seed(0x62017A, 80);
    let report = explorer.explore(cap(), None);
    assert!(report.schedules > 0);
    assert!(report.cuts_fired == report.schedules, "every schedule must reach its cut");
    assert!(report.recovered_nonempty > 0, "some schedules must recover workload epochs");
}

#[test]
fn two_groups_recover_independently_with_torn_writes() {
    let explorer = GroupExplorer::from_seed(0x62017B, 70);
    let report = explorer.explore(cap(), Some(0x7EA3));
    assert!(report.schedules > 0);
    assert!(report.cuts_fired == report.schedules);
}

#[test]
fn a_second_two_group_seed_also_survives() {
    let explorer = GroupExplorer::from_seed(0x62052, 80);
    let report = explorer.explore(cap().map(|c| c / 2).filter(|&c| c > 0), None);
    assert!(report.schedules > 0);
}
