//! The batched store APIs the checkpoint pipeline's Flush stage uses:
//! `write_pages`, `set_meta_batch`, and `read_pages_bulk` must be
//! semantically identical to their per-item forms, while issuing fewer,
//! larger device operations.

use aurora_objstore::{ObjectKind, ObjectStore, Oid, PageRef, PAGE};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::testbed_array;

fn fresh() -> ObjectStore {
    let clock = Clock::new();
    let dev = testbed_array(&clock, 1 << 26);
    ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 2048).unwrap()
}

fn page(fill: u8) -> PageRef {
    PageRef::detached([fill; PAGE])
}

fn mem_obj(store: &mut ObjectStore) -> Oid {
    let oid = store.alloc_oid();
    store.create_object(oid, ObjectKind::Memory).unwrap();
    oid
}

#[test]
fn write_pages_matches_per_page_writes() {
    let writes: Vec<(u64, PageRef)> =
        (0..12u64).map(|pi| (pi * 3 % 12, page(pi as u8 + 1))).collect();

    let mut a = fresh();
    let oa = mem_obj(&mut a);
    for (pi, data) in &writes {
        a.write_page(oa, *pi, data).unwrap();
    }
    let ea = a.commit().unwrap();

    let mut b = fresh();
    let ob = mem_obj(&mut b);
    b.write_pages(ob, &writes).unwrap();
    let eb = b.commit().unwrap();

    assert_eq!(ea.epoch, eb.epoch);
    let mut pages_a = a.pages_at(oa, ea.epoch).unwrap();
    let mut pages_b = b.pages_at(ob, eb.epoch).unwrap();
    pages_a.sort_unstable();
    pages_b.sort_unstable();
    assert_eq!(pages_a, pages_b);
    for &pi in &pages_a {
        assert_eq!(
            a.read_page(oa, pi, ea.epoch).unwrap(),
            b.read_page(ob, pi, eb.epoch).unwrap(),
            "page {pi} differs between per-page and batched writes"
        );
    }
    // Coalesced device writes complete no later than per-page ones.
    assert!(eb.durable_at <= ea.durable_at);
}

#[test]
fn write_pages_recycles_same_epoch_rewrites() {
    let mut s = fresh();
    let oid = mem_obj(&mut s);
    s.write_pages(oid, &[(0, page(1)), (1, page(2))]).unwrap();
    // Rewriting within the same uncommitted epoch keeps one version.
    s.write_pages(oid, &[(0, page(9))]).unwrap();
    let info = s.commit().unwrap();
    assert_eq!(s.read_page(oid, 0, info.epoch).unwrap(), page(9));
    assert_eq!(s.read_page(oid, 1, info.epoch).unwrap(), page(2));
    assert_eq!(
        s.page_version_epoch(oid, 0, info.epoch).unwrap(),
        info.epoch,
        "one version for the epoch, holding the newest write"
    );
}

#[test]
fn set_meta_batch_matches_set_meta_and_dedups() {
    let mut s = fresh();
    let a = mem_obj(&mut s);
    let b = mem_obj(&mut s);
    s.set_meta_batch(&[(a, vec![1, 2, 3]), (b, vec![4, 5])]).unwrap();
    let e1 = s.commit().unwrap();
    assert_eq!(s.meta_at(a, e1.epoch).unwrap(), &[1, 2, 3]);
    assert_eq!(s.meta_at(b, e1.epoch).unwrap(), &[4, 5]);

    // Unchanged content: no new metadata version next epoch.
    s.set_meta_batch(&[(a, vec![1, 2, 3]), (b, vec![6])]).unwrap();
    let e2 = s.commit().unwrap();
    assert_eq!(
        s.meta_version_epoch(a, e2.epoch).unwrap(),
        e1.epoch,
        "identical metadata deduplicates across epochs"
    );
    assert_eq!(s.meta_version_epoch(b, e2.epoch).unwrap(), e2.epoch);
    assert_eq!(s.meta_at(b, e2.epoch).unwrap(), &[6]);
}

#[test]
fn read_pages_bulk_matches_read_page() {
    let mut s = fresh();
    let oid = mem_obj(&mut s);
    s.write_pages(oid, &(0..8u64).map(|pi| (pi, page(pi as u8))).collect::<Vec<_>>()).unwrap();
    let e1 = s.commit().unwrap();
    // A second epoch overwrites half the pages: bulk reads must respect
    // per-page version visibility.
    s.write_pages(oid, &(0..4u64).map(|pi| (pi, page(0x80 + pi as u8))).collect::<Vec<_>>())
        .unwrap();
    let e2 = s.commit().unwrap();

    for epoch in [e1.epoch, e2.epoch] {
        let pis: Vec<u64> = (0..8).collect();
        let bulk = s.read_pages_bulk(oid, epoch, &pis).unwrap();
        assert_eq!(bulk.len(), pis.len());
        for (pi, data) in bulk {
            assert_eq!(data, s.read_page(oid, pi, epoch).unwrap(), "page {pi} at epoch {epoch}");
        }
    }
}
