//! Randomized tests: the object store's crash consistency.
//!
//! For any sequence of writes/commits and a crash at any point, recovery
//! must expose exactly a committed prefix — never a torn checkpoint,
//! never a lost durable one. Cases come from the in-tree deterministic
//! PRNG so failures reproduce by seed.

use aurora_objstore::{ObjectKind, ObjectStore, Oid};
use aurora_sim::cost::Charge;
use aurora_sim::rng::{DetRng, Rng};
use aurora_sim::{Clock, CostModel};
use aurora_storage::testbed_array;

fn fresh() -> ObjectStore {
    let clock = Clock::new();
    let dev = testbed_array(&clock, 1 << 26);
    ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 2048).unwrap()
}

/// Page contents of one object: pindex -> fill byte.
type PageMap = std::collections::HashMap<u64, u8>;

#[derive(Clone, Debug)]
enum Op {
    Write { obj: usize, pindex: u64, fill: u8 },
    Commit { wait: bool },
}

fn gen_op(rng: &mut DetRng) -> Op {
    if rng.gen_range(0..6) < 4 {
        Op::Write {
            obj: rng.gen_range(0..4) as usize,
            pindex: rng.gen_range(0..16),
            fill: rng.next_u64() as u8,
        }
    } else {
        Op::Commit { wait: rng.gen_bool(0.5) }
    }
}

#[test]
fn recovery_exposes_a_committed_prefix() {
    let mut rng = DetRng::seed_from_u64(0xc4a5);
    for _case in 0..48 {
        let ops: Vec<Op> = (0..rng.gen_range(1..30)).map(|_| gen_op(&mut rng)).collect();
        let crash_after = rng.gen_range(0..30) as usize;

        let mut store = fresh();
        let oids: Vec<Oid> = (0..4)
            .map(|_| {
                let o = store.alloc_oid();
                store.create_object(o, ObjectKind::Memory).unwrap();
                o
            })
            .collect();
        // Reference model: page contents per committed epoch.
        let mut cur: Vec<PageMap> = vec![Default::default(); 4];
        let mut committed: Vec<(u64, Vec<PageMap>, bool)> = Vec::new();

        for (i, op) in ops.iter().enumerate() {
            if i == crash_after {
                break;
            }
            match op {
                Op::Write { obj, pindex, fill } => {
                    let p = aurora_objstore::PageRef::detached([*fill; 4096]);
                    store.write_page(oids[*obj], *pindex, &p).unwrap();
                    cur[*obj].insert(*pindex, *fill);
                }
                Op::Commit { wait } => {
                    let info = store.commit().unwrap();
                    if *wait {
                        store.barrier(info);
                    }
                    committed.push((info.epoch, cur.clone(), *wait));
                }
            }
        }

        let mut recovered = store.crash_and_recover().unwrap();

        // Everything the caller waited for must have survived; whatever
        // survived must be a prefix and bit-exact.
        let last = recovered.last_epoch().unwrap_or(0);
        let waited_max =
            committed.iter().filter(|(_, _, w)| *w).map(|(e, _, _)| *e).max().unwrap_or(0);
        assert!(last >= waited_max, "durable checkpoint {waited_max} lost (have {last})");
        for (epoch, model, _) in &committed {
            if *epoch > last {
                continue; // legitimately lost: never durable
            }
            for (obj, pages) in model.iter().enumerate() {
                for (&pindex, &fill) in pages {
                    let page = recovered.read_page(oids[obj], pindex, *epoch).unwrap();
                    assert!(
                        page.iter().all(|&b| b == fill),
                        "epoch {epoch} object {obj} page {pindex} corrupt"
                    );
                }
            }
        }
    }
}

#[test]
fn journal_crash_preserves_synchronous_prefix() {
    let mut store = fresh();
    let j = store.alloc_oid();
    store.create_journal(j, 64).unwrap();
    let c = store.commit().unwrap();
    store.barrier(c);
    for i in 0..20u8 {
        store.journal_append(j, &[i; 100]).unwrap();
    }
    let mut recovered = store.crash_and_recover().unwrap();
    let records = recovered.journal_records(j).unwrap();
    assert_eq!(records.len(), 20, "synchronous appends survive any crash");
    for (i, r) in records.iter().enumerate() {
        assert!(r.iter().all(|&b| b == i as u8));
    }
}
