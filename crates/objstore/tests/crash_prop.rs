//! Property tests: the object store's crash consistency.
//!
//! For any sequence of writes/commits and a crash at any point, recovery
//! must expose exactly a committed prefix — never a torn checkpoint,
//! never a lost durable one.

use aurora_objstore::{ObjectKind, ObjectStore, Oid};
use aurora_sim::cost::Charge;
use aurora_sim::{Clock, CostModel};
use aurora_storage::testbed_array;
use proptest::prelude::*;

fn fresh() -> ObjectStore {
    let clock = Clock::new();
    let dev = testbed_array(&clock, 1 << 26);
    ObjectStore::format(dev, Charge::new(clock, CostModel::default()), 2048).unwrap()
}

#[derive(Clone, Debug)]
enum Op {
    Write { obj: usize, pindex: u64, fill: u8 },
    Commit { wait: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..4usize, 0..16u64, any::<u8>())
            .prop_map(|(obj, pindex, fill)| Op::Write { obj, pindex, fill }),
        2 => any::<bool>().prop_map(|wait| Op::Commit { wait }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_exposes_a_committed_prefix(
        ops in prop::collection::vec(op_strategy(), 1..30),
        crash_after in 0..30usize,
    ) {
        let mut store = fresh();
        let oids: Vec<Oid> = (0..4)
            .map(|_| {
                let o = store.alloc_oid();
                store.create_object(o, ObjectKind::Memory).unwrap();
                o
            })
            .collect();
        // Reference model: page contents per committed epoch.
        let mut cur: Vec<std::collections::HashMap<u64, u8>> =
            vec![Default::default(); 4];
        let mut committed: Vec<(u64, Vec<std::collections::HashMap<u64, u8>>, bool)> =
            Vec::new();

        for (i, op) in ops.iter().enumerate() {
            if i == crash_after {
                break;
            }
            match op {
                Op::Write { obj, pindex, fill } => {
                    store.write_page(oids[*obj], *pindex, &[*fill; 4096]).unwrap();
                    cur[*obj].insert(*pindex, *fill);
                }
                Op::Commit { wait } => {
                    let info = store.commit().unwrap();
                    if *wait {
                        store.barrier(info);
                    }
                    committed.push((info.epoch, cur.clone(), *wait));
                }
            }
        }

        let mut recovered = store.crash_and_recover().unwrap();

        // Everything the caller waited for must have survived; whatever
        // survived must be a prefix and bit-exact.
        let last = recovered.last_epoch().unwrap_or(0);
        let waited_max =
            committed.iter().filter(|(_, _, w)| *w).map(|(e, _, _)| *e).max().unwrap_or(0);
        prop_assert!(last >= waited_max, "durable checkpoint {waited_max} lost (have {last})");
        for (epoch, model, _) in &committed {
            if *epoch > last {
                continue; // legitimately lost: never durable
            }
            for (obj, pages) in model.iter().enumerate() {
                for (&pindex, &fill) in pages {
                    let page = recovered.read_page(oids[obj], pindex, *epoch).unwrap();
                    prop_assert!(
                        page.iter().all(|&b| b == fill),
                        "epoch {epoch} object {obj} page {pindex} corrupt"
                    );
                }
            }
        }
    }
}

#[test]
fn journal_crash_preserves_synchronous_prefix() {
    let mut store = fresh();
    let j = store.alloc_oid();
    store.create_journal(j, 64).unwrap();
    let c = store.commit().unwrap();
    store.barrier(c);
    for i in 0..20u8 {
        store.journal_append(j, &[i; 100]).unwrap();
    }
    let mut recovered = store.crash_and_recover().unwrap();
    let records = recovered.journal_records(j).unwrap();
    assert_eq!(records.len(), 20, "synchronous appends survive any crash");
    for (i, r) in records.iter().enumerate() {
        assert!(r.iter().all(|&b| b == i as u8));
    }
}
