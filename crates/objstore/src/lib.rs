//! The Aurora object store (§7): a copy-on-write store holding every
//! checkpointed POSIX object, memory object, and file as a first-class
//! on-disk object addressed by a 64-bit OID.
//!
//! Design, mirroring the paper:
//!
//! * **Copy-on-write data**: page writes always go to freshly allocated
//!   blocks; nothing is modified in place, so a crash can never corrupt a
//!   committed checkpoint.
//! * **Low-latency checkpoints**: a commit appends one compact metadata
//!   record (the changed objects' page→block mappings and metadata blobs)
//!   and becomes durable only after all its data blocks are — the commit
//!   record's device write is ordered behind the data completions.
//! * **Execution history**: every committed epoch remains readable until
//!   explicitly reclaimed ([`ObjectStore::drop_oldest_checkpoint`]); the
//!   reclaim walks superseded block versions, so there is no
//!   log-structured garbage collector to stall checkpoints.
//! * **Non-COW journals** (§7, "Non-COW Objects for the Aurora API"):
//!   preallocated regions updated in place with synchronous writes — the
//!   28 µs 4-KiB append behind `sls_journal`.
//!
//! Recovery ([`ObjectStore::open`]) scans the metadata log for the last
//! valid commit record and exposes exactly the checkpoints up to it; the
//! simulated device drops writes that were still in flight, so the crash
//! tests exercise the real window.

pub mod explore;
pub mod journal;
pub mod store;

pub use aurora_frames::{FrameArena, FrameGauges, PageRef};
pub use explore::{Explorer, ScheduleReport, WorkloadOp};
pub use journal::JournalStats;
pub use store::{
    CommitInfo, ObjectKind, ObjectStore, Oid, RedoRecordOut, RedoWrite, StoreError, StoreGauges,
    PAGE,
};
